#!/bin/sh
# Sync the repo into the offline scratch workspace (stub externals) so the
# suite can build/test without network access. Lives at repo root; the
# scratch tree itself is under the gitignored target/.
set -e
SRC=/root/repo
WS=/root/repo/target/scratch/ws
mkdir -p "$WS"
python3 - "$SRC" "$WS" <<'PY'
import os, shutil, sys, filecmp
src, ws = sys.argv[1], sys.argv[2]
EXCLUDE = {'target', '.git', 'sync-scratch.sh'}
src_files = set()
for root, dirs, files in os.walk(src):
    rel = os.path.relpath(root, src)
    if rel == '.':
        dirs[:] = [d for d in dirs if d not in EXCLUDE]
    for f in files:
        if rel == '.' and f in EXCLUDE:
            continue
        src_files.add(os.path.normpath(os.path.join(rel, f)))
for rel in src_files:
    s, d = os.path.join(src, rel), os.path.join(ws, rel)
    os.makedirs(os.path.dirname(d), exist_ok=True)
    if not (os.path.exists(d) and filecmp.cmp(s, d, shallow=False)):
        shutil.copy2(s, d)
# Delete stale files in ws not present in src (keep target/, .git/).
for root, dirs, files in os.walk(ws):
    rel = os.path.relpath(root, ws)
    if rel == '.':
        dirs[:] = [d for d in dirs if d not in ('target', '.git')]
    for f in files:
        r = os.path.normpath(os.path.join(rel, f))
        if r not in src_files:
            os.remove(os.path.join(root, f))
PY
# Patch workspace externals to the stub crates.
python3 - "$WS/Cargo.toml" <<'PY'
import sys
p = sys.argv[1]
s = open(p).read()
subs = {
 'rand = "0.8"': 'rand = { path = "../stubs/rand" }',
 'proptest = "1"': 'proptest = { path = "../stubs/proptest" }',
 'criterion = "0.5"': 'criterion = { path = "../stubs/criterion" }',
 'crossbeam = "0.8"': 'crossbeam = { path = "../stubs/crossbeam" }',
 'parking_lot = "0.12"': 'parking_lot = { path = "../stubs/parking_lot" }',
 'bytes = "1"': 'bytes = { path = "../stubs/bytes" }',
 'serde = { version = "1", features = ["derive"] }': 'serde = { path = "../stubs/serde", features = ["derive"] }',
 'serde_json = "1"': 'serde_json = { path = "../stubs/serde_json" }',
}
for a, b in subs.items():
    assert a in s, a
    s = s.replace(a, b)
open(p, "w").write("# Scratch copy of the root manifest for offline builds (stub externals).\n\n" + s)
PY
