//! Deterministic-interleaving model test for the observability registry.
//!
//! No loom in the tree, so the schedule space is enumerated by hand: each
//! model "thread" is a fixed script of registry operations (registration
//! + shard-explicit increments), and every interleaving of the scripts is
//! executed single-threadedly against a fresh [`Registry`]. The claim
//! under test is the one the serving stack depends on: the rendered
//! Prometheus text is a pure function of the *set* of operations, not of
//! the schedule — registration races resolve to the same series
//! (get-or-create is idempotent), shard placement never leaks into
//! totals, and the render is byte-identical across all schedules. The
//! miri/TSan CI jobs check the same code for UB and data races under real
//! concurrency; this suite pins down the *semantics* of every schedule.

use lce_obs::{Class, Registry, RenderMode, SHARDS};

/// One step of a model thread: a registry operation with an explicit
/// shard, so a schedule fully determines the execution.
#[derive(Clone, Copy)]
enum Op {
    /// Get-or-create `name{labels}` and add `n` in `shard`.
    Count {
        name: &'static str,
        labels: &'static [(&'static str, &'static str)],
        shard: usize,
        n: u64,
    },
    /// Get-or-create histogram `name` and observe `value_us` in `shard`.
    Observe {
        name: &'static str,
        shard: usize,
        value_us: u64,
    },
}

fn apply(registry: &Registry, op: &Op) {
    match *op {
        Op::Count {
            name,
            labels,
            shard,
            n,
        } => registry
            .counter(name, "model", Class::Schedule, labels)
            .add_in_shard(shard, n),
        Op::Observe {
            name,
            shard,
            value_us,
        } => registry
            .histogram(name, "model", Class::Timing, &[])
            .observe_in_shard(shard, value_us),
    }
}

/// Visit every interleaving of `scripts` (each script's internal order is
/// preserved), calling `visit` with the flattened schedule.
fn interleavings(scripts: &[&[Op]], visit: &mut dyn FnMut(&[Op])) {
    fn go(
        scripts: &[&[Op]],
        cursors: &mut Vec<usize>,
        schedule: &mut Vec<Op>,
        visit: &mut dyn FnMut(&[Op]),
    ) {
        let mut extended = false;
        for t in 0..scripts.len() {
            if cursors[t] < scripts[t].len() {
                extended = true;
                schedule.push(scripts[t][cursors[t]]);
                cursors[t] += 1;
                go(scripts, cursors, schedule, visit);
                cursors[t] -= 1;
                schedule.pop();
            }
        }
        if !extended {
            visit(schedule);
        }
    }
    go(scripts, &mut vec![0; scripts.len()], &mut Vec::new(), visit)
}

/// Three model threads with deliberately overlapping registrations: all
/// race to create the same family, two race on the very same series, and
/// they write through different shards.
const THREAD_A: &[Op] = &[
    Op::Count {
        name: "calls_total",
        labels: &[("api", "DescribeVpcs")],
        shard: 0,
        n: 1,
    },
    Op::Count {
        name: "calls_total",
        labels: &[("api", "CreateVpc")],
        shard: 1,
        n: 2,
    },
    Op::Observe {
        name: "latency_us",
        shard: 0,
        value_us: 40,
    },
];

const THREAD_B: &[Op] = &[
    Op::Count {
        name: "calls_total",
        labels: &[("api", "CreateVpc")],
        shard: 7,
        n: 3,
    },
    Op::Count {
        name: "errors_total",
        labels: &[],
        shard: 2,
        n: 1,
    },
    Op::Observe {
        name: "latency_us",
        shard: 9,
        value_us: 900,
    },
];

const THREAD_C: &[Op] = &[
    // Label order differs from THREAD_A's CreateVpc series on purpose:
    // canonicalization must land on the same series under every schedule.
    Op::Count {
        name: "calls_total",
        labels: &[("api", "DescribeVpcs")],
        shard: 15,
        n: 10,
    },
    Op::Count {
        name: "errors_total",
        labels: &[],
        shard: 2,
        n: 4,
    },
    Op::Observe {
        name: "latency_us",
        shard: 3,
        value_us: 40,
    },
];

fn run(schedule: &[Op]) -> String {
    let registry = Registry::new();
    for op in schedule {
        apply(&registry, op);
    }
    registry.render(RenderMode::Full)
}

#[test]
fn every_schedule_renders_identically() {
    let scripts: &[&[Op]] = &[THREAD_A, THREAD_B, THREAD_C];
    let reference = run(&scripts.concat());
    assert!(reference.contains("calls_total{api=\"CreateVpc\"} 5"));
    assert!(reference.contains("calls_total{api=\"DescribeVpcs\"} 11"));
    assert!(reference.contains("errors_total 5"));
    let mut count = 0usize;
    interleavings(scripts, &mut |schedule| {
        count += 1;
        let rendered = run(schedule);
        assert_eq!(
            rendered, reference,
            "schedule #{} diverged from the sequential reference",
            count
        );
    });
    // 9 ops over 3 threads: 9! / (3!)^3 distinct interleavings.
    assert_eq!(count, 1680, "enumeration must cover the full space");
}

/// Shard placement is load-balancing only: sweeping every op across every
/// shard offset must leave the render untouched.
#[test]
fn shard_assignment_never_changes_totals() {
    let base: Vec<Op> = [THREAD_A, THREAD_B, THREAD_C].concat();
    let reference = run(&base);
    for offset in 1..SHARDS {
        let shifted: Vec<Op> = base
            .iter()
            .map(|op| match *op {
                Op::Count {
                    name,
                    labels,
                    shard,
                    n,
                } => Op::Count {
                    name,
                    labels,
                    shard: (shard + offset) % SHARDS,
                    n,
                },
                Op::Observe {
                    name,
                    shard,
                    value_us,
                } => Op::Observe {
                    name,
                    shard: (shard + offset) % SHARDS,
                    value_us,
                },
            })
            .collect();
        assert_eq!(run(&shifted), reference, "shard offset {} leaked", offset);
    }
}

/// The same schedule replayed against a *shared* registry from real
/// threads, one thread per model script, must agree with the enumerated
/// model on totals (the schedule classes promise nothing about timing
/// families beyond sample counts, and these scripts only use exact
/// values, so the full render is comparable).
#[test]
fn real_threads_agree_with_the_model() {
    let reference = run(&[THREAD_A, THREAD_B, THREAD_C].concat());
    for _ in 0..16 {
        let registry = std::sync::Arc::new(Registry::new());
        let threads: Vec<_> = [THREAD_A, THREAD_B, THREAD_C]
            .into_iter()
            .map(|script| {
                let registry = std::sync::Arc::clone(&registry);
                std::thread::spawn(move || {
                    for op in script {
                        apply(&registry, op);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(registry.render(RenderMode::Full), reference);
    }
}
