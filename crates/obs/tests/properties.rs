//! Property tests for `lce-obs` (satellites): histogram snapshots are
//! invariant under shard assignment and observation order, total count
//! always equals the sum of bucket counts, snapshot merging is
//! commutative/associative, and rendered Prometheus text round-trips
//! through the crate's own minimal parser.

use lce_obs::{
    parse_histograms, parse_text, Class, HistSnapshot, Histogram, Registry, RenderMode, SHARDS,
};
use proptest::prelude::*;

/// An arbitrary observation batch: (shard, value) pairs where the value
/// spans the whole bucket ladder including the overflow slot.
fn arb_observations() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..SHARDS * 2, 0u64..20_000_000), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The snapshot depends only on the multiset of observed values:
    /// which shard each observation lands on, and in what order the
    /// observations happen, must not change it.
    #[test]
    fn snapshot_is_shard_and_order_invariant(obs in arb_observations()) {
        let scattered = Histogram::new();
        for (shard, v) in &obs {
            scattered.observe_in_shard(*shard, *v);
        }
        // Same values, reversed order, all on one shard.
        let serial = Histogram::new();
        for (_, v) in obs.iter().rev() {
            serial.observe_in_shard(0, *v);
        }
        prop_assert_eq!(scattered.snapshot(), serial.snapshot());
    }

    /// Structural invariants of any snapshot: the count equals the sum of
    /// the bucket counts, and the sum equals the sum of observed values.
    #[test]
    fn count_equals_bucket_sum(obs in arb_observations()) {
        let h = Histogram::new();
        for (shard, v) in &obs {
            h.observe_in_shard(*shard, *v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, obs.len() as u64);
        prop_assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
        prop_assert_eq!(snap.sum, obs.iter().map(|(_, v)| *v).sum::<u64>());
        prop_assert_eq!(snap.representative_samples().len(), obs.len());
    }

    /// Merging is commutative and associative, and merging any shard-wise
    /// split of one batch reproduces the whole-batch snapshot — so the
    /// order accounts or shards are folded in never matters.
    #[test]
    fn merge_is_order_invariant(obs in arb_observations(), split in 0usize..=100) {
        let cut = obs.len() * split / 100;
        let whole = Histogram::new();
        let (left, right) = (Histogram::new(), Histogram::new());
        for (i, (shard, v)) in obs.iter().enumerate() {
            whole.observe_in_shard(*shard, *v);
            let part = if i < cut { &left } else { &right };
            part.observe_in_shard(*shard, *v);
        }
        let (l, r) = (left.snapshot(), right.snapshot());
        prop_assert_eq!(l.merge(&r), r.merge(&l));
        prop_assert_eq!(l.merge(&r), whole.snapshot());
        let empty = HistSnapshot::empty();
        prop_assert_eq!(l.merge(&empty).merge(&r), empty.merge(&l).merge(&r));
    }

    /// Rendered Prometheus text round-trips through the minimal parser:
    /// every counter value and every histogram's buckets/count/sum are
    /// recovered exactly, in both render modes.
    #[test]
    fn prometheus_text_round_trips(
        counts in prop::collection::vec(0u64..1_000_000, 1..8),
        obs in arb_observations(),
    ) {
        let r = Registry::new();
        for (i, n) in counts.iter().enumerate() {
            let api = format!("Api{}", i);
            r.counter("lce_api_calls_total", "calls", Class::Schedule, &[("api", &api)])
                .add(*n);
        }
        r.counter("lce_plain_total", "unlabeled", Class::BestEffort, &[]).add(42);
        let h = r.histogram("lce_lat_us", "latency", Class::Timing, &[("phase", "parse")]);
        for (shard, v) in &obs {
            h.observe_in_shard(*shard, *v);
        }

        let parsed = parse_text(&r.render(RenderMode::Full)).unwrap();
        for (i, n) in counts.iter().enumerate() {
            let series = format!("lce_api_calls_total{{api=\"Api{}\"}}", i);
            prop_assert_eq!(parsed.get(&series), Some(*n));
            prop_assert_eq!(parsed.sum_where("lce_api_calls_total", "api", &format!("Api{}", i)), *n);
        }
        prop_assert_eq!(parsed.get("lce_plain_total"), Some(42));
        prop_assert_eq!(
            parsed.types.get("lce_api_calls_total").map(String::as_str),
            Some("counter")
        );
        let hists = parse_histograms(&parsed);
        prop_assert_eq!(hists.len(), 1);
        let got = HistSnapshot {
            buckets: hists[0].buckets.clone(),
            count: hists[0].count,
            sum: hists[0].sum,
        };
        prop_assert_eq!(got, h.snapshot());

        // Deterministic mode renders only schedule-class families, and
        // what it renders agrees with the full render.
        let det = parse_text(&r.render(RenderMode::Deterministic)).unwrap();
        prop_assert_eq!(det.types.len(), 1);
        for (series, value) in &det.samples {
            prop_assert_eq!(parsed.get(series), Some(*value));
        }
        prop_assert!(det.get("lce_plain_total").is_none());
    }
}
