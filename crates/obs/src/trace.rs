//! Structured trace events: a bounded, process-wide event buffer for
//! after-the-fact inspection (`lce serve --metrics` debugging, tests).
//!
//! Events carry a monotonically assigned sequence number and no wall
//! clock — the buffer is evidence of *what* happened in *what order* per
//! producer, never of when, keeping it out of determinism arguments.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global assignment order (unique per buffer).
    pub seq: u64,
    /// Event kind (e.g. `accept`, `fault`, `drain`).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded FIFO of trace events; pushing past capacity evicts the
/// oldest event.
pub struct TraceBuf {
    capacity: usize,
    next_seq: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl TraceBuf {
    /// A buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuf {
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one event.
    pub fn push(&self, kind: impl Into<String>, detail: impl Into<String>) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(TraceEvent {
            seq,
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// How many events have ever been pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().cloned().collect()
    }
}

impl std::fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuf")
            .field("capacity", &self.capacity)
            .field("pushed", &self.total_pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_evicts_oldest() {
        let buf = TraceBuf::new(3);
        for i in 0..5 {
            buf.push("k", format!("e{}", i));
        }
        let events = buf.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "e2");
        assert_eq!(events[2].detail, "e4");
        assert_eq!(events[2].seq, 4);
        assert_eq!(buf.total_pushed(), 5);
    }
}
