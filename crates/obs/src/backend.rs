//! [`ObservedBackend`]: a [`Backend`] wrapper tallying per-API call
//! counts, error classes and invoke latency into an account registry and
//! the global registry simultaneously.
//!
//! The wrapper is pure observation: it never alters the call, the
//! response or the delegation order, so wrapping is behaviour-preserving
//! by construction (pinned by the serving passthrough test). Counter
//! handles are cached per API inside the wrapper — `invoke` takes
//! `&mut self`, so the cache needs no lock — and increments are
//! lock-free.

use crate::hist::Histogram;
use crate::hub::{API_CALLS_HELP, API_ERRORS_HELP, INVOKE_LATENCY_HELP};
use crate::registry::{Class, Registry};
use crate::Counter;
use lce_emulator::{ApiCall, ApiResponse, Backend, ResourceStore};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Metric name: per-API invocation counter.
pub const API_CALLS: &str = "lce_api_calls_total";
/// Metric name: per-API, per-error-code counter.
pub const API_ERRORS: &str = "lce_api_errors_total";
/// Metric name: invoke latency histogram (microseconds).
pub const INVOKE_LATENCY: &str = "lce_backend_invoke_latency_us";

/// A [`Backend`] wrapper that instruments every `invoke`.
pub struct ObservedBackend<B: Backend> {
    inner: B,
    global: Arc<Registry>,
    account: Arc<Registry>,
    latency: [Arc<Histogram>; 2],
    calls: BTreeMap<String, [Arc<Counter>; 2]>,
    errors: BTreeMap<(String, String), [Arc<Counter>; 2]>,
}

impl<B: Backend> ObservedBackend<B> {
    /// Wrap `inner`, writing to both `global` and the per-`account`
    /// registry (normally obtained via
    /// [`ObsHub::observe_backend`](crate::ObsHub::observe_backend)).
    pub fn new(inner: B, global: Arc<Registry>, account: Arc<Registry>) -> Self {
        let latency = [
            global.histogram(INVOKE_LATENCY, INVOKE_LATENCY_HELP, Class::Timing, &[]),
            account.histogram(INVOKE_LATENCY, INVOKE_LATENCY_HELP, Class::Timing, &[]),
        ];
        ObservedBackend {
            inner,
            global,
            account,
            latency,
            calls: BTreeMap::new(),
            errors: BTreeMap::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn call_counters(&mut self, api: &str) -> &[Arc<Counter>; 2] {
        if !self.calls.contains_key(api) {
            let handles = [
                self.global
                    .counter(API_CALLS, API_CALLS_HELP, Class::Schedule, &[("api", api)]),
                self.account
                    .counter(API_CALLS, API_CALLS_HELP, Class::Schedule, &[("api", api)]),
            ];
            self.calls.insert(api.to_string(), handles);
        }
        &self.calls[api]
    }

    fn error_counters(&mut self, api: &str, code: &str) -> &[Arc<Counter>; 2] {
        let key = (api.to_string(), code.to_string());
        if !self.errors.contains_key(&key) {
            let labels = [("api", api), ("code", code)];
            let handles = [
                self.global
                    .counter(API_ERRORS, API_ERRORS_HELP, Class::Schedule, &labels),
                self.account
                    .counter(API_ERRORS, API_ERRORS_HELP, Class::Schedule, &labels),
            ];
            self.errors.insert(key.clone(), handles);
        }
        &self.errors[&key]
    }
}

impl<B: Backend> Backend for ObservedBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
        let start = Instant::now();
        let resp = self.inner.invoke(call);
        let elapsed_us = start.elapsed().as_micros() as u64;
        for c in self.call_counters(&call.api) {
            c.inc();
        }
        if let Some(code) = resp.error_code() {
            let code = code.to_string();
            for c in self.error_counters(&call.api, &code) {
                c.inc();
            }
        }
        for h in &self.latency {
            h.observe(elapsed_us);
        }
        resp
    }

    fn invoke_read(&self, call: &ApiCall) -> Option<ApiResponse> {
        let start = Instant::now();
        let resp = self.inner.invoke_read(call)?;
        let elapsed_us = start.elapsed().as_micros() as u64;
        // `&self` here, so the `&mut` counter caches are out of reach;
        // fetch handles from the registries directly (same metrics, same
        // labels — the registry dedupes, so both paths bump one counter).
        let api: &str = &call.api;
        let labels = [("api", api)];
        self.global
            .counter(API_CALLS, API_CALLS_HELP, Class::Schedule, &labels)
            .inc();
        self.account
            .counter(API_CALLS, API_CALLS_HELP, Class::Schedule, &labels)
            .inc();
        if let Some(code) = resp.error_code() {
            let labels = [("api", api), ("code", code)];
            self.global
                .counter(API_ERRORS, API_ERRORS_HELP, Class::Schedule, &labels)
                .inc();
            self.account
                .counter(API_ERRORS, API_ERRORS_HELP, Class::Schedule, &labels)
                .inc();
        }
        for h in &self.latency {
            h.observe(elapsed_us);
        }
        Some(resp)
    }

    fn reset(&mut self) {
        // Metrics are monotonic run evidence; a workload `_reset` clears
        // the store, not the tallies.
        self.inner.reset();
    }

    fn api_names(&self) -> Vec<String> {
        self.inner.api_names()
    }

    fn supports(&self, api: &str) -> bool {
        self.inner.supports(api)
    }

    fn snapshot(&self) -> Option<ResourceStore> {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_emulator::ApiError;

    struct Flaky {
        calls: u64,
    }

    impl Backend for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
            self.calls += 1;
            if call.api == "Fail" {
                ApiResponse::err(ApiError::new("Boom", "requested"))
            } else {
                ApiResponse::ok(BTreeMap::new())
            }
        }
        fn reset(&mut self) {
            self.calls = 0;
        }
        fn api_names(&self) -> Vec<String> {
            vec!["Ok".into(), "Fail".into()]
        }
    }

    #[test]
    fn tallies_calls_and_error_classes_in_both_registries() {
        let global = Arc::new(Registry::new());
        let account = Arc::new(Registry::new());
        let mut b = ObservedBackend::new(
            Flaky { calls: 0 },
            Arc::clone(&global),
            Arc::clone(&account),
        );
        for _ in 0..3 {
            assert!(b.invoke(&ApiCall::new("Ok")).is_ok());
        }
        assert!(!b.invoke(&ApiCall::new("Fail")).is_ok());
        for r in [&global, &account] {
            assert_eq!(r.counter_value(API_CALLS, &[("api", "Ok")]), Some(3));
            assert_eq!(r.counter_value(API_CALLS, &[("api", "Fail")]), Some(1));
            assert_eq!(
                r.counter_value(API_ERRORS, &[("api", "Fail"), ("code", "Boom")]),
                Some(1)
            );
            assert_eq!(
                r.counter_value(API_ERRORS, &[("api", "Ok"), ("code", "Boom")]),
                None
            );
        }
        assert_eq!(b.inner().calls, 4, "delegation untouched");
    }

    #[test]
    fn read_path_is_tallied_like_the_write_path() {
        struct Readable;
        impl Backend for Readable {
            fn name(&self) -> &str {
                "readable"
            }
            fn invoke(&mut self, _call: &ApiCall) -> ApiResponse {
                ApiResponse::ok(BTreeMap::new())
            }
            fn invoke_read(&self, call: &ApiCall) -> Option<ApiResponse> {
                match call.api.as_str() {
                    "Get" => Some(ApiResponse::ok(BTreeMap::new())),
                    "GetMissing" => Some(ApiResponse::err(ApiError::new("NotFound", "nope"))),
                    _ => None,
                }
            }
            fn reset(&mut self) {}
            fn api_names(&self) -> Vec<String> {
                vec!["Get".into()]
            }
        }
        let global = Arc::new(Registry::new());
        let account = Arc::new(Registry::new());
        let mut b = ObservedBackend::new(Readable, Arc::clone(&global), Arc::clone(&account));
        assert!(b.invoke_read(&ApiCall::new("Get")).is_some());
        assert!(b.invoke_read(&ApiCall::new("GetMissing")).is_some());
        assert!(
            b.invoke_read(&ApiCall::new("Put")).is_none(),
            "declined reads are not tallied here — invoke will count them"
        );
        // The write path lands on the same counters afterwards.
        b.invoke(&ApiCall::new("Get"));
        for r in [&global, &account] {
            assert_eq!(r.counter_value(API_CALLS, &[("api", "Get")]), Some(2));
            assert_eq!(
                r.counter_value(API_CALLS, &[("api", "GetMissing")]),
                Some(1)
            );
            assert_eq!(r.counter_value(API_CALLS, &[("api", "Put")]), None);
            assert_eq!(
                r.counter_value(API_ERRORS, &[("api", "GetMissing"), ("code", "NotFound")]),
                Some(1)
            );
        }
    }

    #[test]
    fn passthrough_surface_is_untouched() {
        let global = Arc::new(Registry::new());
        let account = Arc::new(Registry::new());
        let mut b = ObservedBackend::new(Flaky { calls: 0 }, global, account);
        assert_eq!(b.name(), "flaky");
        assert!(b.supports("Ok"));
        assert_eq!(b.api_names().len(), 2);
        assert!(b.snapshot().is_none());
        b.invoke(&ApiCall::new("Ok"));
        b.reset();
        assert_eq!(b.inner().calls, 0, "reset reaches inner");
    }
}
