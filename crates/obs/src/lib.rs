//! # lce-obs: lock-free, shard-per-thread observability
//!
//! Production emulators are judged on measured behaviour — latency,
//! throughput, error and fault tallies — not just pass/fail oracles. This
//! crate gives the serving stack that evidence without giving up the
//! repo's signature property: under a seeded
//! [`FaultPlan`](lce_faults::FaultPlan) every schedule-class metric is
//! *exactly* predictable, and with observability disabled the server stays
//! byte-identical to uninstrumented behaviour.
//!
//! Pieces:
//!
//! * [`Counter`] / [`Histogram`] — monotonic counters and fixed-bucket
//!   latency histograms, sharded per thread: increments touch one
//!   cache-line-aligned atomic shard (no locks, no contention), reads sum
//!   the shards ([`counter`], [`hist`]).
//! * [`Registry`] — named metric families with labels and a
//!   [`Class`] taxonomy separating schedule-deterministic counters from
//!   best-effort and timing data; renders deterministic, sorted
//!   Prometheus text ([`registry`]).
//! * [`prom`] — the text renderer plus a minimal parser
//!   ([`parse_text`]) used by round-trip tests and the `lce metrics` CLI.
//! * [`TraceBuf`] — a bounded buffer of structured trace events
//!   ([`trace`]).
//! * [`ObservedBackend`] — wraps any
//!   [`Backend`](lce_emulator::Backend), tallying per-API calls, error
//!   classes and invoke latency ([`backend`]).
//! * [`ObsHub`] — one global registry plus per-account registries, the
//!   handle the server, the chaos harness and the fault-injection
//!   listener all share ([`hub`]).

#![deny(missing_docs)]

pub mod backend;
pub mod counter;
pub mod hist;
pub mod hub;
pub mod prom;
pub mod registry;
pub mod trace;

pub use backend::{ObservedBackend, API_CALLS, API_ERRORS, INVOKE_LATENCY};
pub use counter::{Counter, SHARDS};
pub use hist::{HistSnapshot, Histogram, LATENCY_BOUNDS_US};
pub use hub::{ObsHub, CONNECTIONS, FAULTS_INJECTED, HTTP_REQUESTS, PHASE_LATENCY, WIRE_FAULTS};
pub use prom::{parse_histograms, parse_text, ParsedHistogram, ParsedMetrics};
pub use registry::{Class, Registry, RenderMode};
pub use trace::{TraceBuf, TraceEvent};
