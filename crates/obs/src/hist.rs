//! Fixed-bucket latency histograms, sharded like [`Counter`]s.
//!
//! Bucket bounds are a fixed microsecond ladder shared by every latency
//! metric, so histograms from different shards, accounts or runs are
//! always merge-compatible. Observation is lock-free: one relaxed
//! `fetch_add` on the bucket, the count and the sum of the calling
//! thread's shard.

use crate::counter::{my_shard, SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// The shared bucket upper bounds, in microseconds. An implicit overflow
/// bucket (`+Inf`) follows the last bound.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000,
];

/// One shard: per-bucket counts (including the overflow slot), the
/// observation count and the value sum.
struct Shard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: (0..=LATENCY_BOUNDS_US.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A sharded fixed-bucket histogram over microsecond values.
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// The bucket index for a value: the first bound ≥ the value, or the
    /// overflow slot.
    fn bucket_of(value_us: u64) -> usize {
        LATENCY_BOUNDS_US
            .iter()
            .position(|b| value_us <= *b)
            .unwrap_or(LATENCY_BOUNDS_US.len())
    }

    /// Record one observation on the calling thread's shard (lock-free).
    pub fn observe(&self, value_us: u64) {
        self.observe_in_shard(my_shard(), value_us);
    }

    /// Record one observation on an explicit shard — used by tests
    /// proving shard interleaving does not change the snapshot.
    pub fn observe_in_shard(&self, shard: usize, value_us: u64) {
        let s = &self.shards[shard % SHARDS];
        s.buckets[Self::bucket_of(value_us)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value_us, Ordering::Relaxed);
    }

    /// Sum the shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; LATENCY_BOUNDS_US.len() + 1];
        let mut count = 0u64;
        let mut sum = 0u64;
        for s in &self.shards {
            for (out, b) in buckets.iter_mut().zip(&s.buckets) {
                *out += b.load(Ordering::Relaxed);
            }
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count,
            sum,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

/// A merged view of a histogram: per-bucket (non-cumulative) counts with
/// the overflow slot last, plus the observation count and value sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, `LATENCY_BOUNDS_US.len() + 1` entries (the last
    /// is the `+Inf` overflow slot).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (microseconds).
    pub sum: u64,
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; LATENCY_BOUNDS_US.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Merge two snapshots bucket-wise. Commutative and associative, so
    /// any shard or account merge order gives the same result.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }

    /// Expand the buckets into representative samples (each bucket's
    /// upper bound, repeated by its count; the overflow bucket uses twice
    /// the last bound) — the shape [`lce-metrics`'s `Cdf`] consumes for
    /// percentile reporting.
    pub fn representative_samples(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count as usize);
        for (i, n) in self.buckets.iter().enumerate() {
            let bound = LATENCY_BOUNDS_US
                .get(i)
                .copied()
                .unwrap_or(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1] * 2);
            for _ in 0..*n {
                out.push(bound as usize);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_values() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(10);
        h.observe(11);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets[0], 2, "0 and 10 land in the first bucket");
        assert_eq!(snap.buckets[1], 1, "11 lands in the 25us bucket");
        assert_eq!(*snap.buckets.last().unwrap(), 1, "overflow slot");
        assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
    }

    #[test]
    fn merge_is_commutative() {
        let a = Histogram::new();
        a.observe(5);
        a.observe(600);
        let b = Histogram::new();
        b.observe(5);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.merge(&sb), sb.merge(&sa));
        assert_eq!(sa.merge(&sb).count, 3);
        assert_eq!(sa.merge(&sb).sum, 610);
    }

    #[test]
    fn representative_samples_match_counts() {
        let h = Histogram::new();
        for v in [1, 1, 30, 10_000_000] {
            h.observe(v);
        }
        let samples = h.snapshot().representative_samples();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples.iter().filter(|s| **s == 10).count(), 2);
    }
}
