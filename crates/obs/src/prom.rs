//! Prometheus exposition-format text: rendering helpers used by
//! [`Registry`](crate::Registry) and a minimal parser used by round-trip
//! tests, the chaos scrape/schedule equality check and the `lce metrics`
//! CLI.
//!
//! The parser handles exactly what the renderer emits: `# HELP` /
//! `# TYPE` comments, `name value` and `name{labels} value` samples with
//! unsigned integer values. It is not a general OpenMetrics parser.

use crate::hist::{HistSnapshot, LATENCY_BOUNDS_US};
use std::collections::BTreeMap;

/// Canonical label rendering: keys sorted, values escaped, `{}`-wrapped;
/// the empty label set renders as `""`.
pub fn label_string(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort();
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Merge extra labels into an already-canonical label string (used to
/// splice `le` into histogram bucket series).
fn with_extra_label(labels: &str, key: &str, value: &str) -> String {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    let mut pairs: Vec<String> = if inner.is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::to_string).collect()
    };
    pairs.push(format!("{}=\"{}\"", key, escape(value)));
    pairs.sort();
    format!("{{{}}}", pairs.join(","))
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Append one counter sample line.
pub fn render_counter(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(&format!("{}{} {}\n", name, labels, value));
}

/// Append one histogram: cumulative `_bucket` series (ending in
/// `le="+Inf"`), then `_sum` and `_count`.
pub fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistSnapshot) {
    let mut cumulative = 0u64;
    for (i, n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        let le = match LATENCY_BOUNDS_US.get(i) {
            Some(bound) => bound.to_string(),
            None => "+Inf".to_string(),
        };
        let bucket_labels = with_extra_label(labels, "le", &le);
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name, bucket_labels, cumulative
        ));
    }
    out.push_str(&format!("{}_sum{} {}\n", name, labels, snap.sum));
    out.push_str(&format!("{}_count{} {}\n", name, labels, snap.count));
}

/// Parsed metrics: every sample line, keyed by `name{labels}` exactly as
/// rendered, plus the `# TYPE` declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedMetrics {
    /// `name{labels}` → value for every sample line.
    pub samples: BTreeMap<String, u64>,
    /// Family name → declared type (`counter` or `histogram`).
    pub types: BTreeMap<String, String>,
}

impl ParsedMetrics {
    /// Look up one sample by its full rendered series name.
    pub fn get(&self, series: &str) -> Option<u64> {
        self.samples.get(series).copied()
    }

    /// Sum every sample of `name` whose label string contains
    /// `key="value"` (e.g. all `lce_faults_injected_total` with
    /// `kind="throttle"` across series).
    pub fn sum_where(&self, name: &str, key: &str, value: &str) -> u64 {
        let needle = format!("{}=\"{}\"", key, escape(value));
        self.samples
            .iter()
            .filter(|(series, _)| {
                series.starts_with(name)
                    && series[name.len()..].starts_with('{')
                    && series.contains(&needle)
            })
            .map(|(_, v)| v)
            .sum()
    }
}

/// Parse Prometheus text produced by [`Registry::render`]
/// (crate::Registry::render). Returns an error message on any line it
/// does not understand.
pub fn parse_text(text: &str) -> Result<ParsedMetrics, String> {
    let mut parsed = ParsedMetrics::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("malformed TYPE line: `{}`", line));
            };
            parsed.types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line: `{}`", line))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-integer sample value in `{}`", line))?;
        if let Some(brace) = series.find('{') {
            if !series.ends_with('}') {
                return Err(format!("unterminated label set in `{}`", line));
            }
            // Validate the label body decodes (keys and quoted values).
            let body = &series[brace + 1..series.len() - 1];
            for pair in split_label_pairs(body)? {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed label in `{}`", line))?;
                if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("malformed label `{}` in `{}`", pair, line));
                }
                let _ = unescape(&v[1..v.len() - 1]);
            }
        }
        parsed.samples.insert(series.to_string(), value);
    }
    Ok(parsed)
}

/// Split a label body on commas that are outside quoted values.
fn split_label_pairs(body: &str) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in label body `{}`", body));
    }
    if !body.is_empty() {
        out.push(&body[start..]);
    }
    Ok(out)
}

/// One histogram family instance reassembled from parsed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedHistogram {
    /// Family name (without `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// The series' label string with `le` removed (canonical form).
    pub labels: String,
    /// Per-bucket (non-cumulative) counts in bound order, overflow last.
    pub buckets: Vec<u64>,
    /// Observation count.
    pub count: u64,
    /// Value sum (microseconds).
    pub sum: u64,
}

impl ParsedHistogram {
    /// Representative samples for percentile reporting (see
    /// [`HistSnapshot::representative_samples`]).
    pub fn representative_samples(&self) -> Vec<usize> {
        HistSnapshot {
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum,
        }
        .representative_samples()
    }
}

/// Reassemble every histogram in parsed metrics text.
pub fn parse_histograms(parsed: &ParsedMetrics) -> Vec<ParsedHistogram> {
    let mut out: BTreeMap<(String, String), ParsedHistogram> = BTreeMap::new();
    let hist_names: Vec<&String> = parsed
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name)
        .collect();
    for (series, value) in &parsed.samples {
        for name in &hist_names {
            let Some(rest) = series.strip_prefix(name.as_str()) else {
                continue;
            };
            if let Some(labels) = rest.strip_prefix("_bucket") {
                let (bare, le) = strip_le(labels);
                let entry = out
                    .entry((name.to_string(), bare.clone()))
                    .or_insert_with(|| empty_hist(name, &bare));
                let idx = match le.as_str() {
                    "+Inf" => LATENCY_BOUNDS_US.len(),
                    bound => LATENCY_BOUNDS_US
                        .iter()
                        .position(|b| b.to_string() == bound)
                        .unwrap_or(LATENCY_BOUNDS_US.len()),
                };
                // Stored cumulative; decumulated below.
                entry.buckets[idx] = *value;
            } else if let Some(labels) = rest.strip_prefix("_sum") {
                out.entry((name.to_string(), labels.to_string()))
                    .or_insert_with(|| empty_hist(name, labels))
                    .sum = *value;
            } else if let Some(labels) = rest.strip_prefix("_count") {
                out.entry((name.to_string(), labels.to_string()))
                    .or_insert_with(|| empty_hist(name, labels))
                    .count = *value;
            }
        }
    }
    let mut hists: Vec<ParsedHistogram> = out.into_values().collect();
    for h in &mut hists {
        // Cumulative → per-bucket.
        for i in (1..h.buckets.len()).rev() {
            h.buckets[i] = h.buckets[i].saturating_sub(h.buckets[i - 1]);
        }
    }
    hists
}

fn empty_hist(name: &str, labels: &str) -> ParsedHistogram {
    ParsedHistogram {
        name: name.to_string(),
        labels: labels.to_string(),
        buckets: vec![0; LATENCY_BOUNDS_US.len() + 1],
        count: 0,
        sum: 0,
    }
}

/// Remove the `le` label from a bucket label string, returning the bare
/// label string and the `le` value.
fn strip_le(labels: &str) -> (String, String) {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    let mut kept = Vec::new();
    let mut le = String::new();
    for pair in split_label_pairs(inner).unwrap_or_default() {
        if let Some(v) = pair.strip_prefix("le=\"") {
            le = unescape(v.trim_end_matches('"'));
        } else {
            kept.push(pair.to_string());
        }
    }
    let bare = if kept.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", kept.join(","))
    };
    (bare, le)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Class, Registry, RenderMode};

    #[test]
    fn label_string_sorts_and_escapes() {
        assert_eq!(label_string(&[]), "");
        assert_eq!(
            label_string(&[("b", "x\"y"), ("a", "1")]),
            "{a=\"1\",b=\"x\\\"y\"}"
        );
    }

    #[test]
    fn render_and_parse_round_trip() {
        let r = Registry::new();
        r.counter("a_total", "first", Class::Schedule, &[]).add(7);
        r.counter(
            "b_total",
            "second",
            Class::Schedule,
            &[("api", "CreateVpc")],
        )
        .add(3);
        let h = r.histogram("lat_us", "latency", Class::Timing, &[("phase", "parse")]);
        h.observe(12);
        h.observe(700_000);
        let text = r.render(RenderMode::Full);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed.get("a_total"), Some(7));
        assert_eq!(parsed.get("b_total{api=\"CreateVpc\"}"), Some(3));
        assert_eq!(
            parsed.types.get("lat_us").map(String::as_str),
            Some("histogram")
        );
        let hists = parse_histograms(&parsed);
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].labels, "{phase=\"parse\"}");
        assert_eq!(hists[0].count, 2);
        assert_eq!(hists[0].sum, 700_012);
        assert_eq!(hists[0].buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn sum_where_aggregates_across_series() {
        let text = "x_total{kind=\"a\",who=\"1\"} 2\nx_total{kind=\"a\",who=\"2\"} 3\nx_total{kind=\"b\"} 9\n";
        let parsed = parse_text(text).unwrap();
        assert_eq!(parsed.sum_where("x_total", "kind", "a"), 5);
        assert_eq!(parsed.sum_where("x_total", "kind", "b"), 9);
        assert_eq!(parsed.sum_where("x_total", "kind", "zzz"), 0);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_text("name_without_value\n").is_err());
        assert!(parse_text("x 1.5\n").is_err());
        assert!(parse_text("x{unterminated 3\n").is_err());
    }
}
