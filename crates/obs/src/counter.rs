//! Sharded monotonic counters: one cache-line-aligned atomic per shard,
//! a thread-local shard assignment, relaxed increments, summed reads.
//!
//! The shard count is fixed so a counter is a flat array with no
//! allocation on the hot path. Threads are assigned shards round-robin
//! from a process-global counter; two threads can share a shard (the
//! atomics stay correct — sharding only reduces contention, it never
//! gates correctness).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter/histogram. A power of two comfortably
/// above the server's default worker count.
pub const SHARDS: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The calling thread's shard index (stable for the thread's lifetime).
pub(crate) fn my_shard() -> usize {
    MY_SHARD.with(|s| *s)
}

/// One cache line's worth of counter, to stop false sharing between
/// shards that sit adjacent in the array.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonic, shard-per-thread counter.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` on the calling thread's shard (lock-free).
    pub fn add(&self, n: u64) {
        self.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` on an explicit shard — used by tests proving shard
    /// interleaving does not change the total.
    pub fn add_in_shard(&self, shard: usize, n: u64) {
        self.shards[shard % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total: the sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sums_across_shards() {
        let c = Counter::new();
        for shard in 0..SHARDS {
            c.add_in_shard(shard, (shard as u64) + 1);
        }
        assert_eq!(c.get(), (1..=SHARDS as u64).sum::<u64>());
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let c = Arc::new(Counter::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
