//! [`ObsHub`]: the shared observability handle — one global registry,
//! one registry per account, a trace buffer, and adapters that plug the
//! hub into backends ([`ObsHub::observe_backend`]) and fault injection
//! ([`ObsHub::fault_listener`]).

use crate::backend::ObservedBackend;
use crate::registry::{Class, Registry, RenderMode};
use crate::trace::TraceBuf;
use lce_emulator::Backend;
use lce_faults::{BackendFault, FaultListener};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Metric name: injected-fault counter, labeled by fault `kind`.
pub const FAULTS_INJECTED: &str = "lce_faults_injected_total";
/// Metric name: dispatched HTTP request counter, labeled `route`/`status`.
pub const HTTP_REQUESTS: &str = "lce_http_requests_total";
/// Metric name: wire-fault counter, labeled `point`/`kind`.
pub const WIRE_FAULTS: &str = "lce_wire_faults_total";
/// Metric name: connection lifecycle counter, labeled `event`.
pub const CONNECTIONS: &str = "lce_connections_total";
/// Metric name: request phase latency histogram, labeled `phase`.
pub const PHASE_LATENCY: &str = "lce_request_phase_latency_us";

pub(crate) const API_CALLS_HELP: &str = "Backend invocations by API.";
pub(crate) const API_ERRORS_HELP: &str = "Backend error responses by API and error code.";
pub(crate) const INVOKE_LATENCY_HELP: &str = "Backend invoke latency in microseconds.";
/// Help text for [`FAULTS_INJECTED`].
pub const FAULTS_INJECTED_HELP: &str = "Faults injected by the seeded fault plan, by kind.";
/// Help text for [`HTTP_REQUESTS`].
pub const HTTP_REQUESTS_HELP: &str = "Dispatched HTTP requests by route class and status.";
/// Help text for [`WIRE_FAULTS`].
pub const WIRE_FAULTS_HELP: &str = "Injected wire faults by fault point and kind.";
/// Help text for [`CONNECTIONS`].
pub const CONNECTIONS_HELP: &str = "Connection lifecycle events (accepted, reused, drained).";
/// Help text for [`PHASE_LATENCY`].
pub const PHASE_LATENCY_HELP: &str = "Request lifecycle phase latency in microseconds.";

/// The shared observability hub (see module docs). Cheap to share via
/// `Arc`; every write path is lock-free after first registration.
pub struct ObsHub {
    global: Arc<Registry>,
    accounts: Mutex<BTreeMap<String, Arc<Registry>>>,
    trace: TraceBuf,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new()
    }
}

impl ObsHub {
    /// A fresh hub with an empty global registry and no accounts.
    pub fn new() -> Self {
        ObsHub {
            global: Arc::new(Registry::new()),
            accounts: Mutex::new(BTreeMap::new()),
            trace: TraceBuf::new(4096),
        }
    }

    /// The global registry (server lifecycle + cross-account totals).
    pub fn global(&self) -> &Arc<Registry> {
        &self.global
    }

    /// The account's registry, created on first use.
    pub fn account(&self, id: &str) -> Arc<Registry> {
        Arc::clone(
            self.accounts
                .lock()
                .entry(id.to_string())
                .or_insert_with(|| Arc::new(Registry::new())),
        )
    }

    /// Accounts with a registry, sorted.
    pub fn account_ids(&self) -> Vec<String> {
        self.accounts.lock().keys().cloned().collect()
    }

    /// `true` if the account has a registry (no creation).
    pub fn has_account(&self, id: &str) -> bool {
        self.accounts.lock().contains_key(id)
    }

    /// The trace event buffer.
    pub fn trace(&self) -> &TraceBuf {
        &self.trace
    }

    /// Render the global registry as Prometheus text.
    pub fn render_global(&self, mode: RenderMode) -> String {
        self.global.render(mode)
    }

    /// Render one account's registry, or `None` if the account has no
    /// registry yet (rendering never materializes an account).
    pub fn render_account(&self, id: &str, mode: RenderMode) -> Option<String> {
        let registry = Arc::clone(self.accounts.lock().get(id)?);
        Some(registry.render(mode))
    }

    /// Wrap a backend so its invocations are tallied under `account` (and
    /// in the global registry).
    pub fn observe_backend<B: Backend>(&self, inner: B, account: &str) -> ObservedBackend<B> {
        ObservedBackend::new(inner, Arc::clone(&self.global), self.account(account))
    }

    /// A [`FaultListener`] for
    /// [`FaultyBackend::with_fault_listener`](lce_faults::FaultyBackend::with_fault_listener):
    /// every injected fault bumps `lce_faults_injected_total{kind=…}` in
    /// both the global and the account registry.
    pub fn fault_listener(self: &Arc<Self>, account: &str) -> FaultListener {
        let registry = self.account(account);
        let global = Arc::clone(&self.global);
        Arc::new(move |fault: &BackendFault| {
            let kind = fault.kind();
            for r in [&global, &registry] {
                r.counter(
                    FAULTS_INJECTED,
                    FAULTS_INJECTED_HELP,
                    Class::Schedule,
                    &[("kind", kind)],
                )
                .inc();
            }
        })
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("accounts", &self.accounts.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_emulator::{ApiCall, ApiResponse};
    use lce_faults::{FaultPlan, FaultyBackend};

    struct Nop;
    impl Backend for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn invoke(&mut self, _call: &ApiCall) -> ApiResponse {
            ApiResponse::ok(Default::default())
        }
        fn reset(&mut self) {}
        fn api_names(&self) -> Vec<String> {
            vec!["Ping".into()]
        }
    }

    #[test]
    fn account_registries_are_isolated() {
        let hub = Arc::new(ObsHub::new());
        let mut a = hub.observe_backend(Nop, "a");
        let mut b = hub.observe_backend(Nop, "b");
        a.invoke(&ApiCall::new("Ping"));
        a.invoke(&ApiCall::new("Ping"));
        b.invoke(&ApiCall::new("Ping"));
        let calls = |acct: &str| {
            hub.account(acct)
                .counter_value(crate::backend::API_CALLS, &[("api", "Ping")])
        };
        assert_eq!(calls("a"), Some(2));
        assert_eq!(calls("b"), Some(1));
        assert_eq!(
            hub.global()
                .counter_value(crate::backend::API_CALLS, &[("api", "Ping")]),
            Some(3),
            "global aggregates every account"
        );
        assert_eq!(hub.account_ids(), vec!["a".to_string(), "b".to_string()]);
        assert!(hub.render_account("ghost", RenderMode::Full).is_none());
        assert!(!hub.has_account("ghost"));
    }

    #[test]
    fn fault_listener_counts_exactly_the_injected_schedule() {
        let hub = Arc::new(ObsHub::new());
        let mut plan = FaultPlan::none(11);
        plan.backend.error_per_mille = 300;
        plan.backend.throttle_per_mille = 200;
        let plan = Arc::new(plan);
        let mut fb = FaultyBackend::new(Nop, Arc::clone(&plan), "acct")
            .with_fault_listener(hub.fault_listener("acct"));
        // Replay the schedule independently to get the oracle counts.
        let mut expected: BTreeMap<&str, u64> = BTreeMap::new();
        for seq in 0..400u64 {
            fb.invoke(&ApiCall::new("Ping"));
            if let Some(fault) = plan.decide_invoke("acct", "Ping", seq) {
                *expected.entry(fault.kind()).or_insert(0) += 1;
            }
        }
        assert!(expected.values().sum::<u64>() > 0, "plan must fire");
        for (kind, n) in expected {
            assert_eq!(
                hub.global()
                    .counter_value(FAULTS_INJECTED, &[("kind", kind)]),
                Some(n),
                "kind {}",
                kind
            );
            assert_eq!(
                hub.account("acct")
                    .counter_value(FAULTS_INJECTED, &[("kind", kind)]),
                Some(n)
            );
        }
    }
}
