//! Named metric families with labels, a determinism taxonomy, and
//! deterministic Prometheus-text rendering.
//!
//! Registration (get-or-create of a family or a labeled series) takes a
//! short mutex — it happens once per distinct series. Increments go
//! through the returned [`Counter`]/[`Histogram`] handles and are
//! lock-free.
//!
//! Every family declares a [`Class`]:
//!
//! * [`Class::Schedule`] — the value is a pure function of the fault
//!   plan and each account's invocation sequence. Under a backend-only
//!   plan with one client per account these are byte-identical across
//!   runs and thread counts.
//! * [`Class::BestEffort`] — keyed on racy identities (e.g. wire fault
//!   points keyed by accept-order connection ids), so totals vary across
//!   interleavings.
//! * [`Class::Timing`] — wall-clock measurements; never deterministic.
//!
//! [`RenderMode::Deterministic`] renders only `Schedule` families, which
//! is what the `/_metrics/deterministic` endpoint and the chaos
//! determinism tests scrape.

use crate::counter::Counter;
use crate::hist::Histogram;
use crate::prom;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Determinism class of a metric family (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Schedule-determined: byte-identical across runs under the
    /// documented conditions.
    Schedule,
    /// Keyed on racy identities; totals vary across interleavings.
    BestEffort,
    /// Wall-clock timing data.
    Timing,
}

/// Which families a render includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderMode {
    /// Every family.
    Full,
    /// Only [`Class::Schedule`] families.
    Deterministic,
}

enum Series {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: &'static str,
    class: Class,
    /// Canonical rendered label string → series.
    series: BTreeMap<String, Series>,
}

/// A set of metric families, rendered as sorted Prometheus text.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`. `help` and `class` are
    /// fixed by the first registration of the family.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        class: Class,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let key = prom::label_string(labels);
        let mut families = self.families.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            class,
            series: BTreeMap::new(),
        });
        match family
            .series
            .entry(key)
            .or_insert_with(|| Series::Counter(Arc::new(Counter::new())))
        {
            Series::Counter(c) => Arc::clone(c),
            Series::Histogram(_) => unreachable!("family `{}` registered as histogram", name),
        }
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        class: Class,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let key = prom::label_string(labels);
        let mut families = self.families.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            class,
            series: BTreeMap::new(),
        });
        match family
            .series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new())))
        {
            Series::Histogram(h) => Arc::clone(h),
            Series::Counter(_) => unreachable!("family `{}` registered as counter", name),
        }
    }

    /// Read one counter series, if it exists (no creation).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = prom::label_string(labels);
        let families = self.families.lock();
        match families.get(name)?.series.get(&key)? {
            Series::Counter(c) => Some(c.get()),
            Series::Histogram(_) => None,
        }
    }

    /// Render as Prometheus text: families sorted by name, series sorted
    /// by label string — byte-deterministic for identical counter states.
    pub fn render(&self, mode: RenderMode) -> String {
        let families = self.families.lock();
        let mut out = String::new();
        for (name, family) in families.iter() {
            if mode == RenderMode::Deterministic && family.class != Class::Schedule {
                continue;
            }
            let kind = match family.series.values().next() {
                Some(Series::Histogram(_)) => "histogram",
                _ => "counter",
            };
            out.push_str(&format!("# HELP {} {}\n", name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", name, kind));
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        prom::render_counter(&mut out, name, labels, c.get());
                    }
                    Series::Histogram(h) => {
                        prom::render_histogram(&mut out, name, labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("families", &self.families.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", Class::Schedule, &[("k", "v")]);
        let b = r.counter("x_total", "help", Class::Schedule, &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("x_total", &[("k", "v")]), Some(3));
        assert_eq!(r.counter_value("x_total", &[("k", "w")]), None);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let r = Registry::new();
        let a = r.counter("y_total", "h", Class::Schedule, &[("b", "2"), ("a", "1")]);
        let b = r.counter("y_total", "h", Class::Schedule, &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series regardless of label order");
    }

    #[test]
    fn deterministic_render_drops_non_schedule_families() {
        let r = Registry::new();
        r.counter("sched_total", "h", Class::Schedule, &[]).inc();
        r.counter("racy_total", "h", Class::BestEffort, &[]).inc();
        r.histogram("lat_us", "h", Class::Timing, &[]).observe(5);
        let full = r.render(RenderMode::Full);
        assert!(full.contains("sched_total 1"), "{}", full);
        assert!(full.contains("racy_total 1"), "{}", full);
        assert!(full.contains("lat_us_bucket"), "{}", full);
        let det = r.render(RenderMode::Deterministic);
        assert!(det.contains("sched_total 1"), "{}", det);
        assert!(!det.contains("racy_total"), "{}", det);
        assert!(!det.contains("lat_us"), "{}", det);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("b_total", "h", Class::Schedule, &[("z", "1")])
            .inc();
        r.counter("b_total", "h", Class::Schedule, &[("a", "1")])
            .inc();
        r.counter("a_total", "h", Class::Schedule, &[]).inc();
        let once = r.render(RenderMode::Full);
        assert_eq!(once, r.render(RenderMode::Full));
        let a = once.find("a_total").unwrap();
        let b = once.find("b_total").unwrap();
        assert!(a < b, "families sorted by name:\n{}", once);
        assert!(
            once.find("{a=\"1\"}").unwrap() < once.find("{z=\"1\"}").unwrap(),
            "series sorted by labels:\n{}",
            once
        );
    }
}
