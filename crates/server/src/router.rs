//! Multi-account routing: one independent [`Backend`] instance per account
//! id, created on demand from a backend factory.
//!
//! Each account's backend sits behind its own `parking_lot::RwLock`, so
//! calls from different accounts execute concurrently and never contend on
//! a shared lock — only calls *within* one account serialize, which is
//! exactly the consistency a single cloud account provides. Within an
//! account, calls the backend can *prove* read-only
//! ([`Backend::invoke_read`], stamped by the `lce-effects` analysis) share
//! the lock in read mode and run concurrently; everything else takes the
//! write lock. The account map itself is behind an `RwLock` that is only
//! write-locked on first sight of a new account id.

use lce_emulator::{ApiCall, ApiResponse, Backend, ResourceStore};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe backend constructor: called once per account id, which is
/// passed in so wrappers (e.g. fault injection) can scope behaviour per
/// account. The router's one up-front capability probe passes
/// [`PROBE_ACCOUNT`].
pub type BackendFactory = Box<dyn Fn(&str) -> Box<dyn Backend + Send + Sync> + Send + Sync>;

/// The reserved account id the router passes when probing the factory for
/// the API list and backend name. Underscore-prefixed, so it can never
/// collide with a real account ([`Router::valid_account_id`] rejects
/// leading underscores).
pub const PROBE_ACCOUNT: &str = "_probe";

/// A shareable handle to one account's backend. Proof-gated reads take the
/// lock in shared mode; mutating calls take it exclusively.
pub type AccountHandle = Arc<RwLock<Box<dyn Backend + Send + Sync>>>;

/// A wire-level capture hook: observes `(account, call, response)` for every
/// dispatched invocation, after it completes. Resets are reported as the
/// pseudo-call `_reset`. Fired while the account's lock is held, so the
/// observation order for one account is its true serialization order.
pub type InvokeListener = Arc<dyn Fn(&str, &ApiCall, &ApiResponse) + Send + Sync>;

/// Routes calls to per-account backend shards.
pub struct Router {
    factory: BackendFactory,
    apis: Vec<String>,
    backend_name: String,
    accounts: RwLock<BTreeMap<String, AccountHandle>>,
    listener: Option<InvokeListener>,
}

impl Router {
    /// Build a router. The factory is probed once, up front, to cache the
    /// supported API list (every account shares one catalog by
    /// construction).
    pub fn new(factory: BackendFactory) -> Self {
        let probe = factory(PROBE_ACCOUNT);
        let mut apis = probe.api_names();
        apis.sort();
        apis.dedup();
        let backend_name = probe.name().to_string();
        Router {
            factory,
            apis,
            backend_name,
            accounts: RwLock::new(BTreeMap::new()),
            listener: None,
        }
    }

    /// Attach a wire-level capture hook (see [`InvokeListener`]).
    pub fn with_invoke_listener(mut self, listener: InvokeListener) -> Self {
        self.listener = Some(listener);
        self
    }

    /// `true` if the account id is well-formed: nonempty ASCII
    /// alphanumerics, `-`, `_` or `.`, not starting with `_` (reserved for
    /// control endpoints).
    pub fn valid_account_id(id: &str) -> bool {
        !id.is_empty()
            && !id.starts_with('_')
            && id
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    }

    /// The account's backend, created on first use.
    pub fn account(&self, id: &str) -> AccountHandle {
        if let Some(h) = self.accounts.read().get(id) {
            return Arc::clone(h);
        }
        let mut map = self.accounts.write();
        Arc::clone(
            map.entry(id.to_string())
                .or_insert_with(|| Arc::new(RwLock::new((self.factory)(id)))),
        )
    }

    /// A copy of the account's resource store, if the account exists and
    /// its backend exposes one ([`Backend::snapshot`]). A never-seen
    /// account returns `None` rather than being materialized.
    pub fn snapshot(&self, id: &str) -> Option<ResourceStore> {
        let handle = {
            let map = self.accounts.read();
            Arc::clone(map.get(id)?)
        };
        let backend = handle.read();
        backend.snapshot()
    }

    /// Invoke one call on the account's backend. Holds only that account's
    /// lock for the duration of the call — in *shared* mode when the
    /// backend proves the call read-only, exclusively otherwise.
    pub fn invoke(&self, account: &str, call: &ApiCall) -> ApiResponse {
        let handle = self.account(account);
        {
            let backend = handle.read();
            if let Some(resp) = backend.invoke_read(call) {
                if let Some(listener) = &self.listener {
                    listener(account, call, &resp);
                }
                return resp;
            }
        }
        let mut backend = handle.write();
        let resp = backend.invoke(call);
        if let Some(listener) = &self.listener {
            listener(account, call, &resp);
        }
        resp
    }

    /// Reset the account to a fresh state. Returns `true` if the account
    /// had existing state (an unknown account is already fresh — it is
    /// created so subsequent calls observe an explicit reset point).
    pub fn reset(&self, account: &str) -> bool {
        let existed = self.accounts.read().contains_key(account);
        let handle = self.account(account);
        let mut backend = handle.write();
        backend.reset();
        if let Some(listener) = &self.listener {
            listener(
                account,
                &ApiCall::new("_reset"),
                &ApiResponse::ok(BTreeMap::new()),
            );
        }
        existed
    }

    /// The sorted API list every account supports (coverage accounting).
    pub fn api_names(&self) -> &[String] {
        &self.apis
    }

    /// Display name of the served backend (from the factory's probe).
    pub fn backend_name(&self) -> &str {
        &self.backend_name
    }

    /// Currently materialized account ids, sorted.
    pub fn accounts(&self) -> Vec<String> {
        self.accounts.read().keys().cloned().collect()
    }

    /// Number of materialized accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.read().len()
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("backend", &self.backend_name)
            .field("apis", &self.apis.len())
            .field("accounts", &self.account_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_emulator::Value;
    use std::collections::BTreeMap as Map;

    /// A counter backend: `Bump` increments, `Get` reads.
    struct Counter {
        n: i64,
    }

    impl Backend for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
            if call.api == "Bump" {
                self.n += 1;
            }
            let mut fields = Map::new();
            fields.insert("N".to_string(), Value::Int(self.n));
            ApiResponse::ok(fields)
        }
        fn reset(&mut self) {
            self.n = 0;
        }
        fn api_names(&self) -> Vec<String> {
            vec!["Get".into(), "Bump".into()]
        }
    }

    fn router() -> Router {
        Router::new(Box::new(|_account| Box::new(Counter { n: 0 })))
    }

    #[test]
    fn accounts_are_independent() {
        let r = router();
        r.invoke("alice", &ApiCall::new("Bump"));
        r.invoke("alice", &ApiCall::new("Bump"));
        r.invoke("bob", &ApiCall::new("Bump"));
        let a = r.invoke("alice", &ApiCall::new("Get"));
        let b = r.invoke("bob", &ApiCall::new("Get"));
        assert_eq!(a.field("N"), Some(&Value::Int(2)));
        assert_eq!(b.field("N"), Some(&Value::Int(1)));
        assert_eq!(r.accounts(), vec!["alice".to_string(), "bob".to_string()]);
    }

    #[test]
    fn reset_clears_one_account_only() {
        let r = router();
        r.invoke("a", &ApiCall::new("Bump"));
        r.invoke("b", &ApiCall::new("Bump"));
        assert!(r.reset("a"));
        assert!(!r.reset("fresh"), "unknown account was already fresh");
        assert_eq!(
            r.invoke("a", &ApiCall::new("Get")).field("N"),
            Some(&Value::Int(0))
        );
        assert_eq!(
            r.invoke("b", &ApiCall::new("Get")).field("N"),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn api_names_probed_once_and_sorted() {
        let r = router();
        assert_eq!(r.api_names(), &["Bump".to_string(), "Get".to_string()]);
        assert_eq!(r.backend_name(), "counter");
        assert_eq!(r.account_count(), 0, "the probe is not an account");
    }

    #[test]
    fn account_id_validation() {
        for ok in ["default", "alice-1", "a.b_c", "0"] {
            assert!(Router::valid_account_id(ok), "{}", ok);
        }
        for bad in ["", "_reset", "a/b", "a b", "é"] {
            assert!(!Router::valid_account_id(bad), "{:?}", bad);
        }
    }

    #[test]
    fn factory_sees_account_ids_and_probe() {
        use parking_lot::Mutex as PMutex;
        let seen: Arc<PMutex<Vec<String>>> = Arc::new(PMutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let r = Router::new(Box::new(move |account| {
            seen2.lock().push(account.to_string());
            Box::new(Counter { n: 0 })
        }));
        r.invoke("alice", &ApiCall::new("Bump"));
        r.invoke("bob", &ApiCall::new("Bump"));
        r.invoke("alice", &ApiCall::new("Get"));
        assert_eq!(
            *seen.lock(),
            vec![
                PROBE_ACCOUNT.to_string(),
                "alice".to_string(),
                "bob".to_string()
            ],
            "probe first, then one construction per account"
        );
        assert!(
            !Router::valid_account_id(PROBE_ACCOUNT),
            "the probe id must never be reachable from the wire"
        );
    }

    #[test]
    fn snapshot_of_unknown_account_is_none() {
        let r = router();
        assert!(r.snapshot("ghost").is_none());
        assert_eq!(r.account_count(), 0, "snapshot must not materialize");
        r.invoke("a", &ApiCall::new("Bump"));
        // Counter has no store, so even an existing account returns None.
        assert!(r.snapshot("a").is_none());
    }

    /// A backend that proves `Get` read-only; responses say which path
    /// served them so the test can observe the router's routing decision.
    struct ReadAware {
        n: i64,
    }

    impl ReadAware {
        fn reply(&self, via: &str) -> ApiResponse {
            let mut fields = Map::new();
            fields.insert("N".to_string(), Value::Int(self.n));
            fields.insert("Via".to_string(), Value::str(via));
            ApiResponse::ok(fields)
        }
    }

    impl Backend for ReadAware {
        fn name(&self) -> &str {
            "read-aware"
        }
        fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
            if call.api == "Bump" {
                self.n += 1;
            }
            self.reply("write")
        }
        fn invoke_read(&self, call: &ApiCall) -> Option<ApiResponse> {
            (call.api == "Get").then(|| self.reply("read"))
        }
        fn reset(&mut self) {
            self.n = 0;
        }
        fn api_names(&self) -> Vec<String> {
            vec!["Get".into(), "Bump".into()]
        }
    }

    #[test]
    fn proven_reads_dispatch_under_the_shared_lock() {
        let r = Router::new(Box::new(|_account| Box::new(ReadAware { n: 0 })));
        let bump = r.invoke("a", &ApiCall::new("Bump"));
        assert_eq!(bump.field("Via"), Some(&Value::str("write")));
        let get = r.invoke("a", &ApiCall::new("Get"));
        assert_eq!(get.field("Via"), Some(&Value::str("read")));
        assert_eq!(get.field("N"), Some(&Value::Int(1)));
        // Many concurrent proven reads share the account lock; none blocks.
        let r = Arc::new(r);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                r.invoke("a", &ApiCall::new("Get"))
            }));
        }
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.field("Via"), Some(&Value::str("read")));
            assert_eq!(resp.field("N"), Some(&Value::Int(1)));
        }
    }

    #[test]
    fn invoke_listener_observes_both_lock_paths_and_resets() {
        use parking_lot::Mutex as PMutex;
        type Seen = Vec<(String, String, Option<i64>)>;
        let seen: Arc<PMutex<Seen>> = Arc::new(PMutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let r = Router::new(Box::new(|_account| Box::new(ReadAware { n: 0 })))
            .with_invoke_listener(Arc::new(move |account, call, resp| {
                let n = resp.field("N").and_then(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                });
                seen2
                    .lock()
                    .push((account.to_string(), call.api.clone(), n));
            }));
        r.invoke("a", &ApiCall::new("Bump")); // write path
        r.invoke("a", &ApiCall::new("Get")); // proven-read path
        r.reset("a"); // pseudo-call
        r.invoke("b", &ApiCall::new("Get"));
        assert_eq!(
            *seen.lock(),
            vec![
                ("a".to_string(), "Bump".to_string(), Some(1)),
                ("a".to_string(), "Get".to_string(), Some(1)),
                ("a".to_string(), "_reset".to_string(), None),
                ("b".to_string(), "Get".to_string(), Some(0)),
            ]
        );
    }

    #[test]
    fn concurrent_accounts_do_not_interfere() {
        let r = Arc::new(router());
        let mut handles = Vec::new();
        for t in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let account = format!("acct-{}", t);
                for _ in 0..100 {
                    r.invoke(&account, &ApiCall::new("Bump"));
                }
                r.invoke(&account, &ApiCall::new("Get"))
            }));
        }
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.field("N"), Some(&Value::Int(100)));
        }
    }
}
