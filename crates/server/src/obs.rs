//! Server-side observability: cached handles into an
//! [`ObsHub`]'s global registry for the metrics the serving loop emits on
//! hot paths — connection lifecycle events, injected wire faults and
//! request phase latency.
//!
//! Everything here is optional: the server only constructs a
//! [`ServeMetrics`] when [`ServerConfig::obs`](crate::ServerConfig::obs)
//! carries a hub, and with no hub every instrumentation site is skipped
//! entirely, keeping the uninstrumented byte-for-byte behaviour.

use lce_obs::hub::{CONNECTIONS_HELP, PHASE_LATENCY_HELP, WIRE_FAULTS_HELP};
use lce_obs::{Class, Counter, Histogram, ObsHub, CONNECTIONS, PHASE_LATENCY, WIRE_FAULTS};
use std::sync::Arc;

/// Request lifecycle phases timed by the connection loop.
pub const PHASES: &[&str] = &["parse", "dispatch", "write"];

/// Cached counter/histogram handles for the serving loop. Constructing one
/// registers every series up front, so scrapes show zeroed families even
/// before the first event, and hot-path increments never take the
/// registry's registration lock.
pub struct ServeMetrics {
    hub: Arc<ObsHub>,
    accepted: Arc<Counter>,
    reused: Arc<Counter>,
    drained: Arc<Counter>,
    accept_reset: Arc<Counter>,
    read_reset: Arc<Counter>,
    write_reset: Arc<Counter>,
    write_truncate: Arc<Counter>,
    parse_latency: Arc<Histogram>,
    dispatch_latency: Arc<Histogram>,
    write_latency: Arc<Histogram>,
}

impl ServeMetrics {
    /// Pre-register every serving-loop series in the hub's global registry.
    pub fn new(hub: Arc<ObsHub>) -> Self {
        let g = hub.global();
        // Connection ids are assigned in racy accept order, so everything
        // keyed off them is best-effort, not schedule-deterministic.
        let conn = |event| {
            g.counter(
                CONNECTIONS,
                CONNECTIONS_HELP,
                Class::BestEffort,
                &[("event", event)],
            )
        };
        let wire_fault = |point, kind| {
            g.counter(
                WIRE_FAULTS,
                WIRE_FAULTS_HELP,
                Class::BestEffort,
                &[("point", point), ("kind", kind)],
            )
        };
        let phase = |p| {
            g.histogram(
                PHASE_LATENCY,
                PHASE_LATENCY_HELP,
                Class::Timing,
                &[("phase", p)],
            )
        };
        ServeMetrics {
            accepted: conn("accepted"),
            reused: conn("reused"),
            drained: conn("drained"),
            accept_reset: wire_fault("accept", "reset"),
            read_reset: wire_fault("read", "reset"),
            write_reset: wire_fault("write", "reset"),
            write_truncate: wire_fault("write", "truncate"),
            parse_latency: phase(PHASES[0]),
            dispatch_latency: phase(PHASES[1]),
            write_latency: phase(PHASES[2]),
            hub,
        }
    }

    /// The hub these handles write into.
    pub fn hub(&self) -> &Arc<ObsHub> {
        &self.hub
    }

    /// A connection was accepted (before any fault decision).
    pub fn connection_accepted(&self) {
        self.accepted.inc();
    }

    /// A keep-alive connection served a request beyond its first.
    pub fn connection_reused(&self) {
        self.reused.inc();
    }

    /// A connection was closed by graceful shutdown drain.
    pub fn connection_drained(&self) {
        self.drained.inc();
    }

    /// An injected accept-point reset fired.
    pub fn accept_fault(&self) {
        self.accept_reset.inc();
    }

    /// An injected read-point reset fired.
    pub fn read_fault(&self) {
        self.read_reset.inc();
    }

    /// An injected write-point fault fired.
    pub fn write_fault(&self, fault: &lce_faults::WireFault) {
        match fault {
            lce_faults::WireFault::Reset => self.write_reset.inc(),
            lce_faults::WireFault::Truncate => self.write_truncate.inc(),
        }
    }

    /// Record one phase duration in microseconds.
    pub fn observe_phase(&self, phase: &str, micros: u64) {
        match phase {
            "parse" => self.parse_latency.observe(micros),
            "dispatch" => self.dispatch_latency.observe(micros),
            "write" => self.write_latency.observe(micros),
            _ => {}
        }
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_obs::RenderMode;

    #[test]
    fn events_land_in_the_expected_series() {
        let hub = Arc::new(ObsHub::new());
        let m = ServeMetrics::new(Arc::clone(&hub));
        m.connection_accepted();
        m.connection_accepted();
        m.connection_reused();
        m.accept_fault();
        m.write_fault(&lce_faults::WireFault::Truncate);
        m.observe_phase("parse", 12);
        let g = hub.global();
        assert_eq!(
            g.counter_value(CONNECTIONS, &[("event", "accepted")]),
            Some(2)
        );
        assert_eq!(
            g.counter_value(CONNECTIONS, &[("event", "reused")]),
            Some(1)
        );
        assert_eq!(
            g.counter_value(CONNECTIONS, &[("event", "drained")]),
            Some(0)
        );
        assert_eq!(
            g.counter_value(WIRE_FAULTS, &[("point", "accept"), ("kind", "reset")]),
            Some(1)
        );
        assert_eq!(
            g.counter_value(WIRE_FAULTS, &[("point", "write"), ("kind", "truncate")]),
            Some(1)
        );
        let text = hub.render_global(RenderMode::Full);
        assert!(text.contains("lce_request_phase_latency_us_count{phase=\"parse\"} 1"));
        // Best-effort and timing families stay out of the deterministic render.
        let det = hub.render_global(RenderMode::Deterministic);
        assert!(!det.contains(CONNECTIONS));
        assert!(!det.contains(PHASE_LATENCY));
    }
}
