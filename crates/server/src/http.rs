//! A minimal, robust HTTP/1.1 implementation: incremental request parsing
//! over [`BytesMut`], response encoding, and the response-side parser used
//! by the blocking client.
//!
//! Scope is deliberately narrow — exactly what a local cloud endpoint
//! needs: `Content-Length`-framed bodies, keep-alive and pipelining,
//! configurable header/body size limits, and 4xx/5xx on anything
//! malformed. Chunked transfer encoding is rejected with `501`. The parser
//! must never panic on arbitrary bytes (property-tested in
//! `tests/parser_never_panics.rs`).

use bytes::BytesMut;

/// Size limits applied while parsing a request.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum size of the request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`, in bytes.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (e.g. `GET`, `POST`), uppercased as received.
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header name/value pairs in arrival order (names as received).
    pub headers: Vec<(String, String)>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `true` if the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 requires an explicit `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// A protocol-level parse failure, carrying the status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to respond with (4xx/5xx).
    pub status: u16,
    /// Human-oriented description of what was malformed.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }

    /// Render this error as a JSON response that closes the connection.
    pub fn to_response(&self) -> Response {
        Response {
            status: self.status,
            body: format!(
                "{{\"error\":{}}}",
                serde_json::Value::String(self.message.clone())
            )
            .into_bytes(),
            content_type: "application/json",
            keep_alive: false,
        }
    }
}

/// Find the end of the head: the index of the first `\r\n\r\n`.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Incrementally parse one request from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, `Ok(Some(request))` after
/// consuming exactly one request (leaving any pipelined successor bytes in
/// `buf`), and `Err` on malformed input. The call is idempotent until it
/// returns `Some`: nothing is consumed on `None` or `Err`.
pub fn parse_request(
    buf: &mut BytesMut,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    let head_end = match find_head_end(&buf[..]) {
        Some(i) => i,
        None => {
            if buf.len() > limits.max_head_bytes {
                return Err(HttpError::new(431, "request head exceeds size limit"));
            }
            return Ok(None);
        }
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::new(431, "request head exceeds size limit"));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if parts.next().is_some() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, "malformed method"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            "request target must be an absolute path",
        ));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Err(HttpError::new(
                505,
                "only HTTP/1.0 and HTTP/1.1 are supported",
            ))
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, "malformed header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
    {
        return Err(HttpError::new(501, "transfer-encoding is not supported"));
    }

    let mut content_length = 0usize;
    let mut seen_length: Option<&str> = None;
    for (n, v) in &headers {
        if n.eq_ignore_ascii_case("content-length") {
            if seen_length.is_some_and(|prev| prev != v) {
                return Err(HttpError::new(400, "conflicting content-length headers"));
            }
            seen_length = Some(v);
            content_length = v
                .parse::<usize>()
                .map_err(|_| HttpError::new(400, "bad content-length"))?;
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::new(413, "request body exceeds size limit"));
    }

    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }

    let path = target.split('?').next().unwrap_or(target).to_string();
    let method = method.to_string();
    let _head = buf.split_to(head_end + 4);
    let body = buf.split_to(content_length).to_vec();
    Ok(Some(Request {
        method,
        path,
        http11,
        headers,
        body,
    }))
}

/// An HTTP response ready to encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Whether to advertise (and honour) keep-alive.
    pub keep_alive: bool,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "application/json",
            keep_alive: true,
        }
    }

    /// A `200 OK` Prometheus-text response (`GET /_metrics`).
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            keep_alive: true,
        }
    }

    /// A JSON error response (`{"error": message}`) with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            body: format!(
                "{{\"error\":{}}}",
                serde_json::Value::String(message.to_string())
            )
            .into_bytes(),
            content_type: "application/json",
            keep_alive: true,
        }
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Serialize a response to wire bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        reason_phrase(resp.status),
        resp.content_type,
        resp.body.len(),
        if resp.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// A parsed HTTP response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// `true` if the server advertised keep-alive.
    pub keep_alive: bool,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// Incrementally parse one response from the front of `buf` (client side).
/// Same contract as [`parse_request`].
pub fn parse_response(
    buf: &mut BytesMut,
    limits: &HttpLimits,
) -> Result<Option<ParsedResponse>, HttpError> {
    let head_end = match find_head_end(&buf[..]) {
        Some(i) => i,
        None => {
            if buf.len() > limits.max_head_bytes {
                return Err(HttpError::new(431, "response head exceeds size limit"));
            }
            return Ok(None);
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "response head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or("");
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::new(400, "malformed status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "malformed status line"));
    }
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::new(400, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::new(413, "response body exceeds size limit"));
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let _head = buf.split_to(head_end + 4);
    let body = buf.split_to(content_length).to_vec();
    Ok(Some(ParsedResponse {
        status,
        keep_alive,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(bytes: &[u8]) -> BytesMut {
        let mut b = BytesMut::new();
        b.extend_from_slice(bytes);
        b
    }

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    #[test]
    fn parses_simple_get() {
        let mut b = buf(b"GET /_health HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = parse_request(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/_health");
        assert!(req.http11);
        assert!(req.body.is_empty());
        assert!(req.wants_keep_alive());
        assert!(b.is_empty(), "request fully consumed");
    }

    #[test]
    fn split_reads_accumulate() {
        // Feed the request one byte at a time: the parser must return
        // `None` until the final byte, then produce the full request.
        let wire = b"POST /acct/CreateVpc HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut b = BytesMut::new();
        for (i, byte) in wire.iter().enumerate() {
            b.extend_from_slice(&[*byte]);
            let parsed = parse_request(&mut b, &limits()).unwrap();
            if i + 1 < wire.len() {
                assert!(parsed.is_none(), "complete at byte {}", i);
            } else {
                let req = parsed.unwrap();
                assert_eq!(req.body, b"{}");
            }
        }
    }

    #[test]
    fn partial_body_waits_for_content_length() {
        let mut b = buf(b"POST /a/B HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345");
        assert_eq!(parse_request(&mut b, &limits()).unwrap(), None);
        b.extend_from_slice(b"67890");
        let req = parse_request(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(req.body, b"1234567890");
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut b = buf(b"POST /a/X HTTP/1.1\r\nContent-Length: 1\r\n\r\n1\
              GET /_health HTTP/1.1\r\n\r\n");
        let first = parse_request(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(first.path, "/a/X");
        assert_eq!(first.body, b"1");
        let second = parse_request(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(second.path, "/_health");
        assert!(b.is_empty());
    }

    #[test]
    fn oversized_head_rejected() {
        let tight = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        };
        // No terminator and already over the limit.
        let mut b = buf(&[b'A'; 100]);
        assert_eq!(parse_request(&mut b, &tight).unwrap_err().status, 431);
        // Terminated but still over the limit.
        let mut long = Vec::from(&b"GET / HTTP/1.1\r\nX: "[..]);
        long.extend_from_slice(&[b'y'; 80]);
        long.extend_from_slice(b"\r\n\r\n");
        let mut b = buf(&long);
        assert_eq!(parse_request(&mut b, &tight).unwrap_err().status, 431);
    }

    #[test]
    fn oversized_body_rejected_from_declared_length() {
        let tight = HttpLimits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        };
        let mut b = buf(b"POST /a/B HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(parse_request(&mut b, &tight).unwrap_err().status, 413);
    }

    #[test]
    fn bad_content_length_rejected() {
        for bad in ["abc", "-1", "1e3", "18446744073709551616"] {
            let wire = format!("POST /a/B HTTP/1.1\r\nContent-Length: {}\r\n\r\n", bad);
            let mut b = buf(wire.as_bytes());
            assert_eq!(
                parse_request(&mut b, &limits()).unwrap_err().status,
                400,
                "content-length {:?}",
                bad
            );
        }
    }

    #[test]
    fn conflicting_content_lengths_rejected() {
        let mut b = buf(b"POST /a/B HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n");
        assert_eq!(parse_request(&mut b, &limits()).unwrap_err().status, 400);
    }

    #[test]
    fn duplicate_equal_content_lengths_tolerated() {
        let mut b = buf(b"POST /a/B HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx");
        let req = parse_request(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(req.body, b"x");
    }

    #[test]
    fn transfer_encoding_not_implemented() {
        let mut b = buf(b"POST /a/B HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(parse_request(&mut b, &limits()).unwrap_err().status, 501);
    }

    #[test]
    fn malformed_request_lines_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        ] {
            let mut b = buf(bad.as_bytes());
            assert!(
                parse_request(&mut b, &limits()).is_err(),
                "accepted {:?}",
                bad
            );
        }
    }

    #[test]
    fn non_utf8_head_rejected() {
        let mut b = buf(b"GET /\xff\xfe HTTP/1.1\r\n\r\n");
        assert_eq!(parse_request(&mut b, &limits()).unwrap_err().status, 400);
    }

    #[test]
    fn query_string_is_stripped() {
        let mut b = buf(b"GET /_apis?verbose=1 HTTP/1.1\r\n\r\n");
        let req = parse_request(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(req.path, "/_apis");
    }

    #[test]
    fn keep_alive_semantics() {
        let mut b = buf(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!parse_request(&mut b, &limits())
            .unwrap()
            .unwrap()
            .wants_keep_alive());
        let mut b = buf(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!parse_request(&mut b, &limits())
            .unwrap()
            .unwrap()
            .wants_keep_alive());
        let mut b = buf(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(parse_request(&mut b, &limits())
            .unwrap()
            .unwrap()
            .wants_keep_alive());
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(br#"{"ok":true}"#.to_vec());
        let mut b = buf(&encode_response(&resp));
        let parsed = parse_response(&mut b, &limits()).unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert!(parsed.keep_alive);
        assert_eq!(parsed.body, br#"{"ok":true}"#);
        assert!(b.is_empty());
    }

    #[test]
    fn error_response_closes_connection() {
        let e = HttpError::new(400, "nope");
        let resp = e.to_response();
        assert!(!resp.keep_alive);
        let wire = encode_response(&resp);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"error\":\"nope\"}"));
    }

    #[test]
    fn split_response_reads_accumulate() {
        let wire = encode_response(&Response::json(b"abc".to_vec()));
        let mut b = BytesMut::new();
        for (i, byte) in wire.iter().enumerate() {
            b.extend_from_slice(&[*byte]);
            let parsed = parse_response(&mut b, &limits()).unwrap();
            assert_eq!(parsed.is_some(), i + 1 == wire.len());
        }
    }
}
