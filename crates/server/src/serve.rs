//! The connection server: a `TcpListener` accept loop feeding the
//! event-driven shard core in [`crate::net`].
//!
//! * The accept loop runs nonblocking and polls a shutdown flag, so
//!   [`ServerHandle::shutdown`] takes effect within one poll interval.
//!   It assigns connection ids in accept order and routes each
//!   connection to shard `conn % threads`; the first parsed request may
//!   then migrate the connection to the shard that owns its account
//!   (see [`crate::net`] for the pinning story).
//! * Shards drain on shutdown: idle keep-alive connections close (and
//!   count as drained), complete buffered requests are still served with
//!   `Connection: close`, and queued response tails keep flushing until
//!   a drain deadline.
//! * Keep-alive connections observe the shutdown flag between requests;
//!   the last response before closing advertises `Connection: close`.
//!
//! When [`ServerConfig::faults`] carries a [`FaultPlan`], the server
//! injects wire-level faults at three points, all decided deterministically
//! from the plan and a per-connection id assigned in accept order:
//!
//! * **accept** — the connection is dropped before any byte is read;
//! * **read** — the connection is dropped after a successful read, always
//!   *before* the buffered request is dispatched (so nothing mutated);
//! * **write** — the response is truncated mid-write or dropped entirely,
//!   *after* dispatch — which is why the plan's `WriteFaultScope` gates
//!   these to idempotent requests by default.
//!
//! The decision sequence is identical to the original blocking core's:
//! read events and request sequence numbers count the same things at the
//! same points, so recorded chaos schedules stay valid.

use crate::http::HttpLimits;
use crate::net::{self, conn::ShardCtx, Incoming, ShardHandle};
use crate::obs::ServeMetrics;
use crate::router::{BackendFactory, InvokeListener, Router, PROBE_ACCOUNT};
use lce_emulator::Backend;
use lce_faults::FaultPlan;
use lce_obs::ObsHub;
use std::collections::{BTreeSet, HashMap};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7583` (`:0` for an ephemeral port).
    pub addr: String,
    /// Shard (event loop) thread count.
    pub threads: usize,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Idle read timeout: a connection with no complete request for this
    /// long is closed (with `408` if a partial request was buffered).
    pub read_timeout: Duration,
    /// Optional wire-level fault plan. `None` (the default) and an empty
    /// plan are both byte-for-byte identical to fault-free serving.
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional observability hub. `None` (the default) serves with zero
    /// instrumentation — no wrapper around backends, no metrics routes —
    /// and is byte-for-byte identical to a server built without
    /// observability at all.
    pub obs: Option<Arc<ObsHub>>,
    /// APIs proven retry-safe by the `lce-effects` static analysis. A
    /// request invoking one of these counts as idempotent for
    /// [`WriteFaultScope`](lce_faults::WriteFaultScope) purposes even when
    /// its name says otherwise: the proof guarantees a blind wire-level
    /// replay converges, so post-dispatch faults may hit it. `None` (the
    /// default) keeps the name-based [`wire::is_idempotent`](crate::wire::is_idempotent) gate alone.
    pub retry_safe: Option<Arc<BTreeSet<String>>>,
    /// Optional wire-level capture hook, fired by the router for every
    /// dispatched invocation (and every reset, as the `_reset`
    /// pseudo-call). `None` (the default) serves with no hook installed.
    pub listener: Option<InvokeListener>,
    /// Test hook: shrink each accepted socket's kernel send buffer to
    /// this many bytes, forcing the event core through its partial-write
    /// path. `None` (the default) leaves the kernel default alone.
    /// Ignored on targets without the raw-syscall backend.
    pub sock_send_buf: Option<usize>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: `InvokeListener` is an `Arc<dyn Fn>`, which has no
        // Debug; report its presence only.
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("threads", &self.threads)
            .field("limits", &self.limits)
            .field("read_timeout", &self.read_timeout)
            .field("faults", &self.faults)
            .field("obs", &self.obs.as_ref().map(|_| "ObsHub"))
            .field("retry_safe", &self.retry_safe)
            .field(
                "listener",
                &self.listener.as_ref().map(|_| "InvokeListener"),
            )
            .field("sock_send_buf", &self.sock_send_buf)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(30),
            faults: None,
            obs: None,
            retry_safe: None,
            listener: None,
            sock_send_buf: None,
        }
    }
}

impl ServerConfig {
    /// Attach a wire-level fault plan. An empty plan still exercises every
    /// fault hook — each decision just comes back `None` — which is what
    /// lets the passthrough test prove zero-fault means zero behaviour
    /// change.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach an observability hub: backends get wrapped in
    /// [`lce_obs::ObservedBackend`], the request lifecycle is timed, wire
    /// faults are tallied and the `/_metrics` routes come alive.
    pub fn with_observability(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }

    /// Load the set of APIs statically proven retry-safe, widening
    /// write-point fault eligibility beyond the name-based idempotence
    /// heuristic (proofs beat naming).
    pub fn with_retry_safe_apis(mut self, apis: Arc<BTreeSet<String>>) -> Self {
        self.retry_safe = Some(apis);
        self
    }

    /// Attach a wire-level capture hook (see
    /// [`InvokeListener`](crate::router::InvokeListener)): the router
    /// reports every dispatched `(account, call, response)` triple to it,
    /// including resets as the `_reset` pseudo-call, in each account's
    /// true serialization order.
    pub fn with_invoke_listener(mut self, listener: InvokeListener) -> Self {
        self.listener = Some(listener);
        self
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    shards: Vec<thread::JoinHandle<()>>,
    shard_handles: Vec<ShardHandle>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router, e.g. for in-process inspection in tests.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Signal shutdown and wait for the accept loop and all shards to
    /// drain their connections and exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the server stops (for a foreground `lce serve`). The
    /// accept loop only exits on shutdown, so this parks the caller
    /// indefinitely in normal operation.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shard_handles {
            shard.wake();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for shard in &self.shard_handles {
            shard.wake();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Start serving backends built by `factory` under `config`. The factory
/// receives the account id (or [`crate::router::PROBE_ACCOUNT`] for the
/// one capability probe), so wrappers can scope behaviour per account.
///
/// ```no_run
/// use lce_server::{serve, ServerConfig};
/// use lce_emulator::{Backend, Emulator};
/// use lce_spec::Catalog;
///
/// let catalog = Catalog::new();
/// let handle = serve(ServerConfig::default(), move |_account| {
///     Box::new(Emulator::new(catalog.clone())) as Box<dyn Backend + Send + Sync>
/// })
/// .unwrap();
/// println!("listening on {}", handle.addr());
/// handle.join();
/// ```
pub fn serve<F>(config: ServerConfig, factory: F) -> std::io::Result<ServerHandle>
where
    F: Fn(&str) -> Box<dyn Backend + Send + Sync> + Send + Sync + 'static,
{
    serve_boxed(config, Box::new(factory))
}

fn serve_boxed(config: ServerConfig, factory: BackendFactory) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // With a hub, every real account's backend is built wrapped in an
    // ObservedBackend; the router's capability probe stays unwrapped so
    // it never shows up in the metrics.
    let factory: BackendFactory = match &config.obs {
        None => factory,
        Some(hub) => {
            let hub = Arc::clone(hub);
            Box::new(move |account| {
                if account == PROBE_ACCOUNT {
                    factory(account)
                } else {
                    Box::new(hub.observe_backend(factory(account), account))
                }
            })
        }
    };
    let metrics = config
        .obs
        .as_ref()
        .map(|hub| Arc::new(ServeMetrics::new(Arc::clone(hub))));

    let mut router = Router::new(factory);
    if let Some(listener) = config.listener.clone() {
        router = router.with_invoke_listener(listener);
    }
    let router = Arc::new(router);
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_done = Arc::new(AtomicBool::new(false));
    let pins = Arc::new(Mutex::new(HashMap::new()));
    let threads = config.threads.max(1);

    let (shard_handles, shard_threads) = net::spawn_shards(threads, |shard| ShardCtx {
        shard,
        router: Arc::clone(&router),
        limits: config.limits.clone(),
        read_timeout: config.read_timeout,
        shutdown: Arc::clone(&shutdown),
        accept_done: Arc::clone(&accept_done),
        faults: config.faults.clone(),
        metrics: metrics.clone(),
        retry_safe: config.retry_safe.clone(),
        pins: Arc::clone(&pins),
    })?;

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_finished = Arc::clone(&accept_done);
    let accept_faults = config.faults.clone();
    let accept_metrics = metrics.clone();
    let accept_shards = shard_handles.clone();
    let sock_send_buf = config.sock_send_buf;
    let accept = thread::Builder::new()
        .name("lce-server-accept".to_string())
        .spawn(move || {
            let mut next_conn: u64 = 0;
            loop {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Connections travel with their accept-order id so
                        // fault decisions are tied to a stable,
                        // schedule-independent key.
                        let conn = next_conn;
                        next_conn += 1;
                        if let Some(m) = &accept_metrics {
                            m.connection_accepted();
                        }
                        if let Some(plan) = &accept_faults {
                            if plan.decide_accept(conn).is_some() {
                                // Accept-point reset: drop before reading a
                                // byte. The client sees a closed connection
                                // and nothing was dispatched.
                                if let Some(m) = &accept_metrics {
                                    m.accept_fault();
                                }
                                drop(stream);
                                continue;
                            }
                        }
                        let _ = stream.set_nonblocking(true);
                        if let Some(bytes) = sock_send_buf {
                            let _ = crate::net::sys::set_send_buffer(stream.as_raw_fd(), bytes);
                        }
                        let shard = (conn % accept_shards.len() as u64) as usize;
                        if accept_shards[shard]
                            .send(Incoming::Fresh(stream, conn))
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            // No more hand-offs can happen; shards may exit once their
            // inboxes drain.
            accept_finished.store(true, Ordering::SeqCst);
            for shard in &accept_shards {
                shard.wake();
            }
        })?;

    Ok(ServerHandle {
        addr,
        router,
        shutdown,
        accept: Some(accept),
        shards: shard_threads,
        shard_handles,
    })
}
