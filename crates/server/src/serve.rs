//! The connection server: a `TcpListener` accept loop feeding a bounded
//! crossbeam channel drained by a fixed pool of worker threads.
//!
//! * The accept loop runs nonblocking and polls a shutdown flag, so
//!   [`ServerHandle::shutdown`] takes effect within one poll interval.
//! * Workers drain already-accepted connections before exiting (graceful
//!   drain): dropping the channel sender after the accept loop stops turns
//!   the workers' `recv()` into a clean termination signal.
//! * Keep-alive connections poll the shutdown flag between requests; the
//!   last response before closing advertises `Connection: close`.

use crate::http::{self, HttpLimits, Response};
use crate::router::{BackendFactory, Router};
use crate::wire;
use crossbeam::channel;
use lce_emulator::Backend;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7583` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker thread count (concurrent connection limit).
    pub threads: usize,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Idle read timeout: a connection with no complete request for this
    /// long is closed (with `408` if a partial request was buffered).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router, e.g. for in-process inspection in tests.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Signal shutdown and wait for the accept loop and all workers to
    /// drain their connections and exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the server stops (for a foreground `lce serve`). The
    /// accept loop only exits on shutdown, so this parks the caller
    /// indefinitely in normal operation.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Start serving backends built by `factory` under `config`.
///
/// ```no_run
/// use lce_server::{serve, ServerConfig};
/// use lce_emulator::{Backend, Emulator};
/// use lce_spec::Catalog;
///
/// let catalog = Catalog::new();
/// let handle = serve(ServerConfig::default(), move || {
///     Box::new(Emulator::new(catalog.clone())) as Box<dyn Backend + Send>
/// })
/// .unwrap();
/// println!("listening on {}", handle.addr());
/// handle.join();
/// ```
pub fn serve<F>(config: ServerConfig, factory: F) -> std::io::Result<ServerHandle>
where
    F: Fn() -> Box<dyn Backend + Send> + Send + Sync + 'static,
{
    serve_boxed(config, Box::new(factory))
}

fn serve_boxed(config: ServerConfig, factory: BackendFactory) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let router = Arc::new(Router::new(factory));
    let shutdown = Arc::new(AtomicBool::new(false));
    let threads = config.threads.max(1);
    let (tx, rx) = channel::bounded::<TcpStream>(threads * 2);

    let mut workers = Vec::with_capacity(threads);
    for i in 0..threads {
        let rx = rx.clone();
        let router = Arc::clone(&router);
        let shutdown = Arc::clone(&shutdown);
        let limits = config.limits.clone();
        let read_timeout = config.read_timeout;
        workers.push(
            thread::Builder::new()
                .name(format!("lce-server-worker-{}", i))
                .spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        handle_connection(stream, &router, &limits, read_timeout, &shutdown);
                    }
                })?,
        );
    }
    drop(rx);

    let accept_shutdown = Arc::clone(&shutdown);
    let accept = thread::Builder::new()
        .name("lce-server-accept".to_string())
        .spawn(move || {
            loop {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Hand the worker a blocking socket regardless of
                        // what it inherited from the listener.
                        let _ = stream.set_nonblocking(false);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            // Dropping the sender lets idle workers exit their recv loop.
            drop(tx);
        })?;

    Ok(ServerHandle {
        addr,
        router,
        shutdown,
        accept: Some(accept),
        workers,
    })
}

/// Serve one connection: parse → dispatch → respond, honouring keep-alive
/// and pipelining, until EOF, error, timeout or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    limits: &HttpLimits,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut buf = bytes::BytesMut::with_capacity(8 * 1024);
    let mut last_activity = Instant::now();
    loop {
        // Drain complete buffered requests first (pipelining).
        match http::parse_request(&mut buf, limits) {
            Err(e) => {
                let _ = stream.write_all(&http::encode_response(&e.to_response()));
                return;
            }
            Ok(Some(req)) => {
                last_activity = Instant::now();
                let keep_alive = req.wants_keep_alive() && !shutdown.load(Ordering::SeqCst);
                let mut resp = wire::handle(&req, router);
                resp.keep_alive = keep_alive;
                if stream.write_all(&http::encode_response(&resp)).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
                continue;
            }
            Ok(None) => {}
        }
        if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return;
        }
        let mut chunk = [0u8; 8 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if last_activity.elapsed() >= read_timeout {
                    if !buf.is_empty() {
                        let timeout = Response {
                            status: 408,
                            body: b"{\"error\":\"request timed out\"}".to_vec(),
                            content_type: "application/json",
                            keep_alive: false,
                        };
                        let _ = stream.write_all(&http::encode_response(&timeout));
                    }
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
