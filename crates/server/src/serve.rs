//! The connection server: a `TcpListener` accept loop feeding a bounded
//! crossbeam channel drained by a fixed pool of worker threads.
//!
//! * The accept loop runs nonblocking and polls a shutdown flag, so
//!   [`ServerHandle::shutdown`] takes effect within one poll interval.
//! * Workers drain already-accepted connections before exiting (graceful
//!   drain): dropping the channel sender after the accept loop stops turns
//!   the workers' `recv()` into a clean termination signal.
//! * Keep-alive connections poll the shutdown flag between requests; the
//!   last response before closing advertises `Connection: close`.
//!
//! When [`ServerConfig::faults`] carries a [`FaultPlan`], the server
//! injects wire-level faults at three points, all decided deterministically
//! from the plan and a per-connection id assigned in accept order:
//!
//! * **accept** — the connection is dropped before any byte is read;
//! * **read** — the connection is dropped after a successful read, always
//!   *before* the buffered request is dispatched (so nothing mutated);
//! * **write** — the response is truncated mid-write or dropped entirely,
//!   *after* dispatch — which is why the plan's `WriteFaultScope` gates
//!   these to idempotent requests by default.

use crate::http::{self, HttpLimits, Response};
use crate::obs::ServeMetrics;
use crate::router::{BackendFactory, InvokeListener, Router, PROBE_ACCOUNT};
use crate::wire;
use crossbeam::channel;
use lce_emulator::Backend;
use lce_faults::{FaultPlan, WireFault};
use lce_obs::ObsHub;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7583` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker thread count (concurrent connection limit).
    pub threads: usize,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Idle read timeout: a connection with no complete request for this
    /// long is closed (with `408` if a partial request was buffered).
    pub read_timeout: Duration,
    /// Optional wire-level fault plan. `None` (the default) and an empty
    /// plan are both byte-for-byte identical to fault-free serving.
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional observability hub. `None` (the default) serves with zero
    /// instrumentation — no wrapper around backends, no metrics routes —
    /// and is byte-for-byte identical to a server built without
    /// observability at all.
    pub obs: Option<Arc<ObsHub>>,
    /// APIs proven retry-safe by the `lce-effects` static analysis. A
    /// request invoking one of these counts as idempotent for
    /// [`WriteFaultScope`](lce_faults::WriteFaultScope) purposes even when
    /// its name says otherwise: the proof guarantees a blind wire-level
    /// replay converges, so post-dispatch faults may hit it. `None` (the
    /// default) keeps the name-based [`wire::is_idempotent`] gate alone.
    pub retry_safe: Option<Arc<BTreeSet<String>>>,
    /// Optional wire-level capture hook, fired by the router for every
    /// dispatched invocation (and every reset, as the `_reset`
    /// pseudo-call). `None` (the default) serves with no hook installed.
    pub listener: Option<InvokeListener>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: `InvokeListener` is an `Arc<dyn Fn>`, which has no
        // Debug; report its presence only.
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("threads", &self.threads)
            .field("limits", &self.limits)
            .field("read_timeout", &self.read_timeout)
            .field("faults", &self.faults)
            .field("obs", &self.obs.as_ref().map(|_| "ObsHub"))
            .field("retry_safe", &self.retry_safe)
            .field(
                "listener",
                &self.listener.as_ref().map(|_| "InvokeListener"),
            )
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(30),
            faults: None,
            obs: None,
            retry_safe: None,
            listener: None,
        }
    }
}

impl ServerConfig {
    /// Attach a wire-level fault plan. An empty plan still exercises every
    /// fault hook — each decision just comes back `None` — which is what
    /// lets the passthrough test prove zero-fault means zero behaviour
    /// change.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach an observability hub: backends get wrapped in
    /// [`lce_obs::ObservedBackend`], the request lifecycle is timed, wire
    /// faults are tallied and the `/_metrics` routes come alive.
    pub fn with_observability(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }

    /// Load the set of APIs statically proven retry-safe, widening
    /// write-point fault eligibility beyond the name-based idempotence
    /// heuristic (proofs beat naming).
    pub fn with_retry_safe_apis(mut self, apis: Arc<BTreeSet<String>>) -> Self {
        self.retry_safe = Some(apis);
        self
    }

    /// Attach a wire-level capture hook (see
    /// [`InvokeListener`](crate::router::InvokeListener)): the router
    /// reports every dispatched `(account, call, response)` triple to it,
    /// including resets as the `_reset` pseudo-call, in each account's
    /// true serialization order.
    pub fn with_invoke_listener(mut self, listener: InvokeListener) -> Self {
        self.listener = Some(listener);
        self
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router, e.g. for in-process inspection in tests.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Signal shutdown and wait for the accept loop and all workers to
    /// drain their connections and exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the server stops (for a foreground `lce serve`). The
    /// accept loop only exits on shutdown, so this parks the caller
    /// indefinitely in normal operation.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Start serving backends built by `factory` under `config`. The factory
/// receives the account id (or [`crate::router::PROBE_ACCOUNT`] for the
/// one capability probe), so wrappers can scope behaviour per account.
///
/// ```no_run
/// use lce_server::{serve, ServerConfig};
/// use lce_emulator::{Backend, Emulator};
/// use lce_spec::Catalog;
///
/// let catalog = Catalog::new();
/// let handle = serve(ServerConfig::default(), move |_account| {
///     Box::new(Emulator::new(catalog.clone())) as Box<dyn Backend + Send + Sync>
/// })
/// .unwrap();
/// println!("listening on {}", handle.addr());
/// handle.join();
/// ```
pub fn serve<F>(config: ServerConfig, factory: F) -> std::io::Result<ServerHandle>
where
    F: Fn(&str) -> Box<dyn Backend + Send + Sync> + Send + Sync + 'static,
{
    serve_boxed(config, Box::new(factory))
}

fn serve_boxed(config: ServerConfig, factory: BackendFactory) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // With a hub, every real account's backend is built wrapped in an
    // ObservedBackend; the router's capability probe stays unwrapped so
    // it never shows up in the metrics.
    let factory: BackendFactory = match &config.obs {
        None => factory,
        Some(hub) => {
            let hub = Arc::clone(hub);
            Box::new(move |account| {
                if account == PROBE_ACCOUNT {
                    factory(account)
                } else {
                    Box::new(hub.observe_backend(factory(account), account))
                }
            })
        }
    };
    let metrics = config
        .obs
        .as_ref()
        .map(|hub| Arc::new(ServeMetrics::new(Arc::clone(hub))));

    let mut router = Router::new(factory);
    if let Some(listener) = config.listener.clone() {
        router = router.with_invoke_listener(listener);
    }
    let router = Arc::new(router);
    let shutdown = Arc::new(AtomicBool::new(false));
    let threads = config.threads.max(1);
    // Connections travel with their accept-order id so fault decisions
    // are tied to a stable, schedule-independent key.
    let (tx, rx) = channel::bounded::<(TcpStream, u64)>(threads * 2);

    let mut workers = Vec::with_capacity(threads);
    for i in 0..threads {
        let rx = rx.clone();
        let router = Arc::clone(&router);
        let shutdown = Arc::clone(&shutdown);
        let limits = config.limits.clone();
        let read_timeout = config.read_timeout;
        let faults = config.faults.clone();
        let metrics = metrics.clone();
        let retry_safe = config.retry_safe.clone();
        workers.push(
            thread::Builder::new()
                .name(format!("lce-server-worker-{}", i))
                .spawn(move || {
                    while let Ok((stream, conn)) = rx.recv() {
                        handle_connection(
                            stream,
                            conn,
                            &router,
                            &limits,
                            read_timeout,
                            &shutdown,
                            faults.as_deref(),
                            metrics.as_deref(),
                            retry_safe.as_deref(),
                        );
                    }
                })?,
        );
    }
    drop(rx);

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_faults = config.faults.clone();
    let accept_metrics = metrics.clone();
    let accept = thread::Builder::new()
        .name("lce-server-accept".to_string())
        .spawn(move || {
            let mut next_conn: u64 = 0;
            loop {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn = next_conn;
                        next_conn += 1;
                        if let Some(m) = &accept_metrics {
                            m.connection_accepted();
                        }
                        if let Some(plan) = &accept_faults {
                            if plan.decide_accept(conn).is_some() {
                                // Accept-point reset: drop before reading a
                                // byte. The client sees a closed connection
                                // and nothing was dispatched.
                                if let Some(m) = &accept_metrics {
                                    m.accept_fault();
                                }
                                drop(stream);
                                continue;
                            }
                        }
                        // Hand the worker a blocking socket regardless of
                        // what it inherited from the listener.
                        let _ = stream.set_nonblocking(false);
                        if tx.send((stream, conn)).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            // Dropping the sender lets idle workers exit their recv loop.
            drop(tx);
        })?;

    Ok(ServerHandle {
        addr,
        router,
        shutdown,
        accept: Some(accept),
        workers,
    })
}

/// Serve one connection: parse → dispatch → respond, honouring keep-alive
/// and pipelining, until EOF, error, timeout, shutdown or an injected
/// wire fault.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    conn: u64,
    router: &Router,
    limits: &HttpLimits,
    read_timeout: Duration,
    shutdown: &AtomicBool,
    faults: Option<&FaultPlan>,
    metrics: Option<&ServeMetrics>,
    retry_safe: Option<&BTreeSet<String>>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let obs = metrics.map(ServeMetrics::hub).map(Arc::as_ref);
    // Time one closure's run in µs, only when metrics are on.
    let timed = |phase: &str, f: &mut dyn FnMut()| {
        let start = metrics.map(|_| Instant::now());
        f();
        if let (Some(m), Some(start)) = (metrics, start) {
            m.observe_phase(phase, start.elapsed().as_micros() as u64);
        }
    };
    let mut buf = bytes::BytesMut::with_capacity(8 * 1024);
    let mut last_activity = Instant::now();
    let mut read_events: u64 = 0;
    let mut req_seq: u64 = 0;
    loop {
        // Drain complete buffered requests first (pipelining).
        let mut parsed = Ok(None);
        timed("parse", &mut || {
            parsed = http::parse_request(&mut buf, limits)
        });
        match parsed {
            Err(e) => {
                let _ = stream.write_all(&http::encode_response(&e.to_response()));
                return;
            }
            Ok(Some(req)) => {
                last_activity = Instant::now();
                if req_seq > 0 {
                    if let Some(m) = metrics {
                        m.connection_reused();
                    }
                }
                let keep_alive = req.wants_keep_alive() && !shutdown.load(Ordering::SeqCst);
                // Name-based idempotence, widened by static retry-safety
                // proofs: a proven API's response may be dropped
                // post-dispatch because a blind replay converges.
                let replay_safe = wire::is_idempotent(&req)
                    || retry_safe
                        .zip(wire::request_api(&req))
                        .is_some_and(|(set, api)| set.contains(api));
                let write_fault =
                    faults.and_then(|plan| plan.decide_write(conn, req_seq, replay_safe));
                req_seq += 1;
                if let (Some(m), Some(fault)) = (metrics, &write_fault) {
                    m.write_fault(fault);
                }
                if write_fault == Some(WireFault::Reset) {
                    // Write-point reset models a server that died between
                    // commit and reply: dispatch the request, then drop
                    // the connection without writing any response byte.
                    let _ = wire::handle_observed(&req, router, obs);
                    return;
                }
                let mut resp = Response::error(500, "unreachable");
                timed("dispatch", &mut || {
                    resp = wire::handle_observed(&req, router, obs)
                });
                resp.keep_alive = keep_alive;
                let encoded = http::encode_response(&resp);
                if write_fault == Some(WireFault::Truncate) {
                    // Write half the response, then drop the connection.
                    let half = encoded.len() / 2;
                    let _ = stream.write_all(&encoded[..half]);
                    let _ = stream.flush();
                    return;
                }
                let mut write_ok = true;
                timed("write", &mut || {
                    write_ok = stream.write_all(&encoded).is_ok()
                });
                if !write_ok {
                    return;
                }
                if !keep_alive {
                    if shutdown.load(Ordering::SeqCst) && req.wants_keep_alive() {
                        if let Some(m) = metrics {
                            m.connection_drained();
                        }
                    }
                    return;
                }
                continue;
            }
            Ok(None) => {}
        }
        if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            if let Some(m) = metrics {
                m.connection_drained();
            }
            return;
        }
        let mut chunk = [0u8; 8 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
                let event = read_events;
                read_events += 1;
                if let Some(plan) = faults {
                    if plan.decide_read(conn, event).is_some() {
                        // Read-point reset: drop with the request still in
                        // the parse buffer — nothing was dispatched.
                        if let Some(m) = metrics {
                            m.read_fault();
                        }
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if last_activity.elapsed() >= read_timeout {
                    if !buf.is_empty() {
                        let timeout = Response {
                            status: 408,
                            body: b"{\"error\":\"request timed out\"}".to_vec(),
                            content_type: "application/json",
                            keep_alive: false,
                        };
                        let _ = stream.write_all(&http::encode_response(&timeout));
                    }
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
