//! Raw Linux syscall bindings for the event core: `epoll` and the two
//! socket-buffer knobs the tests use to force partial writes.
//!
//! The crate is dependency-free by design (no `libc`, no `mio`), so on
//! Linux the poller invokes the kernel directly via inline assembly.
//! Everything here is gated to `linux` on `x86_64`/`aarch64` (and off
//! under miri, which cannot execute inline asm); other targets fall back
//! to the portable sweep poller in [`super::poll`], which never calls
//! into this module.

#![allow(dead_code)]

/// `true` when the real epoll backend is available on this target.
pub(crate) const EPOLL_AVAILABLE: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
));

/// Readable interest (`EPOLLIN`).
pub(crate) const EV_IN: u32 = 0x001;
/// Writable interest (`EPOLLOUT`).
pub(crate) const EV_OUT: u32 = 0x004;
/// Error condition (`EPOLLERR`), always reported.
pub(crate) const EV_ERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`), always reported.
pub(crate) const EV_HUP: u32 = 0x010;

pub(crate) const EPOLL_CTL_ADD: i32 = 1;
pub(crate) const EPOLL_CTL_DEL: i32 = 2;
pub(crate) const EPOLL_CTL_MOD: i32 = 3;

/// One `struct epoll_event`. The kernel packs this to 12 bytes on x86_64
/// and keeps natural (16-byte) layout everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Ready-event bitmask (`EV_*`).
    pub events: u32,
    /// Caller-chosen token, reported back verbatim.
    pub data: u64,
}

impl EpollEvent {
    pub(crate) fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod imp {
    use super::EpollEvent;

    const SYS_EPOLL_WAIT: u64 = 232;
    const SYS_EPOLL_CTL: u64 = 233;
    const SYS_EPOLL_CREATE1: u64 = 291;
    const SYS_SETSOCKOPT: u64 = 54;

    /// One raw syscall; returns the kernel's value (negative errno on
    /// failure).
    unsafe fn syscall5(nr: u64, a: u64, b: u64, c: u64, d: u64, e: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    pub(crate) fn epoll_create1() -> i64 {
        unsafe { syscall5(SYS_EPOLL_CREATE1, 0, 0, 0, 0, 0) }
    }

    pub(crate) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i64 {
        unsafe {
            syscall5(
                SYS_EPOLL_CTL,
                epfd as u64,
                op as u64,
                fd as u64,
                event as u64,
                0,
            )
        }
    }

    pub(crate) fn epoll_wait(
        epfd: i32,
        events: *mut EpollEvent,
        max_events: i32,
        timeout_ms: i32,
    ) -> i64 {
        unsafe {
            syscall5(
                SYS_EPOLL_WAIT,
                epfd as u64,
                events as u64,
                max_events as u64,
                timeout_ms as u64,
                0,
            )
        }
    }

    pub(crate) fn setsockopt(fd: i32, level: i32, name: i32, value: i32) -> i64 {
        let v: i32 = value;
        unsafe {
            syscall5(
                SYS_SETSOCKOPT,
                fd as u64,
                level as u64,
                name as u64,
                &v as *const i32 as u64,
                std::mem::size_of::<i32>() as u64,
            )
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64", not(miri)))]
mod imp {
    use super::EpollEvent;

    const SYS_EPOLL_CREATE1: u64 = 20;
    const SYS_EPOLL_CTL: u64 = 21;
    const SYS_EPOLL_PWAIT: u64 = 22;
    const SYS_SETSOCKOPT: u64 = 208;

    unsafe fn syscall6(nr: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack)
        );
        ret
    }

    pub(crate) fn epoll_create1() -> i64 {
        unsafe { syscall6(SYS_EPOLL_CREATE1, 0, 0, 0, 0, 0, 0) }
    }

    pub(crate) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i64 {
        unsafe {
            syscall6(
                SYS_EPOLL_CTL,
                epfd as u64,
                op as u64,
                fd as u64,
                event as u64,
                0,
                0,
            )
        }
    }

    pub(crate) fn epoll_wait(
        epfd: i32,
        events: *mut EpollEvent,
        max_events: i32,
        timeout_ms: i32,
    ) -> i64 {
        // aarch64 has no plain epoll_wait; epoll_pwait with a null sigmask
        // is the kernel's own compatibility spelling.
        unsafe {
            syscall6(
                SYS_EPOLL_PWAIT,
                epfd as u64,
                events as u64,
                max_events as u64,
                timeout_ms as u64,
                0,
                8,
            )
        }
    }

    pub(crate) fn setsockopt(fd: i32, level: i32, name: i32, value: i32) -> i64 {
        let v: i32 = value;
        unsafe {
            syscall6(
                SYS_SETSOCKOPT,
                fd as u64,
                level as u64,
                name as u64,
                &v as *const i32 as u64,
                std::mem::size_of::<i32>() as u64,
                0,
            )
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
)))]
mod imp {
    //! Stubs for targets without the raw-syscall backend: every entry
    //! reports `ENOSYS`; the poller never routes here because
    //! [`super::EPOLL_AVAILABLE`] is false.
    use super::EpollEvent;

    const ENOSYS: i64 = -38;

    pub(crate) fn epoll_create1() -> i64 {
        ENOSYS
    }
    pub(crate) fn epoll_ctl(_epfd: i32, _op: i32, _fd: i32, _event: *mut EpollEvent) -> i64 {
        ENOSYS
    }
    pub(crate) fn epoll_wait(
        _epfd: i32,
        _events: *mut EpollEvent,
        _max: i32,
        _timeout_ms: i32,
    ) -> i64 {
        ENOSYS
    }
    pub(crate) fn setsockopt(_fd: i32, _level: i32, _name: i32, _value: i32) -> i64 {
        ENOSYS
    }
}

pub(crate) use imp::{epoll_create1, epoll_ctl, epoll_wait};

const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

/// `EINTR`, the one errno the wait loop retries on.
pub(crate) const EINTR: i64 = -4;

/// Shrink (or grow) a socket's kernel send buffer. Test hook: a tiny
/// send buffer forces the event loop through its partial-write path.
/// Returns `false` where the syscall backend is unavailable.
pub(crate) fn set_send_buffer(fd: i32, bytes: usize) -> bool {
    EPOLL_AVAILABLE && imp::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, bytes as i32) == 0
}

/// Shrink (or grow) a socket's kernel receive buffer (see
/// [`set_send_buffer`]).
pub(crate) fn set_recv_buffer(fd: i32, bytes: usize) -> bool {
    EPOLL_AVAILABLE && imp::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, bytes as i32) == 0
}
