//! The nonblocking connection state machine.
//!
//! [`Conn`] is a line-for-line translation of the old blocking worker's
//! `handle_connection` loop into close-after-flush form. The decision
//! sequence is identical — parse-drain buffered requests first, then read
//! one chunk per readiness event, with the three wire-fault hooks fired at
//! exactly the same points and keyed by the same `(conn, seq)` pairs — so
//! a chaos schedule decided against the blocking core decides identically
//! here. What changes is only *when* bytes leave: where the blocking loop
//! did a synchronous `write_all` and `return`, this machine queues the
//! encoded bytes into `out`, sets `closing`, and lets the shard flush the
//! tail as the socket drains. Every blocking-core `return` after a
//! successful write therefore becomes `closing = true`, preserving the
//! byte stream the peer observes.

use crate::http::{self, HttpLimits, Request, Response};
use crate::net::poll::Interest;
use crate::obs::ServeMetrics;
use crate::router::Router;
use crate::wire;
use lce_faults::{FaultPlan, WireFault};
use std::collections::{BTreeSet, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Account → owning shard. First claim wins: the shard that parses an
/// account's first request pins the account, and every later connection
/// for it migrates there, so one account's dispatches never contend
/// across cores.
pub(crate) type PinTable = Arc<Mutex<HashMap<String, usize>>>;

/// Everything a shard thread shares with its connections.
pub(crate) struct ShardCtx {
    /// This shard's index (the pin table's value space).
    pub shard: usize,
    pub router: Arc<Router>,
    pub limits: HttpLimits,
    pub read_timeout: Duration,
    pub shutdown: Arc<AtomicBool>,
    /// Set by the acceptor after its final hand-off; shards may only exit
    /// once no more connections can arrive.
    pub accept_done: Arc<AtomicBool>,
    pub faults: Option<Arc<FaultPlan>>,
    pub metrics: Option<Arc<ServeMetrics>>,
    pub retry_safe: Option<Arc<BTreeSet<String>>>,
    pub pins: PinTable,
}

impl ShardCtx {
    fn shutdown_now(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Time one closure's run in µs, only when metrics are on (same contract
/// as the old blocking worker's `timed`).
fn timed<T>(metrics: Option<&ServeMetrics>, phase: &str, f: impl FnOnce() -> T) -> T {
    let start = metrics.map(|_| Instant::now());
    let out = f();
    if let (Some(m), Some(start)) = (metrics, start) {
        m.observe_phase(phase, start.elapsed().as_micros() as u64);
    }
    out
}

/// The account segment of a request path, when there is one: the first
/// path segment iff it is a valid account id (so `/_health`, `/_apis`
/// and `/_metrics` never pin).
fn account_of(path: &str) -> Option<&str> {
    let seg = path.strip_prefix('/')?.split('/').next().unwrap_or("");
    if Router::valid_account_id(seg) {
        Some(seg)
    } else {
        None
    }
}

/// A request that must finish on another shard: the account turned out
/// to be pinned elsewhere.
pub(crate) struct Migration {
    /// The shard that owns the account.
    pub target: usize,
    /// The already-parsed request, carried along so the target processes
    /// it without re-parsing.
    pub request: Request,
}

/// One nonblocking connection (see module docs).
pub(crate) struct Conn {
    stream: TcpStream,
    /// Accept-order id: the poller token and the fault-decision key.
    pub(crate) id: u64,
    buf: bytes::BytesMut,
    out: Vec<u8>,
    out_pos: usize,
    read_events: u64,
    req_seq: u64,
    pub(crate) last_activity: Instant,
    /// Close once `out` drains; set wherever the blocking core returned.
    pub(crate) closing: bool,
    /// The account-pinning decision for this connection has been made
    /// (either it stays here or it was shipped to its owner).
    pinned: bool,
    /// Interest currently registered with the poller.
    pub(crate) registered: Interest,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, id: u64) -> Conn {
        Conn {
            stream,
            id,
            buf: bytes::BytesMut::with_capacity(8 * 1024),
            out: Vec::new(),
            out_pos: 0,
            read_events: 0,
            req_seq: 0,
            last_activity: Instant::now(),
            closing: false,
            pinned: false,
            registered: Interest::READ,
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Bytes queued but not yet accepted by the socket.
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Nothing buffered in either direction (shutdown-drain candidate).
    pub(crate) fn idle(&self) -> bool {
        self.buf.is_empty() && !self.wants_write()
    }

    /// The connection is finished and fully flushed: drop it.
    pub(crate) fn done(&self) -> bool {
        self.closing && !self.wants_write()
    }

    /// What the poller should watch for right now. No reads once closing
    /// (the blocking core never read again after deciding to close), and
    /// writes only while there is a tail to flush.
    pub(crate) fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing,
            writable: self.wants_write(),
        }
    }

    fn queue(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// One readiness-event's worth of input: read a single chunk (the
    /// blocking core read once per loop iteration, and level-triggered
    /// polling re-reports until drained), fire the read-point fault hook,
    /// then parse-drain.
    pub(crate) fn on_readable(&mut self, ctx: &ShardCtx) -> Option<Migration> {
        if self.closing {
            return None;
        }
        let mut chunk = [0u8; 8 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. The buffer can only hold a partial request here
                // (complete ones were drained after the previous read),
                // and the blocking core dropped partials at EOF too.
                self.closing = true;
                return None;
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.last_activity = Instant::now();
                let event = self.read_events;
                self.read_events += 1;
                if let Some(plan) = &ctx.faults {
                    if plan.decide_read(self.id, event).is_some() {
                        // Read-point reset: drop with the request still in
                        // the parse buffer — nothing was dispatched.
                        if let Some(m) = &ctx.metrics {
                            m.read_fault();
                        }
                        self.closing = true;
                        return None;
                    }
                }
            }
            // Spurious wakeup (sweep backend reports everything ready) or
            // a retryable blip: the next event retries the read.
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                return None;
            }
            Err(_) => {
                self.closing = true;
                return None;
            }
        }
        self.drain(ctx)
    }

    /// Parse and serve every complete buffered request (pipelining),
    /// stopping at a partial request, a close decision, or a migration.
    pub(crate) fn drain(&mut self, ctx: &ShardCtx) -> Option<Migration> {
        while !self.closing {
            let metrics = ctx.metrics.as_deref();
            let parsed = timed(metrics, "parse", || {
                http::parse_request(&mut self.buf, &ctx.limits)
            });
            match parsed {
                Err(e) => {
                    self.queue(&http::encode_response(&e.to_response()));
                    self.closing = true;
                }
                Ok(Some(req)) => {
                    if !self.pinned && !ctx.shutdown_now() {
                        if let Some(target) = self.resolve_pin(&req, ctx) {
                            if target != ctx.shard {
                                // The account lives on another shard; ship
                                // the whole connection there before any
                                // decision for this request fires.
                                // Decisions are pure in (conn, seq), so
                                // relocation cannot change them.
                                return Some(Migration {
                                    target,
                                    request: req,
                                });
                            }
                        }
                    }
                    self.handle_request(req, ctx);
                }
                Ok(None) => break,
            }
        }
        None
    }

    /// Pin this connection's account (first claim wins) and report the
    /// owning shard. Requests without an account segment resolve to
    /// nothing and are served wherever they landed.
    fn resolve_pin(&mut self, req: &Request, ctx: &ShardCtx) -> Option<usize> {
        let account = account_of(&req.path)?;
        let target = {
            let mut pins = ctx.pins.lock().unwrap_or_else(|e| e.into_inner());
            *pins.entry(account.to_string()).or_insert(ctx.shard)
        };
        self.pinned = true;
        Some(target)
    }

    /// Serve one parsed request: the write-fault decision, the dispatch
    /// and the response queueing, in exactly the blocking core's order.
    pub(crate) fn handle_request(&mut self, req: Request, ctx: &ShardCtx) {
        self.last_activity = Instant::now();
        let metrics = ctx.metrics.as_deref();
        if self.req_seq > 0 {
            if let Some(m) = metrics {
                m.connection_reused();
            }
        }
        let shutdown = ctx.shutdown_now();
        let keep_alive = req.wants_keep_alive() && !shutdown;
        // Name-based idempotence, widened by static retry-safety proofs: a
        // proven API's response may be dropped post-dispatch because a
        // blind replay converges.
        let replay_safe = wire::is_idempotent(&req)
            || ctx
                .retry_safe
                .as_deref()
                .zip(wire::request_api(&req))
                .is_some_and(|(set, api)| set.contains(api));
        let write_fault = ctx
            .faults
            .as_deref()
            .and_then(|plan| plan.decide_write(self.id, self.req_seq, replay_safe));
        self.req_seq += 1;
        if let (Some(m), Some(fault)) = (metrics, &write_fault) {
            m.write_fault(fault);
        }
        let obs = metrics.map(ServeMetrics::hub).map(Arc::as_ref);
        if write_fault == Some(WireFault::Reset) {
            // Write-point reset models a server that died between commit
            // and reply: dispatch the request, then close without queueing
            // any response byte (earlier responses still flush).
            let _ = wire::handle_observed(&req, &ctx.router, obs);
            self.closing = true;
            return;
        }
        let resp = timed(metrics, "dispatch", || {
            wire::handle_observed(&req, &ctx.router, obs)
        });
        let resp = Response { keep_alive, ..resp };
        let encoded = http::encode_response(&resp);
        if write_fault == Some(WireFault::Truncate) {
            // Queue half the response, then close once it flushes.
            self.queue(&encoded[..encoded.len() / 2]);
            self.closing = true;
            return;
        }
        self.queue(&encoded);
        if !keep_alive {
            if shutdown && req.wants_keep_alive() {
                if let Some(m) = metrics {
                    m.connection_drained();
                }
            }
            self.closing = true;
        }
    }

    /// Push queued bytes into the socket until it refuses more. Returns
    /// `false` when the connection is dead and must be dropped now
    /// (pending bytes are lost, exactly as a failed blocking `write_all`
    /// lost them).
    pub(crate) fn flush(&mut self, ctx: &ShardCtx) -> bool {
        if !self.wants_write() {
            return true;
        }
        let metrics = ctx.metrics.as_deref();
        let start = metrics.map(|_| Instant::now());
        let mut alive = true;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    alive = false;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    alive = false;
                    break;
                }
            }
        }
        if let (Some(m), Some(start)) = (metrics, start) {
            m.observe_phase("write", start.elapsed().as_micros() as u64);
        }
        if self.out_pos >= self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        alive
    }

    /// Idle past the read timeout: `408` if a partial request was
    /// buffered, then close (blocking-core parity).
    pub(crate) fn expire(&mut self) {
        if !self.buf.is_empty() {
            let timeout = Response {
                status: 408,
                body: b"{\"error\":\"request timed out\"}".to_vec(),
                content_type: "application/json",
                keep_alive: false,
            };
            self.queue(&http::encode_response(&timeout));
        }
        self.closing = true;
    }

    /// `true` once this connection has been idle past `read_timeout`.
    pub(crate) fn timed_out(&self, read_timeout: Duration) -> bool {
        !self.closing && self.last_activity.elapsed() >= read_timeout
    }

    /// Mark the pin decision as already made (set on migrated connections
    /// so the target shard never re-consults the pin table).
    pub(crate) fn mark_pinned(&mut self) {
        self.pinned = true;
    }
}
