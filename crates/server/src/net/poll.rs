//! The readiness poller behind each shard's event loop.
//!
//! Two interchangeable backends sit behind [`Poller`]:
//!
//! * **Epoll** — level-triggered `epoll` via the raw syscalls in
//!   [`super::sys`], on Linux x86_64/aarch64. Level triggering is what
//!   makes the fault decision sequence line up with the old blocking
//!   core: the loop reads exactly one chunk per readiness event, and the
//!   kernel re-reports the socket until it is drained, mirroring the
//!   blocking loop's read-once-then-parse iteration.
//! * **Sweep** — a portable fallback for targets without the syscall
//!   backend: every registered source is reported ready on a short tick
//!   and the nonblocking I/O calls sort out the spurious wakeups
//!   (`WouldBlock` is ignored everywhere). Strictly slower, never wrong.
//!
//! Both backends speak the same vocabulary: register a source with a
//! `u64` token and an interest, later receive per-token readiness
//! events.

use super::sys;
use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

/// What a registered source wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the source has bytes to read (or EOF/error).
    pub readable: bool,
    /// Wake when the source can accept more written bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub(crate) const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn to_epoll(self) -> u32 {
        let mut ev = 0;
        if self.readable {
            ev |= sys::EV_IN;
        }
        if self.writable {
            ev |= sys::EV_OUT;
        }
        ev
    }
}

/// One readiness report. Write readiness carries no payload beyond the
/// wakeup itself — the loop flushes pending output on every event — so
/// only read readiness is surfaced explicitly (it gates the read path
/// and its fault/event counters).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the source was registered with.
    pub token: u64,
    /// Bytes (or EOF/error/hangup) are waiting to be read.
    pub readable: bool,
}

/// A level-triggered readiness poller (see module docs).
pub(crate) enum Poller {
    Epoll(Epoll),
    Sweep(Sweep),
}

impl Poller {
    /// Build the best available backend for this target.
    pub(crate) fn new() -> io::Result<Poller> {
        if sys::EPOLL_AVAILABLE {
            Epoll::new().map(Poller::Epoll)
        } else {
            Ok(Poller::Sweep(Sweep::default()))
        }
    }

    /// Start watching `fd` under `token`.
    pub(crate) fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Sweep(p) => {
                p.sources.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest of a watched `fd`.
    pub(crate) fn rearm(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Sweep(p) => {
                for s in &mut p.sources {
                    if s.0 == fd {
                        s.2 = interest;
                    }
                }
                Ok(())
            }
        }
    }

    /// Stop watching `fd`. Dropping the only descriptor also deregisters
    /// it from epoll; this exists for the sweep backend and for sources
    /// that outlive their registration (migrated connections).
    pub(crate) fn deregister(&mut self, fd: RawFd) {
        match self {
            Poller::Epoll(p) => {
                let _ = p.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::READ);
            }
            Poller::Sweep(p) => p.sources.retain(|s| s.0 != fd),
        }
    }

    /// Wait up to `timeout` for readiness, appending into `events`.
    pub(crate) fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match self {
            Poller::Epoll(p) => p.wait(events, timeout),
            Poller::Sweep(p) => p.wait(events, timeout),
        }
    }
}

/// The kernel-backed poller: an owned `epoll` instance.
pub(crate) struct Epoll {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let ret = sys::epoll_create1();
        if ret < 0 {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(Epoll {
            epfd: ret as RawFd,
            buf: vec![sys::EpollEvent::zeroed(); 256],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.to_epoll(),
            data: token,
        };
        let ret = sys::epoll_ctl(self.epfd, op, fd, &mut ev);
        if ret < 0 {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = loop {
            let ret = sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            );
            if ret == sys::EINTR {
                continue;
            }
            if ret < 0 {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            break ret as usize;
        };
        for ev in &self.buf[..n] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                // Errors and hangups surface through the read path, which
                // maps them onto the same close decisions the blocking
                // core took.
                readable: bits & (sys::EV_IN | sys::EV_ERR | sys::EV_HUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // Close via an OwnedFd so no raw `close` syscall binding is
        // needed.
        use std::os::fd::{FromRawFd, OwnedFd};
        let _ = unsafe { OwnedFd::from_raw_fd(self.epfd) };
    }
}

/// Portable fallback: report every source ready on a short tick.
#[derive(Default)]
pub(crate) struct Sweep {
    sources: Vec<(RawFd, u64, Interest)>,
}

impl Sweep {
    /// How long one sweep tick sleeps. Short enough that spurious-wakeup
    /// serving stays responsive, long enough not to spin a core.
    const TICK: Duration = Duration::from_millis(2);

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout.min(Self::TICK);
        // With no sources there is nothing to report; just honour the
        // tick so the caller's shutdown/inbox checks run.
        std::thread::sleep(deadline.saturating_duration_since(Instant::now()));
        for (_, token, interest) in &self.sources {
            events.push(Event {
                token: *token,
                readable: interest.readable,
            });
        }
        Ok(())
    }
}
