//! The event-driven server core (`lce-net`).
//!
//! The old blocking thread-per-connection pool is replaced by
//! shared-nothing **shards**: each shard thread owns a readiness poller
//! ([`poll::Poller`] — raw epoll on Linux, a portable sweep elsewhere),
//! a private set of connections, and an inbox fed by the acceptor. The
//! acceptor routes fresh connections round-robin (`conn % shards`), and
//! the first parsed request *pins* the account: the pin table maps each
//! account to the shard that first served it, and any connection that
//! turns out to speak for an account pinned elsewhere migrates — carried
//! whole, with its parsed request and fault counters — to the owning
//! shard. After that, all of an account's traffic dispatches from one
//! core, the per-account `RwLock` is never contended across shards, and
//! reads proven `ReadOnly` by `lce-effects` dispatch under an
//! uncontended shared lock.
//!
//! Fault parity: all wire-fault decisions are pure functions of the
//! connection id and per-connection event/request counters, and those
//! counters travel with the connection, so a chaos schedule decided
//! against the blocking core decides identically here (see [`conn`]).

pub(crate) mod conn;
pub(crate) mod poll;
pub(crate) mod sys;

use conn::{Conn, Migration, ShardCtx};
use poll::{Interest, Poller};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Poller token reserved for the shard's wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// Poller timeout: the cadence of shutdown checks and read-timeout scans
/// (the blocking core's poll interval).
const TICK: Duration = Duration::from_millis(25);

/// How long a shard keeps flushing queued response tails to unwilling
/// sockets after shutdown before force-closing them.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Work handed to a shard by the acceptor or a peer shard.
pub(crate) enum Incoming {
    /// A freshly accepted connection with its accept-order id.
    Fresh(TcpStream, u64),
    /// A connection migrating to this shard (its account is pinned here),
    /// carrying the request that triggered the move.
    Moved(Box<Conn>, crate::http::Request),
}

/// The write end of a shard's wake pipe: one byte unblocks the poller.
#[derive(Clone)]
pub(crate) struct Waker(Arc<UnixStream>);

impl Waker {
    /// Wake the shard. Best-effort: a full pipe means a wake is already
    /// pending, which is all a wake means.
    pub(crate) fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// One shard's address: where to enqueue work and how to wake it.
#[derive(Clone)]
pub(crate) struct ShardHandle {
    tx: mpsc::Sender<Incoming>,
    waker: Waker,
}

impl ShardHandle {
    /// Wake the shard's poller without enqueueing work (shutdown nudge).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Enqueue and wake. Returns the work back if the shard is gone.
    pub(crate) fn send(&self, work: Incoming) -> Result<(), Incoming> {
        match self.tx.send(work) {
            Ok(()) => {
                self.waker.wake();
                Ok(())
            }
            Err(mpsc::SendError(w)) => Err(w),
        }
    }
}

/// Spawn `n` shard threads. Returns their handles (for the acceptor and
/// for cross-shard migration) and join handles.
pub(crate) fn spawn_shards(
    n: usize,
    ctx_for: impl Fn(usize) -> ShardCtx,
) -> std::io::Result<(Vec<ShardHandle>, Vec<thread::JoinHandle<()>>)> {
    let mut handles = Vec::with_capacity(n);
    let mut pipes = Vec::with_capacity(n);
    for _ in 0..n {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<Incoming>();
        handles.push(ShardHandle {
            tx,
            waker: Waker(Arc::new(wake_tx)),
        });
        pipes.push((rx, wake_rx));
    }
    let mut threads = Vec::with_capacity(n);
    for (i, (inbox, wake_rx)) in pipes.into_iter().enumerate() {
        let ctx = ctx_for(i);
        let peers = handles.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("lce-server-shard-{}", i))
                .spawn(move || run_shard(ctx, inbox, wake_rx, peers))?,
        );
    }
    Ok((handles, threads))
}

/// The shard event loop: poll, absorb inbox work, serve readiness
/// events, tick timeouts and the shutdown drain.
fn run_shard(
    ctx: ShardCtx,
    inbox: mpsc::Receiver<Incoming>,
    wake_rx: UnixStream,
    peers: Vec<ShardHandle>,
) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    let _ = poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = Vec::new();
    let mut shutdown_seen: Option<Instant> = None;
    // Work observed by the exit probe, to be absorbed next iteration.
    let mut carry: Option<Incoming> = None;
    loop {
        let _ = poller.wait(&mut events, TICK);
        drain_wake(&wake_rx);

        // Inbox first: fresh and migrated connections.
        if let Some(work) = carry.take() {
            absorb(work, &mut conns, &mut poller, &ctx);
        }
        while let Ok(work) = inbox.try_recv() {
            absorb(work, &mut conns, &mut poller, &ctx);
        }

        // Readiness events.
        for ev in events.iter().copied() {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.readable {
                if let Some(Migration { target, request }) = conn.on_readable(&ctx) {
                    let conn = conns.remove(&ev.token).unwrap();
                    poller.deregister(conn.fd());
                    if let Err(Incoming::Moved(conn, request)) =
                        peers[target].send(Incoming::Moved(Box::new(conn), request))
                    {
                        // The owner is gone (shutdown race): serve in
                        // place rather than dropping the connection.
                        absorb(
                            Incoming::Moved(conn, request),
                            &mut conns,
                            &mut poller,
                            &ctx,
                        );
                    }
                    continue;
                }
            }
            settle(&mut conns, &mut poller, ev.token, &ctx);
        }

        if !ctx.shutdown.load(Ordering::SeqCst) {
            // Tick: read timeouts.
            let expired: Vec<u64> = conns
                .values()
                .filter(|c| c.timed_out(ctx.read_timeout))
                .map(|c| c.id)
                .collect();
            for id in expired {
                if let Some(conn) = conns.get_mut(&id) {
                    conn.expire();
                }
                settle(&mut conns, &mut poller, id, &ctx);
            }
            continue;
        }

        // Shutdown drain. Serve any complete buffered requests (they
        // answer with `Connection: close`), count idle connections as
        // drained, drop mid-request ones, and keep flushing queued tails
        // until the deadline.
        let started = *shutdown_seen.get_or_insert_with(Instant::now);
        let force = started.elapsed() >= DRAIN_DEADLINE;
        for id in conns.keys().copied().collect::<Vec<u64>>() {
            let conn = conns.get_mut(&id).unwrap();
            if !conn.closing {
                // Final read pass: a request that reached the kernel
                // buffer before shutdown is in-flight work, not an idle
                // connection. Pull it in and serve it — the response goes
                // out `Connection: close`, exactly as the blocking pool
                // finished its worker's last exchange. Without this read
                // the close would RST unread bytes and lose the reply.
                if let Some(Migration { request, .. }) = conn.on_readable(&ctx) {
                    conn.handle_request(request, &ctx);
                }
            }
            if !conn.closing {
                if let Some(Migration { request, .. }) = conn.drain(&ctx) {
                    // Migrations are disabled under shutdown; if one
                    // slipped through the race, serve it in place.
                    conn.handle_request(request, &ctx);
                }
            }
            if !conn.closing {
                if conn.idle() {
                    if let Some(m) = &ctx.metrics {
                        m.connection_drained();
                    }
                    conn.closing = true;
                } else if !conn.wants_write() {
                    // Mid-request with nothing left to send: the blocking
                    // core dropped these on shutdown without a drain count.
                    conn.closing = true;
                }
            }
            settle(&mut conns, &mut poller, id, &ctx);
            if force {
                if let Some(conn) = conns.remove(&id) {
                    poller.deregister(conn.fd());
                }
            }
        }
        if ctx.accept_done.load(Ordering::SeqCst) && conns.is_empty() {
            // Probe the inbox one last time so a connection handed off
            // concurrently with shutdown is still drained, not leaked.
            match inbox.try_recv() {
                Ok(work) => carry = Some(work),
                Err(_) => return,
            }
        }
    }
}

/// Take in one unit of inbox work: register a fresh connection or finish
/// absorbing a migrated one (serve its carried request, then whatever
/// else its buffer already holds).
fn absorb(work: Incoming, conns: &mut HashMap<u64, Conn>, poller: &mut Poller, ctx: &ShardCtx) {
    match work {
        Incoming::Fresh(stream, id) => {
            if ctx.shutdown.load(Ordering::SeqCst) {
                // Blocking-core parity: a connection handed over after
                // shutdown never gets a read — it parses nothing and
                // counts as drained.
                if let Some(m) = &ctx.metrics {
                    m.connection_drained();
                }
                return;
            }
            let _ = stream.set_nodelay(true);
            let conn = Conn::new(stream, id);
            let _ = poller.register(conn.fd(), conn.id, conn.registered);
            conns.insert(conn.id, conn);
        }
        Incoming::Moved(mut conn, request) => {
            conn.mark_pinned();
            conn.handle_request(request, ctx);
            let mig = conn.drain(ctx);
            debug_assert!(mig.is_none(), "migrated connections are pinned");
            if !conn.flush(ctx) || conn.done() {
                return;
            }
            conn.registered = conn.desired_interest();
            let _ = poller.register(conn.fd(), conn.id, conn.registered);
            conns.insert(conn.id, *conn);
        }
    }
}

/// Flush, then reconcile a connection's poller registration with its
/// desired interest — or drop it if it is finished or dead.
fn settle(conns: &mut HashMap<u64, Conn>, poller: &mut Poller, id: u64, ctx: &ShardCtx) {
    let Some(conn) = conns.get_mut(&id) else {
        return;
    };
    if !conn.flush(ctx) || conn.done() {
        let conn = conns.remove(&id).unwrap();
        poller.deregister(conn.fd());
        return;
    }
    let want = conn.desired_interest();
    if want != conn.registered {
        let _ = poller.rearm(conn.fd(), conn.id, want);
        conn.registered = want;
    }
}

/// Swallow pending wake bytes so the pipe never fills.
fn drain_wake(wake_rx: &UnixStream) {
    let mut sink = [0u8; 64];
    loop {
        match (&*wake_rx).read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
