//! A blocking Rust client for a served emulator that itself implements
//! [`Backend`] — a remote endpoint plugs into the DevOps runner, the
//! differential alignment engine and the gym with zero changes, so a
//! served learned emulator can be diff-tested against an in-process
//! golden model over real sockets.
//!
//! The client keeps one keep-alive connection and transparently
//! reconnects once per request if the server closed it (e.g. after an
//! idle timeout or a rolling restart). Transport failures surface as
//! `ApiResponse` errors with code `TransportError`, so differential
//! comparisons treat an unreachable endpoint as a divergence rather than
//! a crash.

use crate::http::{self, HttpLimits, ParsedResponse};
use bytes::BytesMut;
use lce_emulator::{ApiCall, ApiError, ApiResponse, Backend, ResourceStore};
use lce_faults::RetryPolicy;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Error code used for responses the emulator never produced: transport
/// failures and protocol violations between client and server.
pub const TRANSPORT_ERROR: &str = "TransportError";

/// A blocking remote-backend client bound to one account.
pub struct Client {
    addr: SocketAddr,
    account: String,
    name: String,
    apis: Vec<String>,
    limits: HttpLimits,
    timeout: Duration,
    stream: Option<TcpStream>,
    retry: Option<RetryPolicy>,
    /// Salts the per-call backoff stream; bumped once per retried call.
    retry_calls: u64,
}

impl Client {
    /// Connect to a server and bind to `account`, fetching the supported
    /// API list up front (which doubles as a handshake).
    pub fn connect(
        addr: impl ToSocketAddrs,
        account: impl Into<String>,
    ) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        let account = account.into();
        let mut client = Client {
            addr,
            name: format!("remote:{}", account),
            account,
            apis: Vec::new(),
            limits: HttpLimits::default(),
            timeout: Duration::from_secs(10),
            stream: None,
            retry: None,
            retry_calls: 0,
        };
        let (status, body) = client
            .roundtrip("GET", "/_apis", &[])
            .map_err(std::io::Error::other)?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "handshake failed with HTTP {}",
                status
            )));
        }
        let parsed: serde_json::Value = serde_json::from_slice(&body)
            .map_err(|e| std::io::Error::other(format!("bad /_apis body: {}", e)))?;
        client.apis = parsed["apis"]
            .as_array()
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(|s| s.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        Ok(client)
    }

    /// Like [`Client::connect`], but keep retrying a failed connection
    /// handshake under the policy's backoff (the server may be resetting
    /// connections at accept under a fault plan), and install the policy
    /// on the resulting client for per-call retries.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        account: impl Into<String> + Clone,
        policy: RetryPolicy,
    ) -> std::io::Result<Client> {
        let mut backoff = policy.backoff(0x636f6e6e); // "conn"
        let mut last_err = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                (policy.sleep)(backoff.next_delay());
            }
            match Client::connect(addr.clone(), account.clone()) {
                Ok(client) => return Ok(client.with_retry(policy)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("connect failed")))
    }

    /// Install a retry policy: transient application errors (as classified
    /// by the policy) and transport failures are retried with capped
    /// decorrelated-jitter backoff.
    ///
    /// Transport-error retries re-send the request, so they are only safe
    /// when a lost response implies the mutation either never applied
    /// (connect/accept/read faults) or the request was idempotent — which
    /// is exactly the guarantee of the default `WriteFaultScope`. Against
    /// a server that drops *mutating* responses mid-write, disable
    /// transport retries ([`RetryPolicy::without_transport_retry`]); APIs
    /// the policy carries static retry-safety proofs for
    /// ([`RetryPolicy::with_retry_safe_apis`]) are still replayed — the
    /// proof makes a blind re-send convergent even after the mutation
    /// applied, with no no-double-apply wrapper needed.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Override the per-request I/O timeout (default 10s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The account this client is bound to.
    pub fn account(&self) -> &str {
        &self.account
    }

    /// The server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` if the server answers `GET /_health` with 200.
    pub fn health(&mut self) -> bool {
        matches!(self.roundtrip("GET", "/_health", &[]), Ok((200, _)))
    }

    /// Explicit, fallible reset (the [`Backend::reset`] impl ignores
    /// transport failures by necessity of the trait signature).
    pub fn try_reset(&mut self) -> Result<(), String> {
        let path = format!("/{}/_reset", self.account);
        match self.roundtrip("POST", &path, &[])? {
            (200, _) => Ok(()),
            (status, body) => Err(format!(
                "reset failed with HTTP {}: {}",
                status,
                String::from_utf8_lossy(&body)
            )),
        }
    }

    /// Fetch a snapshot of the account's resource store over the wire
    /// (`GET /<account>/_store`). This is the remote counterpart of
    /// [`Backend::snapshot`], which this client deliberately leaves at
    /// `None`: `snapshot` is infallible and `&self`, while a network fetch
    /// can fail and needs `&mut self`.
    pub fn fetch_store(&mut self) -> Result<ResourceStore, String> {
        let path = format!("/{}/_store", self.account);
        match self.roundtrip("GET", &path, &[])? {
            (200, body) => {
                serde_json::from_slice(&body).map_err(|e| format!("bad /_store body: {}", e))
            }
            (status, body) => Err(format!(
                "store fetch failed with HTTP {}: {}",
                status,
                String::from_utf8_lossy(&body)
            )),
        }
    }

    /// Fetch the Prometheus text of this account's metrics
    /// (`GET /<account>/_metrics`, or the `/deterministic` variant with
    /// only schedule-exact families). Errors if the server has no
    /// observability attached or the account has no metrics yet.
    pub fn fetch_metrics(&mut self, deterministic: bool) -> Result<String, String> {
        let suffix = if deterministic { "/deterministic" } else { "" };
        let path = format!("/{}/_metrics{}", self.account, suffix);
        self.fetch_text(&path)
    }

    /// Fetch the server-wide Prometheus text (`GET /_metrics`, or the
    /// `/deterministic` variant).
    pub fn fetch_global_metrics(&mut self, deterministic: bool) -> Result<String, String> {
        let suffix = if deterministic { "/deterministic" } else { "" };
        self.fetch_text(&format!("/_metrics{}", suffix))
    }

    fn fetch_text(&mut self, path: &str) -> Result<String, String> {
        match self.roundtrip("GET", path, &[])? {
            (200, body) => {
                String::from_utf8(body).map_err(|_| format!("{} body is not UTF-8", path))
            }
            (status, body) => Err(format!(
                "GET {} failed with HTTP {}: {}",
                path,
                status,
                String::from_utf8_lossy(&body)
            )),
        }
    }

    /// One invoke under the installed retry policy.
    fn invoke_with_retry(&mut self, call: &ApiCall, policy: &RetryPolicy) -> ApiResponse {
        self.retry_calls += 1;
        let mut backoff = policy.backoff(self.retry_calls);
        let mut last = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                (policy.sleep)(backoff.next_delay());
            }
            let resp = self.invoke_once(call);
            match resp.error_code() {
                Some(TRANSPORT_ERROR)
                    if policy.retry_transport || policy.static_retry_safe(&call.api) =>
                {
                    // Whatever the failure was, the connection is suspect.
                    self.stream = None;
                    last = Some(resp);
                }
                Some(code) if policy.should_retry_code(code) => last = Some(resp),
                _ => return resp,
            }
        }
        last.unwrap_or_else(|| {
            ApiResponse::err(ApiError::new(TRANSPORT_ERROR, "retry budget exhausted"))
        })
    }

    fn connect_stream(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// One request/response exchange, reusing the keep-alive connection.
    /// If a *reused* connection fails before a single response byte
    /// arrives (the signature of a server-side idle close), the request is
    /// retried exactly once on a fresh connection — the server cannot have
    /// processed it, so the retry never double-applies a mutation. Once
    /// response bytes have been seen, failures are final.
    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), String> {
        let had_stream = self.stream.is_some();
        if !had_stream {
            self.stream = Some(self.connect_stream().map_err(|e| e.to_string())?);
        }
        match self.exchange(method, path, body) {
            Ok(resp) => Ok(resp),
            Err((saw_response_bytes, first)) => {
                self.stream = None;
                if !had_stream || saw_response_bytes {
                    return Err(first);
                }
                self.stream = Some(self.connect_stream().map_err(|e| e.to_string())?);
                self.exchange(method, path, body).map_err(|(_, e)| {
                    self.stream = None;
                    e
                })
            }
        }
    }

    /// Returns `Err((saw_response_bytes, message))` on failure.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), (bool, String)> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| (false, "not connected".to_string()))?;
        let head = format!(
            "{} {} HTTP/1.1\r\nHost: lce\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            method,
            path,
            body.len()
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(body);
        stream
            .write_all(&wire)
            .map_err(|e| (false, e.to_string()))?;

        let mut buf = BytesMut::with_capacity(8 * 1024);
        loop {
            let saw_bytes = !buf.is_empty();
            match http::parse_response(&mut buf, &self.limits)
                .map_err(|e| (saw_bytes, e.message))?
            {
                Some(ParsedResponse {
                    status,
                    keep_alive,
                    body,
                }) => {
                    if !keep_alive {
                        self.stream = None;
                    }
                    return Ok((status, body));
                }
                None => {
                    let stream = self
                        .stream
                        .as_mut()
                        .ok_or_else(|| (saw_bytes, "not connected".to_string()))?;
                    let mut chunk = [0u8; 8 * 1024];
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err((saw_bytes, "connection closed mid-response".to_string()))
                        }
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err((saw_bytes, e.to_string())),
                    }
                }
            }
        }
    }

    /// One invoke attempt, no retries.
    fn invoke_once(&mut self, call: &ApiCall) -> ApiResponse {
        let body = match serde_json::to_vec(&call.args) {
            Ok(b) => b,
            Err(e) => return self.transport_error("encoding call", e.to_string()),
        };
        let path = format!("/{}/{}", self.account, call.api);
        match self.roundtrip("POST", &path, &body) {
            Ok((200, resp_body)) => match serde_json::from_slice::<ApiResponse>(&resp_body) {
                Ok(resp) => resp,
                Err(e) => self.transport_error("decoding response", e.to_string()),
            },
            Ok((status, resp_body)) => self.transport_error(
                "invoking",
                format!("HTTP {}: {}", status, String::from_utf8_lossy(&resp_body)),
            ),
            Err(e) => self.transport_error("invoking", e),
        }
    }

    fn transport_error(&self, context: &str, detail: String) -> ApiResponse {
        ApiResponse::err(ApiError::new(
            TRANSPORT_ERROR,
            format!("{} against {}: {}", context, self.addr, detail),
        ))
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("account", &self.account)
            .field("apis", &self.apis.len())
            .finish()
    }
}

impl Backend for Client {
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
        match self.retry.clone() {
            Some(policy) => self.invoke_with_retry(call, &policy),
            None => self.invoke_once(call),
        }
    }

    fn reset(&mut self) {
        // The trait signature is infallible; a failed remote reset
        // surfaces on the next invoke as stale state or a transport error.
        let _ = self.try_reset();
    }

    fn api_names(&self) -> Vec<String> {
        self.apis.clone()
    }

    fn supports(&self, api: &str) -> bool {
        // The handshake list is sorted server-side.
        self.apis.binary_search_by(|a| a.as_str().cmp(api)).is_ok()
    }
}
