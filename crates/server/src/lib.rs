#![deny(missing_docs)]

//! # lce-server — the HTTP serving layer
//!
//! Turns any [`lce_emulator::Backend`] into a LocalStack-style local cloud
//! endpoint: a concurrent HTTP/1.1 server on `std::net`, a JSON wire
//! protocol mapping `POST /<account>/<Api>` to [`lce_emulator::ApiCall`],
//! and a blocking [`Client`] that itself implements `Backend`, so remote
//! endpoints compose with the DevOps runner, differential alignment and
//! the gym unchanged.
//!
//! The paper's premise is that learned emulators replace LocalStack/Moto
//! as the *endpoint developer tools point their SDKs at*; this crate is
//! the subsystem that puts a learned (or golden, or Moto-like) emulator
//! on a socket. Design:
//!
//! * [`http`] — a minimal, robust HTTP/1.1 parser and writer: incremental
//!   parsing over `bytes::BytesMut`, `Content-Length` bodies, keep-alive
//!   and pipelining, size limits, 4xx on malformed input, never panics.
//! * [`wire`] — the JSON protocol plus control endpoints
//!   (`POST /<account>/_reset`, `GET /_health`, `GET /_apis`).
//! * [`router`] — multi-account sharding: one backend instance per
//!   account behind its own lock, so accounts never contend.
//! * [`serve`](mod@serve) — an accept loop feeding the event-driven
//!   shard core (`lce-net`): each shard thread runs a readiness poller
//!   (raw epoll on Linux) over its own set of nonblocking connections,
//!   accounts pin to the shard that first served them, and graceful
//!   shutdown drains in-flight keep-alive work. Deterministic wire-fault
//!   injection (accept/read/write points driven by an
//!   `lce_faults::FaultPlan` via [`ServerConfig::faults`]) fires at the
//!   same decision sequence as the original blocking core, so recorded
//!   chaos schedules stay valid.
//! * [`client`] — the blocking remote `Backend`, with optional seeded
//!   retry/backoff ([`Client::with_retry`]).
//! * [`obs`] — optional observability: with an `lce_obs::ObsHub` attached
//!   via [`ServerConfig::with_observability`], backends are wrapped in
//!   `ObservedBackend`, the request lifecycle is timed, wire faults are
//!   tallied, and `GET /_metrics` (global) plus
//!   `GET /<account>/_metrics` (per account, `/deterministic` variants
//!   for the schedule-exact subset) serve Prometheus text.
//!
//! ```no_run
//! use lce_server::{serve, Client, ServerConfig};
//! use lce_emulator::{ApiCall, Backend, Emulator};
//!
//! # fn catalog() -> lce_spec::Catalog { lce_spec::Catalog::new() }
//! let catalog = catalog();
//! let handle = serve(ServerConfig::default(), move |_account| {
//!     Box::new(Emulator::new(catalog.clone())) as Box<dyn Backend + Send + Sync>
//! })
//! .unwrap();
//!
//! let mut remote = Client::connect(handle.addr(), "dev-account").unwrap();
//! let resp = remote.invoke(&ApiCall::new("CreateVpc").arg_str("CidrBlock", "10.0.0.0/16"));
//! println!("{:?}", resp);
//! handle.shutdown();
//! ```

pub mod client;
pub mod http;
pub(crate) mod net;
pub mod obs;
pub mod router;
pub mod serve;
pub mod wire;

pub use client::{Client, TRANSPORT_ERROR};
pub use http::{HttpLimits, Request, Response};
pub use obs::ServeMetrics;
pub use router::{BackendFactory, InvokeListener, Router, PROBE_ACCOUNT};
pub use serve::{serve, ServerConfig, ServerHandle};
pub use wire::{is_idempotent, request_api, route_class};
