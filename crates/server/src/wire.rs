//! The JSON wire protocol: URL + body ↔ [`ApiCall`] / [`ApiResponse`].
//!
//! Routes:
//!
//! * `POST /<account>/<Api>` — invoke an API. The body is a JSON object of
//!   call arguments; the response body is the backend's [`ApiResponse`]
//!   serialized with serde (byte-identical to in-process serialization,
//!   which is what lets remote runs be diffed against local ones).
//! * `POST /<account>/_reset` — drop the account's resources.
//! * `GET /<account>/_store` — a snapshot of the account's resource store
//!   (serde-encoded), for convergence checks; 404 if the account was never
//!   seen, 501 if the served backend exposes no store.
//! * `GET /_health` — liveness plus account count.
//! * `GET /_apis` — the sorted API list, for coverage accounting.
//!
//! Argument values accept two encodings per field: the exact serde form of
//! [`lce_emulator::Value`] (e.g. `{"Str": "10.0.0.0/16"}`, produced by the
//! Rust [`crate::Client`] for loss-free round-trips) and a lenient plain
//! JSON form (`"10.0.0.0/16"`, `true`, `7`, `null`, arrays) for humans
//! with `curl`. Plain strings become [`Value::Str`]; the emulator's
//! argument coercion handles the rest, exactly as it does for the CLI.
//!
//! API-level failures (unknown API, missing parameter, assert failures…)
//! are **HTTP 200** with the error inside the `ApiResponse` — they are
//! emulated cloud behaviour, not protocol errors. HTTP 4xx/5xx is reserved
//! for malformed requests: bad paths, bad JSON, bad accounts.

use crate::http::{Request, Response};
use crate::router::Router;
use lce_emulator::{ApiCall, Value};
use lce_obs::hub::HTTP_REQUESTS_HELP;
use lce_obs::{Class, ObsHub, RenderMode, HTTP_REQUESTS};
use std::collections::BTreeMap;

/// Dispatch one parsed request against the router, with no observability.
/// Exactly [`handle_observed`] with no hub — kept as the uninstrumented
/// entry point the passthrough tests pin byte-for-byte.
pub fn handle(req: &Request, router: &Router) -> Response {
    handle_observed(req, router, None)
}

/// Dispatch one parsed request against the router. With a hub, the
/// metrics routes are served and every dispatched request bumps
/// `lce_http_requests_total{route,status}` — *after* the response is
/// computed, so a scrape never includes itself. With `None` the metrics
/// routes fall through to the ordinary 404, keeping the disabled-path
/// bytes identical to an uninstrumented server.
pub fn handle_observed(req: &Request, router: &Router, obs: Option<&ObsHub>) -> Response {
    let resp = match obs.and_then(|hub| metrics_route(req, hub)) {
        Some(resp) => resp,
        None => handle_inner(req, router),
    };
    if let Some(hub) = obs {
        hub.global()
            .counter(
                HTTP_REQUESTS,
                HTTP_REQUESTS_HELP,
                Class::Schedule,
                &[
                    ("route", route_class(req)),
                    ("status", &resp.status.to_string()),
                ],
            )
            .inc();
    }
    resp
}

/// Serve the metrics routes, or `None` if the request is not one:
///
/// * `GET /_metrics` — the global registry, full render.
/// * `GET /_metrics/deterministic` — schedule-class families only.
/// * `GET /<account>/_metrics[/deterministic]` — one account's registry;
///   404 for an account with no metrics (never materializes one).
fn metrics_route(req: &Request, hub: &ObsHub) -> Option<Response> {
    if req.method != "GET" {
        return None;
    }
    let segments: Vec<&str> = req.path.trim_start_matches('/').split('/').collect();
    let (account, mode) = match segments.as_slice() {
        ["_metrics"] => (None, RenderMode::Full),
        ["_metrics", "deterministic"] => (None, RenderMode::Deterministic),
        [account, "_metrics"] => (Some(*account), RenderMode::Full),
        [account, "_metrics", "deterministic"] => (Some(*account), RenderMode::Deterministic),
        _ => return None,
    };
    Some(match account {
        None => Response::text(hub.render_global(mode)),
        Some(account) => {
            if !Router::valid_account_id(account) {
                return Some(Response::error(400, "invalid account id"));
            }
            match hub.render_account(account, mode) {
                Some(text) => Response::text(text),
                None => Response::error(404, "no metrics for account"),
            }
        }
    })
}

/// Coarse route class for `lce_http_requests_total`: bounded label
/// cardinality no matter what paths clients throw at the server.
pub fn route_class(req: &Request) -> &'static str {
    let mut segments = req.path.trim_start_matches('/').split('/');
    match (req.method.as_str(), segments.next(), segments.next()) {
        ("GET", Some("_health"), None) => "health",
        ("GET", Some("_apis"), None) => "apis",
        ("GET", Some("_metrics"), _) => "metrics",
        ("GET", Some(_), Some("_metrics")) => "metrics",
        ("GET", Some(_), Some("_store")) => "store",
        ("POST", Some(_), Some("_reset")) => "reset",
        ("POST", Some(_), Some(op)) if !op.is_empty() && !op.starts_with('_') => "api",
        _ => "other",
    }
}

fn handle_inner(req: &Request, router: &Router) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/_health") => Response::json(format!(
            "{{\"status\":\"ok\",\"backend\":{},\"accounts\":{}}}",
            serde_json::Value::String(router.backend_name().to_string()),
            router.account_count()
        )),
        ("GET", "/_apis") => {
            let apis =
                serde_json::to_string(router.api_names()).unwrap_or_else(|_| "[]".to_string());
            Response::json(format!(
                "{{\"count\":{},\"apis\":{}}}",
                router.api_names().len(),
                apis
            ))
        }
        ("POST", path) => handle_post(path, &req.body, router),
        ("GET", path) => handle_get(path, router),
        _ => Response::error(405, "method not allowed"),
    }
}

/// `true` if replaying the request cannot change server state: reads,
/// control probes, `_reset` (resetting twice is still reset) and the
/// `Describe*`/`List*`/`Get*` API families. Used to scope write-point
/// fault injection to requests whose lost response is safe to retry.
pub fn is_idempotent(req: &Request) -> bool {
    if req.method != "POST" {
        return true;
    }
    let mut segments = req.path.trim_start_matches('/').split('/');
    let (Some(_account), Some(op)) = (segments.next(), segments.next()) else {
        // Malformed paths get a 404 without touching any backend.
        return true;
    };
    op == "_reset" || op.starts_with("Describe") || op.starts_with("List") || op.starts_with("Get")
}

/// The API operation named by a `POST /<account>/<Api>` invoke path, or
/// `None` for control routes (`_reset`, `_store`, …), non-POST requests
/// and malformed paths. This is what lets proof-carrying layers widen
/// [`is_idempotent`]'s name heuristic with per-API static retry-safety.
pub fn request_api(req: &Request) -> Option<&str> {
    if req.method != "POST" {
        return None;
    }
    let mut segments = req.path.trim_start_matches('/').split('/');
    let (Some(_account), Some(op), None) = (segments.next(), segments.next(), segments.next())
    else {
        return None;
    };
    (!op.is_empty() && !op.starts_with('_')).then_some(op)
}

fn handle_get(path: &str, router: &Router) -> Response {
    let mut segments = path.trim_start_matches('/').split('/');
    if let (Some(account), Some("_store"), None) =
        (segments.next(), segments.next(), segments.next())
    {
        if !Router::valid_account_id(account) {
            return Response::error(400, "invalid account id");
        }
        if !router.accounts().iter().any(|a| a == account) {
            return Response::error(404, "unknown account");
        }
        return match router.snapshot(account) {
            None => Response::error(501, "served backend exposes no resource store"),
            Some(store) => match serde_json::to_vec(&store) {
                Ok(bytes) => Response::json(bytes),
                Err(e) => Response::error(500, &format!("store serialization failed: {}", e)),
            },
        };
    }
    Response::error(404, "unknown path")
}

fn handle_post(path: &str, body: &[u8], router: &Router) -> Response {
    let mut segments = path.trim_start_matches('/').split('/');
    let (Some(account), Some(op), None) = (segments.next(), segments.next(), segments.next())
    else {
        return Response::error(404, "expected POST /<account>/<Api>");
    };
    if !Router::valid_account_id(account) {
        return Response::error(400, "invalid account id");
    }
    if op == "_reset" {
        let existed = router.reset(account);
        return Response::json(format!(
            "{{\"reset\":true,\"account\":{},\"existed\":{}}}",
            serde_json::Value::String(account.to_string()),
            existed
        ));
    }
    if op.is_empty() || op.starts_with('_') {
        return Response::error(404, "unknown control endpoint");
    }
    let args = match decode_args(body) {
        Ok(a) => a,
        Err(msg) => return Response::error(400, &msg),
    };
    let call = ApiCall {
        api: op.to_string(),
        args,
    };
    let resp = router.invoke(account, &call);
    match serde_json::to_vec(&resp) {
        Ok(bytes) => Response::json(bytes),
        Err(e) => Response::error(500, &format!("response serialization failed: {}", e)),
    }
}

/// Decode the request body into call arguments. An empty body means an
/// argument-less call.
fn decode_args(body: &[u8]) -> Result<BTreeMap<String, Value>, String> {
    if body.iter().all(|b| b.is_ascii_whitespace()) {
        return Ok(BTreeMap::new());
    }
    let json: serde_json::Value =
        serde_json::from_slice(body).map_err(|e| format!("body is not valid JSON: {}", e))?;
    let serde_json::Value::Object(map) = json else {
        return Err("body must be a JSON object of call arguments".to_string());
    };
    let mut args = BTreeMap::new();
    for (name, value) in map {
        let decoded =
            decode_value(value).map_err(|e| format!("argument `{}` is malformed: {}", name, e))?;
        args.insert(name, decoded);
    }
    Ok(args)
}

/// Decode one argument value: exact serde [`Value`] objects pass through
/// losslessly; plain JSON scalars/arrays map to the obvious variants.
fn decode_value(json: serde_json::Value) -> Result<Value, String> {
    match json {
        serde_json::Value::Null => Ok(Value::Null),
        serde_json::Value::Bool(b) => Ok(Value::Bool(b)),
        serde_json::Value::Number(n) => n
            .as_i64()
            .map(Value::Int)
            .ok_or_else(|| "only integer numbers are supported".to_string()),
        serde_json::Value::String(s) => Ok(Value::Str(s)),
        serde_json::Value::Array(items) => items
            .into_iter()
            .map(decode_value)
            .collect::<Result<Vec<_>, _>>()
            .map(Value::List),
        obj @ serde_json::Value::Object(_) => serde_json::from_value::<Value>(obj)
            .map_err(|_| "objects must be serde-encoded emulator values".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_emulator::{ApiResponse, Backend};

    /// Echoes its arguments back; `Fail` returns an API error.
    struct Echo;

    impl Backend for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
            if call.api == "Fail" {
                return ApiResponse::err(lce_emulator::ApiError::new("Boom", "requested"));
            }
            ApiResponse::ok(call.args.clone())
        }
        fn reset(&mut self) {}
        fn api_names(&self) -> Vec<String> {
            vec!["Echo".into(), "Fail".into()]
        }
    }

    fn router() -> Router {
        Router::new(Box::new(|_account| Box::new(Echo)))
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            http11: true,
            headers: vec![],
            body: body.to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        post(path, b"")
    }

    #[test]
    fn health_and_apis() {
        let r = router();
        let mut req = get("/_health");
        req.method = "GET".into();
        let resp = handle(&req, &r);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "{}", text);

        let mut req = get("/_apis");
        req.method = "GET".into();
        let resp = handle(&req, &r);
        let json: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(json["count"], 2);
        assert_eq!(json["apis"][0], "Echo");
    }

    #[test]
    fn invoke_round_trips_exact_values() {
        let r = router();
        let call = ApiCall::new("Echo")
            .arg_str("S", "hello")
            .arg_int("I", 7)
            .arg("R", Value::reference("vpc-000001"));
        let body = serde_json::to_vec(&call.args).unwrap();
        let resp = handle(&post("/acct/Echo", &body), &r);
        assert_eq!(resp.status, 200);
        let parsed: ApiResponse = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(parsed.fields, call.args, "tagged values survive unchanged");
    }

    #[test]
    fn invoke_accepts_plain_json() {
        let r = router();
        let resp = handle(
            &post(
                "/acct/Echo",
                br#"{"S":"x","B":true,"I":3,"L":[1,2],"N":null}"#,
            ),
            &r,
        );
        let parsed: ApiResponse = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(parsed.field("S"), Some(&Value::str("x")));
        assert_eq!(parsed.field("B"), Some(&Value::Bool(true)));
        assert_eq!(parsed.field("I"), Some(&Value::Int(3)));
        assert_eq!(
            parsed.field("L"),
            Some(&Value::List(vec![Value::Int(1), Value::Int(2)]))
        );
        assert_eq!(parsed.field("N"), Some(&Value::Null));
    }

    #[test]
    fn api_errors_are_http_200() {
        let r = router();
        let resp = handle(&post("/acct/Fail", b""), &r);
        assert_eq!(resp.status, 200);
        let parsed: ApiResponse = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(parsed.error_code(), Some("Boom"));
    }

    #[test]
    fn protocol_errors_are_4xx() {
        let r = router();
        assert_eq!(handle(&post("/acct", b""), &r).status, 404);
        assert_eq!(handle(&post("/acct/Api/extra", b""), &r).status, 404);
        assert_eq!(handle(&post("/_bad/Api", b""), &r).status, 400);
        assert_eq!(handle(&post("/acct/_rejig", b""), &r).status, 404);
        assert_eq!(handle(&post("/acct/Echo", b"not json"), &r).status, 400);
        assert_eq!(handle(&post("/acct/Echo", b"[1,2]"), &r).status, 400);
        assert_eq!(handle(&post("/acct/Echo", br#"{"X":1.5}"#), &r).status, 400);
        assert_eq!(
            handle(&post("/acct/Echo", br#"{"X":{"Weird":1}}"#), &r).status,
            400
        );
        let mut req = get("/nope");
        req.method = "GET".into();
        assert_eq!(handle(&req, &r).status, 404);
        let mut req = get("/_health");
        req.method = "DELETE".into();
        assert_eq!(handle(&req, &r).status, 405);
    }

    #[test]
    fn reset_endpoint() {
        let r = router();
        let resp = handle(&post("/acct/_reset", b""), &r);
        assert_eq!(resp.status, 200);
        let json: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(json["reset"], true);
        assert_eq!(json["existed"], false);
        let resp = handle(&post("/acct/_reset", b""), &r);
        let json: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(json["existed"], true);
    }

    #[test]
    fn idempotence_classification() {
        let mut req = post("/acct/CreateVpc", b"");
        assert!(!is_idempotent(&req));
        req.path = "/acct/DeleteVpc".into();
        assert!(!is_idempotent(&req));
        req.path = "/acct/ModifySubnetAttribute".into();
        assert!(!is_idempotent(&req));
        for safe in [
            "/acct/DescribeSubnet",
            "/acct/ListBuckets",
            "/acct/GetObject",
            "/acct/_reset",
        ] {
            req.path = safe.into();
            assert!(is_idempotent(&req), "{}", safe);
        }
        req.path = "/acct/CreateVpc".into();
        req.method = "GET".into();
        assert!(is_idempotent(&req), "non-POST is never a mutation");
    }

    #[test]
    fn request_api_extracts_invoke_ops_only() {
        assert_eq!(
            request_api(&post("/acct/AttachVolume", b"")),
            Some("AttachVolume")
        );
        assert_eq!(request_api(&post("/acct/_reset", b"")), None);
        assert_eq!(request_api(&post("/acct", b"")), None);
        assert_eq!(request_api(&post("/acct/Api/extra", b"")), None);
        let mut req = post("/acct/DescribeVpc", b"");
        req.method = "GET".into();
        assert_eq!(request_api(&req), None, "non-POST is never an invoke");
    }

    #[test]
    fn store_endpoint_errors() {
        let r = router();
        let mut req = get("/acct/_store");
        req.method = "GET".into();
        assert_eq!(handle(&req, &r).status, 404, "unknown account");
        // Materialize the account; Echo has no store → 501.
        handle(&post("/acct/Echo", b"{}"), &r);
        assert_eq!(handle(&req, &r).status, 501, "no store to expose");
        let mut bad = get("/_probe/_store");
        bad.method = "GET".into();
        assert_eq!(handle(&bad, &r).status, 400, "reserved account id");
    }

    #[test]
    fn store_endpoint_round_trips_a_real_store() {
        use lce_emulator::{Emulator, ResourceStore};
        use lce_spec::parse_catalog;
        let catalog = lce_spec::Catalog::from_specs(
            parse_catalog(
                r#"sm Vpc { service "compute";
                    states { cidr: str; }
                    transition CreateVpc(CidrBlock: str) kind create {
                        write(cidr, arg(CidrBlock)); } }"#,
            )
            .unwrap(),
        );
        let r = Router::new(Box::new(move |_account| {
            Box::new(Emulator::new(catalog.clone()))
        }));
        handle(
            &post("/acct/CreateVpc", br#"{"CidrBlock":"10.0.0.0/16"}"#),
            &r,
        );
        let mut req = get("/acct/_store");
        req.method = "GET".into();
        let resp = handle(&req, &r);
        assert_eq!(resp.status, 200);
        let store: ResourceStore = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store, r.snapshot("acct").unwrap(), "wire == in-process");
    }

    #[test]
    fn metrics_routes_require_observability() {
        let r = router();
        let mut req = get("/_metrics");
        req.method = "GET".into();
        // Disabled: byte-identical to the ordinary unknown-path 404.
        let mut plain = get("/definitely/not/a/route");
        plain.method = "GET".into();
        assert_eq!(handle(&req, &r), handle(&plain, &r));

        let hub = std::sync::Arc::new(lce_obs::ObsHub::new());
        let resp = handle_observed(&req, &r, Some(&hub));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");

        // The scrape never counts itself: the first scrape shows no
        // http_requests samples, the second shows exactly the first.
        let text = String::from_utf8(resp.body).unwrap();
        assert!(!text.contains("lce_http_requests_total{"), "{}", text);
        let resp2 = handle_observed(&req, &r, Some(&hub));
        let text2 = String::from_utf8(resp2.body).unwrap();
        assert!(text2.contains("lce_http_requests_total{route=\"metrics\",status=\"200\"} 1"));

        // Per-account: 404 until the account has metrics, then exactly
        // the hub's render.
        let mut acct = get("/acct/_metrics");
        acct.method = "GET".into();
        assert_eq!(handle_observed(&acct, &r, Some(&hub)).status, 404);
        hub.account("acct");
        let resp = handle_observed(&acct, &r, Some(&hub));
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            hub.render_account("acct", RenderMode::Full)
                .unwrap()
                .into_bytes()
        );
        let mut det = get("/acct/_metrics/deterministic");
        det.method = "GET".into();
        assert_eq!(handle_observed(&det, &r, Some(&hub)).status, 200);
        let mut bad = get("/_probe/_metrics");
        bad.method = "GET".into();
        assert_eq!(handle_observed(&bad, &r, Some(&hub)).status, 400);
    }

    #[test]
    fn route_classes_are_bounded() {
        let route = |method: &str, path: &str| {
            let mut req = post(path, b"");
            req.method = method.into();
            route_class(&req)
        };
        assert_eq!(route("GET", "/_health"), "health");
        assert_eq!(route("GET", "/_apis"), "apis");
        assert_eq!(route("GET", "/_metrics"), "metrics");
        assert_eq!(route("GET", "/_metrics/deterministic"), "metrics");
        assert_eq!(route("GET", "/acct/_metrics"), "metrics");
        assert_eq!(route("GET", "/acct/_store"), "store");
        assert_eq!(route("POST", "/acct/_reset"), "reset");
        assert_eq!(route("POST", "/acct/CreateVpc"), "api");
        assert_eq!(route("POST", "/acct/_rejig"), "other");
        assert_eq!(route("DELETE", "/_health"), "other");
        assert_eq!(route("GET", "/random/garbage/path"), "other");
    }

    #[test]
    fn whitespace_body_is_empty_args() {
        let r = router();
        let resp = handle(&post("/acct/Echo", b"  \r\n "), &r);
        let parsed: ApiResponse = serde_json::from_slice(&resp.body).unwrap();
        assert!(parsed.is_ok());
        assert!(parsed.fields.is_empty());
    }
}
