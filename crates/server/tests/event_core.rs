//! Conformance tests for the readiness-based event core, raw over the
//! wire and free of any serde round-trip: adversarial partial reads,
//! kernel-forced short writes, cross-shard pinning migration, and the
//! graceful shutdown drain.
//!
//! The oracle throughout is `POST /<account>/_reset`, whose hand-rendered
//! response embeds the account name — so a response stream can be checked
//! for completeness *and order* against the request stream without
//! parsing any serde-encoded body.

use lce_cloud::nimbus_provider;
use lce_emulator::Backend;
use lce_obs::{ObsHub, CONNECTIONS};
use lce_server::{serve, ServerConfig, ServerHandle};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_server(config: ServerConfig) -> ServerHandle {
    let catalog = nimbus_provider().catalog;
    serve(config, move |_account| {
        Box::new(lce_emulator::Emulator::new(catalog.clone()).named("served-golden"))
            as Box<dyn Backend + Send + Sync>
    })
    .expect("bind ephemeral port")
}

fn reset_request(account: &str) -> Vec<u8> {
    format!(
        "POST /{}/_reset HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        account
    )
    .into_bytes()
}

/// Read exactly one `Content-Length`-framed response off the stream.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<(u16, String)> {
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-response",
                ))
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("content-length header");
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-body",
                ))
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    buf.drain(..body_start + content_length);
    Ok((status, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The readiness loop never drops or reorders pipelined requests,
    /// however adversarially the bytes arrive: the client writes the
    /// whole pipeline in arbitrary chunk splits with pauses between them
    /// (forcing partial reads mid-header, mid-pipeline, everywhere), the
    /// accounts cycle (forcing cross-shard pinning migrations mid-batch),
    /// and a tiny kernel send buffer forces the response path through
    /// short writes. Every request must come back 200, in request order.
    #[test]
    fn pipelined_requests_never_drop_or_reorder(
        accounts in proptest::collection::vec(0usize..5, 1..24),
        cuts in proptest::collection::vec(1usize..2048, 0..8),
        threads in 1usize..5,
        shrink_sndbuf in any::<bool>(),
    ) {
        let handle = start_server(ServerConfig {
            threads,
            read_timeout: Duration::from_secs(5),
            sock_send_buf: shrink_sndbuf.then_some(1024),
            ..ServerConfig::default()
        });

        let mut wire = Vec::new();
        for &a in &accounts {
            wire.extend_from_slice(&reset_request(&format!("acct-{}", a)));
        }

        // Turn the cut points into ascending split offsets.
        let mut splits: Vec<usize> = cuts.iter().map(|&c| c % wire.len().max(1)).collect();
        splits.sort_unstable();
        splits.dedup();

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut last = 0;
        for &split in &splits {
            if split > last {
                stream.write_all(&wire[last..split]).unwrap();
                std::thread::sleep(Duration::from_millis(2));
                last = split;
            }
        }
        stream.write_all(&wire[last..]).unwrap();

        let mut buf = Vec::new();
        for (i, &a) in accounts.iter().enumerate() {
            let (status, body) = read_response(&mut stream, &mut buf)
                .unwrap_or_else(|e| panic!("response {} of {} never arrived: {}", i, accounts.len(), e));
            prop_assert_eq!(status, 200);
            let want = format!("\"account\":\"acct-{}\"", a);
            prop_assert!(
                body.contains(&want),
                "response {} out of order: wanted {} in {:?}", i, want, body
            );
        }
        handle.shutdown();
    }
}

/// A request already buffered on a keep-alive connection when shutdown
/// begins is served before the connection closes: graceful drain parity
/// with the blocking pool, which finished each worker's in-flight
/// exchange. The drain must also count the connection in the `drained`
/// series and unblock `shutdown()` promptly.
#[test]
fn shutdown_drains_buffered_keep_alive_requests() {
    let hub = Arc::new(ObsHub::new());
    let handle = start_server(
        ServerConfig {
            threads: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        }
        .with_observability(Arc::clone(&hub)),
    );

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = Vec::new();

    // Establish the keep-alive session with a served exchange.
    stream.write_all(&reset_request("acct-drain")).unwrap();
    let (status, _) = read_response(&mut stream, &mut buf).unwrap();
    assert_eq!(status, 200);

    // Queue one more full request, then shut down without reading it.
    stream.write_all(&reset_request("acct-drain")).unwrap();
    let stopper = std::thread::spawn(move || handle.shutdown());

    // Blocking-pool parity: the in-flight exchange finishes — the
    // buffered request is answered (with `Connection: close`) rather than
    // reset, even though shutdown won the race to the flag.
    let (status, body) =
        read_response(&mut stream, &mut buf).expect("buffered request served during drain");
    assert_eq!(status, 200);
    assert!(body.contains("\"account\":\"acct-drain\""));
    // ... and then the drain closes the connection.
    let mut rest = Vec::new();
    assert_eq!(
        stream.read_to_end(&mut rest).unwrap_or(0),
        0,
        "drain closed the connection cleanly"
    );
    stopper.join().expect("shutdown returned");

    let drained = hub
        .global()
        .counter_value(CONNECTIONS, &[("event", "drained")])
        .unwrap_or(0);
    assert!(drained >= 1, "drain must count the kept-alive connection");
}

/// A connection that arrives after shutdown began is dropped (counted as
/// drained) rather than served or leaked — and shutdown still returns.
#[test]
fn connections_arriving_during_shutdown_are_dropped_not_leaked() {
    let handle = start_server(ServerConfig {
        threads: 1,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Race a burst of fresh connections against shutdown. Whichever side
    // of the accept-flag flip each lands on, every connection must end in
    // a definite close (response or EOF) and shutdown must return.
    let racer = std::thread::spawn(move || {
        for _ in 0..8 {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = s.write_all(&reset_request("acct-late"));
                let mut sink = Vec::new();
                let _ = s.read_to_end(&mut sink);
            }
        }
    });
    std::thread::sleep(Duration::from_millis(5));
    handle.shutdown();
    racer.join().expect("late connections all resolved");
}

/// One account stays pinned to one shard while other traffic churns:
/// interleaved requests from many concurrent connections to the same
/// account are all served, strictly serialized per connection.
#[test]
fn concurrent_connections_to_one_account_all_complete() {
    let handle = start_server(ServerConfig {
        threads: 4,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let workers: Vec<_> = (0..8)
        .map(|w| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut buf = Vec::new();
                for i in 0..10 {
                    // Even workers hammer the shared account (pinned to
                    // one shard); odd workers churn their own.
                    let account = if w % 2 == 0 {
                        "acct-shared".to_string()
                    } else {
                        format!("acct-own-{}", w)
                    };
                    stream.write_all(&reset_request(&account)).unwrap();
                    let (status, body) = read_response(&mut stream, &mut buf)
                        .unwrap_or_else(|e| panic!("worker {} op {}: {}", w, i, e));
                    assert_eq!(status, 200);
                    assert!(body.contains(&format!("\"account\":\"{}\"", account)));
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker completed");
    }
    handle.shutdown();
}
