//! Fault-injection integration tests against a real served emulator:
//! mid-response resets and truncation (the no-double-apply regression),
//! retry/backoff behaviour, and `_reset` racing in-flight faulted traffic.

use lce_cloud::nimbus_provider;
use lce_emulator::{ApiCall, Backend, Emulator};
use lce_faults::{
    counting_sleep, BackendFault, FaultPlan, FaultyBackend, RetryPolicy, WireFaults,
    WriteFaultScope,
};
use lce_obs::{parse_text, ObsHub};
use lce_server::{serve, Client, ServerConfig, ServerHandle, TRANSPORT_ERROR};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A golden server with `wire` faults installed and (optionally) backend
/// faults injected per account through `FaultyBackend`.
fn start_faulted_server(threads: usize, plan: FaultPlan) -> ServerHandle {
    let plan = Arc::new(plan);
    let catalog = nimbus_provider().catalog;
    let backend_plan = Arc::clone(&plan);
    serve(
        ServerConfig {
            threads,
            ..ServerConfig::default()
        }
        .with_faults(Arc::clone(&plan)),
        move |account| {
            Box::new(FaultyBackend::new(
                Emulator::new(catalog.clone()).named("served-golden"),
                Arc::clone(&backend_plan),
                account,
            )) as Box<dyn Backend + Send + Sync>
        },
    )
    .expect("bind ephemeral port")
}

fn create_vpc() -> ApiCall {
    ApiCall::new("CreateVpc")
        .arg_str("CidrBlock", "10.0.0.0/16")
        .arg_str("Region", "us-east")
}

fn vpc_count(handle: &ServerHandle, account: &str) -> usize {
    handle
        .router()
        .snapshot(account)
        .map(|s| s.len())
        .unwrap_or(0)
}

/// Satellite regression: a mid-response connection *truncation* of a
/// mutating request surfaces as `TransportError` and the client does NOT
/// silently retry — the mutation applies exactly once per explicit send.
/// This pins the idempotence claim in `client.rs`: once response bytes
/// have been seen, failures are final.
#[test]
fn truncated_mutating_response_is_transport_error_without_double_apply() {
    let mut plan = FaultPlan::none(3);
    plan.wire = WireFaults {
        accept_reset_per_mille: 0,
        read_reset_per_mille: 0,
        write_truncate_per_mille: 1000,
        write_reset_per_mille: 0,
        write_scope: WriteFaultScope::MutatingOnly,
    };
    let handle = start_faulted_server(2, plan);
    // The handshake (GET /_apis) is idempotent and therefore unfaulted.
    let mut client = Client::connect(handle.addr(), "trunc").unwrap();

    // First send: the server applies the mutation, then truncates the
    // response mid-write. Response bytes were seen, so no silent retry.
    let resp = client.invoke(&create_vpc());
    assert_eq!(resp.error_code(), Some(TRANSPORT_ERROR), "{:?}", resp);
    assert_eq!(
        vpc_count(&handle, "trunc"),
        1,
        "mutation must apply exactly once — a silent retry would make 2"
    );

    // A second *explicit* send is a new mutation: exactly one more.
    let resp = client.invoke(&create_vpc());
    assert_eq!(resp.error_code(), Some(TRANSPORT_ERROR), "{:?}", resp);
    assert_eq!(vpc_count(&handle, "trunc"), 2);

    // Reads still work (idempotent scope is unfaulted), proving the
    // truncation really did land only on the mutating path.
    let resp = client.invoke(&ApiCall::new("DescribeVpc").arg_str("VpcId", "vpc-000001"));
    assert!(resp.is_ok(), "{:?}", resp);
    handle.shutdown();
}

/// A write-point *reset* (zero response bytes) on a fresh connection is
/// also final: the client only ever silently retries on a *reused*
/// keep-alive connection, and a transport-retry policy is what would make
/// it re-send — which is exactly why transport retries must only be
/// combined with idempotent-scope write faults.
#[test]
fn write_reset_on_fresh_connection_is_final() {
    let mut plan = FaultPlan::none(9);
    plan.wire.write_reset_per_mille = 1000;
    plan.wire.write_scope = WriteFaultScope::MutatingOnly;
    let handle = start_faulted_server(2, plan);
    let mut client = Client::connect(handle.addr(), "reset").unwrap();

    // First invoke rides the handshake's keep-alive connection; the
    // server dispatches, then drops without a byte. The *reused*
    // connection heuristic fires and retries once on a fresh connection
    // (this is the documented boundary of the heuristic: an idle-close is
    // indistinguishable from a post-dispatch reset). That retry is also
    // reset — and being on a fresh connection, it is final.
    let resp = client.invoke(&create_vpc());
    assert_eq!(resp.error_code(), Some(TRANSPORT_ERROR), "{:?}", resp);
    let after_first = vpc_count(&handle, "reset");
    assert_eq!(
        after_first, 2,
        "reused-connection heuristic re-sends once: dispatch + retry"
    );

    // Subsequent invokes start from a cleared stream (fresh connection):
    // no silent retry, exactly one application per send.
    let resp = client.invoke(&create_vpc());
    assert_eq!(resp.error_code(), Some(TRANSPORT_ERROR), "{:?}", resp);
    assert_eq!(
        vpc_count(&handle, "reset"),
        after_first + 1,
        "fresh-connection sends apply exactly once"
    );
    handle.shutdown();
}

/// Injected backend faults (transient errors/throttles) are retried under
/// the policy's seeded backoff without wall-sleeping, and every logical
/// call eventually lands exactly once.
#[test]
fn retry_policy_rides_out_injected_backend_faults() {
    let mut plan = FaultPlan::none(42);
    plan.backend.error_per_mille = 300;
    plan.backend.throttle_per_mille = 200;
    // Sanity: the schedule really contains faults for this account.
    let scheduled: usize = (0..200)
        .filter(|seq| plan.decide_invoke("retry", "CreateVpc", *seq).is_some())
        .count();
    assert!(scheduled > 10, "seed 42 schedules {} faults", scheduled);

    let handle = start_faulted_server(2, plan);
    let (sleeper, slept) = counting_sleep();
    let policy = RetryPolicy::new(42)
        .with_max_attempts(30)
        .with_sleep(sleeper);
    let mut client = Client::connect(handle.addr(), "retry")
        .unwrap()
        .with_retry(policy);

    let n = 20;
    for i in 0..n {
        let resp = client.invoke(&create_vpc());
        assert!(resp.is_ok(), "call {} failed after retries: {:?}", i, resp);
    }
    assert_eq!(
        vpc_count(&handle, "retry"),
        n,
        "each call landed exactly once"
    );
    let sleeps = slept.lock().unwrap();
    assert!(
        !sleeps.is_empty(),
        "with {} scheduled faults some retries must have backed off",
        scheduled
    );
    handle.shutdown();
}

/// Accept- and read-point resets always fire before dispatch, so a
/// transport-retrying client converges to exactly one application per
/// logical call even when connections are being torn down around it.
#[test]
fn pre_dispatch_resets_are_always_safe_to_retry() {
    let mut plan = FaultPlan::none(11);
    plan.wire.accept_reset_per_mille = 300;
    plan.wire.read_reset_per_mille = 200;
    let handle = start_faulted_server(4, plan);
    let policy = RetryPolicy::chaos(11).with_max_attempts(40);
    let mut client = Client::connect_with_retry(handle.addr(), "predispatch", policy).unwrap();

    let n = 20;
    for i in 0..n {
        let resp = client.invoke(&create_vpc());
        assert!(resp.is_ok(), "call {} failed after retries: {:?}", i, resp);
    }
    assert_eq!(
        vpc_count(&handle, "predispatch"),
        n,
        "pre-dispatch resets lost requests, never duplicated them"
    );
    handle.shutdown();
}

/// `GET /<account>/_store` round-trips the account's store through the
/// remote client, matching the in-process snapshot byte for byte.
#[test]
fn fetch_store_round_trips_the_snapshot() {
    let handle = start_faulted_server(2, FaultPlan::none(1));
    let mut client = Client::connect(handle.addr(), "stores").unwrap();
    for _ in 0..3 {
        assert!(client.invoke(&create_vpc()).is_ok());
    }
    let remote = client.fetch_store().expect("store fetch");
    let local = handle.router().snapshot("stores").expect("snapshot");
    assert_eq!(remote, local);
    assert_eq!(remote.len(), 3);
    // An account the server never saw is a clean error, not a panic.
    let mut ghost = Client::connect(handle.addr(), "ghost").unwrap();
    assert!(ghost.fetch_store().is_err());
    handle.shutdown();
}

/// Observability exactness over the wire: an observed server with a
/// listener-wired `FaultyBackend` is driven by a retrying client, then the
/// scraped `lce_faults_injected_total{kind}` counters are compared against
/// an independent replay of `FaultPlan::decide_invoke` — the schedule the
/// plan *must* have decided for the client's deterministic invoke
/// sequence. Scrape equals schedule, exactly.
#[test]
fn scraped_fault_counters_equal_the_decided_schedule() {
    let mut plan = FaultPlan::none(77);
    plan.backend.error_per_mille = 250;
    plan.backend.throttle_per_mille = 150;
    plan.backend.latency_per_mille = 200;
    plan.backend.max_latency_ms = 1;
    let plan = Arc::new(plan);

    let hub = Arc::new(ObsHub::new());
    let catalog = nimbus_provider().catalog;
    let backend_plan = Arc::clone(&plan);
    let listener_hub = Arc::clone(&hub);
    let handle = serve(
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        }
        .with_observability(Arc::clone(&hub)),
        move |account| {
            Box::new(
                FaultyBackend::new(
                    Emulator::new(catalog.clone()),
                    Arc::clone(&backend_plan),
                    account,
                )
                .with_fault_listener(listener_hub.fault_listener(account)),
            ) as Box<dyn Backend + Send + Sync>
        },
    )
    .expect("bind ephemeral port");

    let (sleeper, _) = counting_sleep();
    let policy = RetryPolicy::new(5)
        .with_max_attempts(50)
        .with_sleep(sleeper);
    let mut client = Client::connect(handle.addr(), "oracle")
        .unwrap()
        .with_retry(policy);
    let n = 30;
    for i in 0..n {
        let resp = client.invoke(&create_vpc());
        assert!(resp.is_ok(), "call {} failed after retries: {:?}", i, resp);
    }

    // Independent oracle: replay the decisions for the invoke sequence the
    // retrying client must have produced. Error/throttle faults fail the
    // attempt (the client re-sends, consuming the next seq); a latency
    // fault delays but succeeds, completing the logical call.
    let mut expected: BTreeMap<&str, u64> = BTreeMap::new();
    let mut seq = 0u64;
    for _ in 0..n {
        loop {
            let decision = plan.decide_invoke("oracle", "CreateVpc", seq);
            seq += 1;
            match decision {
                None => break,
                Some(fault) => {
                    *expected.entry(fault.kind()).or_insert(0) += 1;
                    if matches!(fault, BackendFault::Latency(_)) {
                        break;
                    }
                }
            }
        }
    }
    assert!(
        expected.values().sum::<u64>() > 0,
        "seed 77 must schedule at least one fault for the walk to mean anything"
    );

    let parsed = parse_text(&client.fetch_metrics(false).unwrap()).unwrap();
    for kind in ["transient-error", "throttle", "latency"] {
        assert_eq!(
            parsed.sum_where("lce_faults_injected_total", "kind", kind),
            expected.get(kind).copied().unwrap_or(0),
            "scraped {} count diverged from the decided schedule",
            kind
        );
    }
    // The observed wrapper also counted every server-side attempt: the
    // oracle walk knows exactly how many invokes that was.
    assert_eq!(
        parsed.get("lce_api_calls_total{api=\"CreateVpc\"}"),
        Some(seq),
        "every attempt (including faulted ones) is one observed call"
    );
    handle.shutdown();
}

/// Satellite: `_reset` racing in-flight faulted requests. Writer threads
/// hammer one account with create calls (under retries) while a resetter
/// fires `_reset` in between; per-account serialization means the final
/// drained store must be internally coherent — every containment parent
/// resolves — never a torn mix of pre- and post-reset state.
#[test]
fn reset_racing_faulted_writers_never_tears_the_store() {
    let mut plan = FaultPlan::standard(13);
    // Keep write faults idempotent-only (the default) so convergence of
    // the mutating traffic is well-defined.
    assert_eq!(plan.wire.write_scope, WriteFaultScope::IdempotentOnly);
    plan.backend.max_latency_ms = 1;
    let handle = start_faulted_server(4, plan);
    let addr = handle.addr();

    let mut workers = Vec::new();
    for w in 0..4 {
        workers.push(std::thread::spawn(move || {
            let policy = RetryPolicy::chaos(13 ^ w as u64).with_max_attempts(20);
            let mut client = Client::connect_with_retry(addr, "racy", policy).unwrap();
            for _ in 0..10 {
                // CreateVpc then a dependent CreateSubnet; the subnet call
                // may legitimately fail with NotFound if a reset landed in
                // between — the store must still be coherent.
                let vpc = client.invoke(&create_vpc());
                if let Some(lce_emulator::Value::Ref(vpc_id)) = vpc.field("VpcId") {
                    let _ = client.invoke(
                        &ApiCall::new("CreateSubnet")
                            .arg("VpcId", lce_emulator::Value::Ref(vpc_id.clone()))
                            .arg_str("CidrBlock", "10.0.1.0/24")
                            .arg_int("PrefixLength", 24)
                            .arg_str("Zone", "us-east-1a"),
                    );
                }
            }
        }));
    }
    let resetter = std::thread::spawn(move || {
        let policy = RetryPolicy::chaos(99).with_max_attempts(20);
        let mut client = Client::connect_with_retry(addr, "racy", policy).unwrap();
        for _ in 0..6 {
            // Reset may itself be hit by (idempotent-scope) write faults;
            // failures are fine, the server-side application is atomic.
            let _ = client.try_reset();
            std::thread::yield_now();
        }
    });
    for w in workers {
        w.join().unwrap();
    }
    resetter.join().unwrap();

    // Drain everything in flight, then inspect the final store.
    let store = handle.router().snapshot("racy").expect("store");
    handle.shutdown();
    for inst in store.iter() {
        if let Some(parent) = &inst.parent {
            assert!(
                store.exists(parent),
                "torn store: {} has dangling parent {}",
                inst.id,
                parent
            );
        }
        for (var, value) in &inst.state {
            if let lce_emulator::Value::Ref(target) = value {
                assert!(
                    store.exists(target),
                    "torn store: {}.{} references missing {}",
                    inst.id,
                    var,
                    target
                );
            }
        }
    }
}
