//! Socket-level integration tests: a real server on an ephemeral port,
//! driven by the `Client`, by raw TCP writes, and concurrently.

use lce_cloud::nimbus_provider;
use lce_emulator::{ApiCall, Backend, Value};
use lce_server::{serve, Client, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server(threads: usize) -> ServerHandle {
    let catalog = nimbus_provider().catalog;
    serve(
        ServerConfig {
            threads,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
        move |_account| {
            Box::new(lce_emulator::Emulator::new(catalog.clone()).named("served-golden"))
                as Box<dyn Backend + Send + Sync>
        },
    )
    .expect("bind ephemeral port")
}

/// Send raw bytes, read everything until the server closes or times out.
fn raw_exchange(handle: &ServerHandle, wire: &[u8]) -> String {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(wire).unwrap();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn health_apis_and_invoke_over_the_wire() {
    let handle = start_server(2);
    let mut client = Client::connect(handle.addr(), "t1").unwrap();
    assert!(client.health());
    assert_eq!(client.name(), "remote:t1");

    let apis = client.api_names();
    assert!(!apis.is_empty());
    assert!(apis.windows(2).all(|w| w[0] <= w[1]), "apis sorted");
    assert!(client.supports("CreateVpc"));
    assert!(!client.supports("LaunchRocket"));

    let resp = client.invoke(
        &ApiCall::new("CreateVpc")
            .arg_str("CidrBlock", "10.0.0.0/16")
            .arg_str("Region", "us-east"),
    );
    assert!(resp.is_ok(), "{:?}", resp.error);
    let vpc = resp.field("VpcId").unwrap().clone();
    assert!(matches!(vpc, Value::Ref(_)));

    // API-level errors pass through with their real codes.
    let resp = client.invoke(&ApiCall::new("LaunchRocket"));
    assert_eq!(resp.error_code(), Some("InvalidAction"));

    handle.shutdown();
}

#[test]
fn reset_isolates_and_clears_accounts() {
    let handle = start_server(2);
    let mut a = Client::connect(handle.addr(), "alpha").unwrap();
    let mut b = Client::connect(handle.addr(), "beta").unwrap();

    let make_vpc = |c: &mut Client| {
        c.invoke(
            &ApiCall::new("CreateVpc")
                .arg_str("CidrBlock", "10.0.0.0/16")
                .arg_str("Region", "us-east"),
        )
    };
    let ra = make_vpc(&mut a);
    let rb = make_vpc(&mut b);
    // Independent id counters prove independent stores.
    assert_eq!(ra.field("VpcId"), Some(&Value::reference("vpc-000001")));
    assert_eq!(rb.field("VpcId"), Some(&Value::reference("vpc-000001")));

    a.reset();
    // Alpha is fresh again; beta kept its resources.
    assert_eq!(
        make_vpc(&mut a).field("VpcId"),
        Some(&Value::reference("vpc-000001"))
    );
    assert_eq!(
        make_vpc(&mut b).field("VpcId"),
        Some(&Value::reference("vpc-000002"))
    );
    handle.shutdown();
}

#[test]
fn malformed_requests_get_4xx_and_close() {
    let handle = start_server(1);
    let text = raw_exchange(&handle, b"NONSENSE\r\n\r\n");
    assert!(text.starts_with("HTTP/1.1 400"), "{}", text);
    assert!(text.contains("Connection: close"), "{}", text);

    let text = raw_exchange(
        &handle,
        b"POST /a/B HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    );
    assert!(text.starts_with("HTTP/1.1 400"), "{}", text);

    let text = raw_exchange(
        &handle,
        b"POST /a/B HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert!(text.starts_with("HTTP/1.1 501"), "{}", text);

    let text = raw_exchange(
        &handle,
        b"POST /a/Echo HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
    );
    assert!(text.starts_with("HTTP/1.1 400"), "{}", text);
    handle.shutdown();
}

#[test]
fn curl_style_plain_json_works() {
    let handle = start_server(1);
    let body = br#"{"CidrBlock":"10.0.0.0/16","Region":"us-east"}"#;
    let wire = format!(
        "POST /dev/CreateVpc HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut full = wire.into_bytes();
    full.extend_from_slice(body);
    let text = raw_exchange(&handle, &full);
    assert!(text.starts_with("HTTP/1.1 200"), "{}", text);
    assert!(text.contains("\"VpcId\""), "{}", text);
    handle.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_answered_in_order() {
    let handle = start_server(1);
    // Two healths + a close: written in one burst, answered in order.
    let wire = b"GET /_health HTTP/1.1\r\n\r\n\
                 GET /_apis HTTP/1.1\r\n\r\n\
                 GET /_health HTTP/1.1\r\nConnection: close\r\n\r\n";
    let text = raw_exchange(&handle, wire);
    let responses: Vec<_> = text.matches("HTTP/1.1 200").collect();
    assert_eq!(responses.len(), 3, "{}", text);
    let apis_at = text.find("\"apis\"").unwrap();
    let first_health = text.find("\"status\"").unwrap();
    assert!(first_health < apis_at, "order preserved: {}", text);
    assert!(text.trim_end().ends_with('}'));
    handle.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection_for_many_calls() {
    let handle = start_server(1);
    let mut client = Client::connect(handle.addr(), "ka").unwrap();
    for i in 0..20 {
        let resp = client.invoke(
            &ApiCall::new("CreateVpc")
                .arg_str("CidrBlock", format!("10.{}.0.0/16", i))
                .arg_str("Region", "us-east"),
        );
        assert!(resp.is_ok(), "call {}: {:?}", i, resp.error);
    }
    handle.shutdown();
}

#[test]
fn concurrent_clients_on_distinct_accounts() {
    let handle = start_server(4);
    let addr = handle.addr();
    let mut threads = Vec::new();
    for t in 0..8 {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, format!("acct-{}", t)).unwrap();
            let mut ids = Vec::new();
            for i in 0..10 {
                let resp = client.invoke(
                    &ApiCall::new("CreateVpc")
                        .arg_str("CidrBlock", format!("10.{}.0.0/16", i))
                        .arg_str("Region", "us-east"),
                );
                assert!(resp.is_ok(), "{:?}", resp.error);
                ids.push(resp.field("VpcId").unwrap().clone());
            }
            ids
        }));
    }
    for t in threads {
        let ids = t.join().unwrap();
        // Every account sees its own private counter: 1..=10 (the store
        // renders counters in hex, so the 10th id is `vpc-00000a`).
        let expect: Vec<Value> = (1..=10)
            .map(|i| Value::reference(format!("vpc-{:06x}", i)))
            .collect();
        assert_eq!(ids, expect);
    }
    handle.shutdown();
}

#[test]
fn transport_error_when_server_is_gone() {
    let handle = start_server(1);
    let addr = handle.addr();
    let mut client = Client::connect(addr, "doomed").unwrap();
    handle.shutdown();
    let resp = client.invoke(&ApiCall::new("CreateVpc").arg_str("CidrBlock", "10.0.0.0/16"));
    assert_eq!(resp.error_code(), Some(lce_server::TRANSPORT_ERROR));
}

#[test]
fn graceful_shutdown_finishes_in_flight_work() {
    let handle = start_server(2);
    let mut client = Client::connect(handle.addr(), "x").unwrap();
    assert!(client.health());
    // Shutdown returns only after workers drained: subsequent connects fail.
    let addr = handle.addr();
    handle.shutdown();
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}
