//! Property tests: the HTTP parser must never panic, whatever bytes arrive
//! and however they are fragmented, and must round-trip every well-formed
//! request it could be fed.

use bytes::BytesMut;
use lce_server::http::{encode_response, parse_request, parse_response, HttpLimits, Response};
use proptest::prelude::*;

fn limits() -> HttpLimits {
    HttpLimits {
        max_head_bytes: 2 * 1024,
        max_body_bytes: 8 * 1024,
    }
}

/// Drive the parser the way a connection handler does: append a chunk,
/// parse until it yields `None` or an error, repeat.
fn drive(chunks: &[Vec<u8>]) -> usize {
    let mut buf = BytesMut::new();
    let mut parsed = 0usize;
    for chunk in chunks {
        buf.extend_from_slice(chunk);
        loop {
            match parse_request(&mut buf, &limits()) {
                Ok(Some(_)) => parsed += 1,
                Ok(None) => break,
                Err(_) => return parsed, // a real server closes here
            }
        }
    }
    parsed
}

proptest! {
    /// Arbitrary byte soup, arbitrarily fragmented: no panic.
    #[test]
    fn arbitrary_bytes_never_panic(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 0..8)
    ) {
        drive(&chunks);
    }

    /// Byte soup seeded with HTTP-ish tokens, to reach deeper parser
    /// states than uniform noise does: still no panic.
    #[test]
    fn http_flavoured_bytes_never_panic(
        parts in prop::collection::vec(
            prop_oneof![
                Just(b"POST /a/B HTTP/1.1".to_vec()),
                Just(b"GET /_health HTTP/1.0".to_vec()),
                Just(b"\r\n".to_vec()),
                Just(b"\r\n\r\n".to_vec()),
                Just(b"Content-Length: 5".to_vec()),
                Just(b"Content-Length: 99999999999999999999".to_vec()),
                Just(b"Transfer-Encoding: chunked".to_vec()),
                Just(b"Connection: close".to_vec()),
                Just(b"{\"a\":1}".to_vec()),
                Just(b"\xff\xfe\x00".to_vec()),
            ],
            0..12
        )
    ) {
        let joined: Vec<u8> = parts.concat();
        drive(&[joined]);
    }

    /// A well-formed request with an arbitrary binary body parses whole
    /// under any fragmentation, and the body survives byte-for-byte.
    #[test]
    fn well_formed_requests_round_trip(
        body in prop::collection::vec(any::<u8>(), 0..512),
        split in 1usize..64,
    ) {
        let head = format!(
            "POST /acct/Api HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&body);

        let mut buf = BytesMut::new();
        let mut got = None;
        for chunk in wire.chunks(split) {
            buf.extend_from_slice(chunk);
            if let Some(req) = parse_request(&mut buf, &limits()).unwrap() {
                got = Some(req);
            }
        }
        let req = got.expect("request must complete");
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path.as_str(), "/acct/Api");
        prop_assert_eq!(req.body, body);
        prop_assert!(buf.is_empty());
    }

    /// Responses round-trip through encode + parse under fragmentation.
    #[test]
    fn responses_round_trip(
        body in prop::collection::vec(any::<u8>(), 0..512),
        split in 1usize..64,
        keep_alive in any::<bool>(),
    ) {
        let wire = encode_response(&Response {
            status: 200,
            body: body.clone(),
            content_type: "application/json",
            keep_alive,
        });
        let mut buf = BytesMut::new();
        let mut got = None;
        for chunk in wire.chunks(split) {
            buf.extend_from_slice(chunk);
            if let Some(resp) = parse_response(&mut buf, &limits()).unwrap() {
                got = Some(resp);
            }
        }
        let resp = got.expect("response must complete");
        prop_assert_eq!(resp.status, 200);
        prop_assert_eq!(resp.keep_alive, keep_alive);
        prop_assert_eq!(resp.body, body);
    }
}
