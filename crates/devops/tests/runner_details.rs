//! Runner nuances: binding semantics, reference resolution through
//! failures, and the id-masking comparison rules the differential engine
//! depends on.

use lce_cloud::nimbus_provider;
use lce_devops::{compare_runs, run_program, Arg, Program};
use lce_emulator::Value;

fn vpc_args() -> Vec<(&'static str, Arg)> {
    vec![
        ("CidrBlock", Arg::str("10.0.0.0/16")),
        ("Region", Arg::str("us-east")),
    ]
}

#[test]
fn later_binding_shadows_earlier() {
    let p = Program::new("shadow")
        .bind("x", "CreateVpc", vpc_args())
        .bind(
            "x",
            "CreateVpc",
            vec![
                ("CidrBlock", Arg::str("10.1.0.0/16")),
                ("Region", Arg::str("us-west")),
            ],
        )
        .call("DescribeVpc", vec![("VpcId", Arg::field("x", "VpcId"))]);
    let mut cloud = nimbus_provider().golden_cloud();
    let run = run_program(&p, &mut cloud);
    assert!(run.all_ok(), "{:?}", run.error_codes());
    // The describe targeted the *second* VPC.
    assert_eq!(
        run.steps[2].response.field("Region"),
        Some(&Value::str("us-west"))
    );
}

#[test]
fn reference_into_failed_step_becomes_null() {
    let p = Program::new("cascade")
        .bind(
            "bad",
            "CreateVpc",
            vec![
                ("CidrBlock", Arg::str("10.0.0.0/16")),
                ("Region", Arg::str("mars-east")), // invalid region
            ],
        )
        .call("DescribeVpc", vec![("VpcId", Arg::field("bad", "VpcId"))]);
    let mut cloud = nimbus_provider().golden_cloud();
    let run = run_program(&p, &mut cloud);
    assert_eq!(
        run.error_codes(),
        vec![
            Some("InvalidParameterValue".to_string()),
            Some("MissingParameter".to_string()),
        ]
    );
}

#[test]
fn reference_to_missing_field_becomes_null() {
    let p = Program::new("typo")
        .bind("vpc", "CreateVpc", vpc_args())
        .call("DescribeVpc", vec![("VpcId", Arg::field("vpc", "VpcIdd"))]);
    let mut cloud = nimbus_provider().golden_cloud();
    let run = run_program(&p, &mut cloud);
    assert_eq!(run.steps[1].response.error_code(), Some("MissingParameter"));
}

#[test]
fn comparison_masks_ids_inside_lists() {
    // Route tables return lists of subnet references; two backends with
    // different counters must still align.
    let p = Program::new("rt")
        .bind("vpc", "CreateVpc", vpc_args())
        .bind(
            "subnet",
            "CreateSubnet",
            vec![
                ("VpcId", Arg::field("vpc", "VpcId")),
                ("CidrBlock", Arg::str("10.0.1.0/24")),
                ("PrefixLength", Arg::int(24)),
                ("Zone", Arg::str("us-east-1a")),
            ],
        )
        .bind(
            "rt",
            "CreateRouteTable",
            vec![("VpcId", Arg::field("vpc", "VpcId"))],
        )
        .call(
            "AssociateRouteTable",
            vec![
                ("RouteTableId", Arg::field("rt", "RouteTableId")),
                ("SubnetId", Arg::field("subnet", "SubnetId")),
            ],
        )
        .call(
            "DescribeRouteTable",
            vec![("RouteTableId", Arg::field("rt", "RouteTableId"))],
        );
    let mut a = nimbus_provider().golden_cloud();
    let mut b = nimbus_provider().golden_cloud();
    // Skew b's counters so the subnet ids differ (counters are per-type,
    // so burn subnet ids specifically, then tear the warm-up world down).
    let warmup = Program::new("warmup")
        .bind("vpc", "CreateVpc", vpc_args())
        .bind(
            "s",
            "CreateSubnet",
            vec![
                ("VpcId", Arg::field("vpc", "VpcId")),
                ("CidrBlock", Arg::str("10.0.9.0/24")),
                ("PrefixLength", Arg::int(24)),
                ("Zone", Arg::str("us-east-1a")),
            ],
        )
        .call(
            "DeleteSubnet",
            vec![("SubnetId", Arg::field("s", "SubnetId"))],
        )
        .call("DeleteVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]);
    assert!(run_program(&warmup, &mut b).all_ok());
    let ra = run_program(&p, &mut a);
    let rb = run_program(&p, &mut b);
    assert!(ra.all_ok() && rb.all_ok());
    // Raw field equality differs…
    assert_ne!(
        ra.steps[4].response.field("AssociatedSubnets"),
        rb.steps[4].response.field("AssociatedSubnets")
    );
    // …but masked comparison aligns.
    let cmp = compare_runs(&ra, &rb);
    assert!(cmp.fully_aligned(), "{:?}", cmp.divergences);
}

#[test]
fn run_records_resolved_concrete_calls() {
    let p = Program::new("record")
        .bind("vpc", "CreateVpc", vpc_args())
        .call("DeleteVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]);
    let mut cloud = nimbus_provider().golden_cloud();
    let run = run_program(&p, &mut cloud);
    // The recorded call carries the concrete id, not the symbolic ref.
    let arg = run.steps[1].call.args.get("VpcId").unwrap();
    assert!(matches!(arg, Value::Ref(id) if id.as_str().starts_with("vpc-")));
}

#[test]
fn programs_serialize_for_the_cli() {
    let p = Program::new("persist")
        .bind("vpc", "CreateVpc", vpc_args())
        .call("DeleteVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]);
    let json = serde_json::to_string_pretty(&p).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}
