use lce_devops::{Arg, Program};
fn main() {
    let p = Program::new("web-tier")
        .bind(
            "vpc",
            "CreateVpc",
            vec![
                ("CidrBlock", Arg::str("10.0.0.0/16")),
                ("Region", Arg::str("us-east")),
            ],
        )
        .bind(
            "subnet",
            "CreateSubnet",
            vec![
                ("VpcId", Arg::field("vpc", "VpcId")),
                ("CidrBlock", Arg::str("10.0.1.0/24")),
                ("PrefixLength", Arg::int(24)),
                ("Zone", Arg::str("us-east-1a")),
            ],
        )
        .call(
            "ModifySubnetAttribute",
            vec![
                ("SubnetId", Arg::field("subnet", "SubnetId")),
                ("MapPublicIpOnLaunch", Arg::bool(true)),
            ],
        )
        .bind(
            "image",
            "RegisterImage",
            vec![("Name", Arg::str("web-base"))],
        )
        .bind(
            "inst",
            "RunInstance",
            vec![
                ("SubnetId", Arg::field("subnet", "SubnetId")),
                ("ImageId", Arg::field("image", "ImageId")),
                ("InstanceType", Arg::str("t3.micro")),
            ],
        )
        .call(
            "DescribeInstance",
            vec![("InstanceId", Arg::field("inst", "InstanceId"))],
        );
    println!("{}", serde_json::to_string_pretty(&p).unwrap());
}
