//! Nimbus evaluation programs.

use super::{Category, Scenario};
use crate::program::{Arg, Program};

/// The §5 "basic functionality" program: create a VPC, attach a subnet,
/// enable `MapPublicIpOnLaunch`, and read the state back.
pub fn basic_functionality() -> Program {
    Program::new("basic-functionality")
        .bind(
            "vpc",
            "CreateVpc",
            vec![
                ("CidrBlock", Arg::str("10.0.0.0/16")),
                ("Region", Arg::str("us-east")),
            ],
        )
        .bind(
            "subnet",
            "CreateSubnet",
            vec![
                ("VpcId", Arg::field("vpc", "VpcId")),
                ("CidrBlock", Arg::str("10.0.1.0/24")),
                ("PrefixLength", Arg::int(24)),
                ("Zone", Arg::str("us-east-1a")),
            ],
        )
        .call(
            "ModifySubnetAttribute",
            vec![
                ("SubnetId", Arg::field("subnet", "SubnetId")),
                ("MapPublicIpOnLaunch", Arg::bool(true)),
            ],
        )
        .call(
            "DescribeSubnet",
            vec![("SubnetId", Arg::field("subnet", "SubnetId"))],
        )
}

/// Shared prelude: VPC + subnet + image, bound as `vpc`/`subnet`/`image`.
fn with_network(name: &str) -> Program {
    Program::new(name)
        .bind(
            "vpc",
            "CreateVpc",
            vec![
                ("CidrBlock", Arg::str("10.0.0.0/16")),
                ("Region", Arg::str("us-east")),
            ],
        )
        .bind(
            "subnet",
            "CreateSubnet",
            vec![
                ("VpcId", Arg::field("vpc", "VpcId")),
                ("CidrBlock", Arg::str("10.0.1.0/24")),
                ("PrefixLength", Arg::int(24)),
                ("Zone", Arg::str("us-east-1a")),
            ],
        )
        .bind(
            "image",
            "RegisterImage",
            vec![("Name", Arg::str("base-linux"))],
        )
}

/// The Fig. 3 matrix: 4 provisioning + 4 state-update + 4 edge-case traces.
#[allow(clippy::vec_init_then_push)]
pub fn fig3_nimbus() -> Vec<Scenario> {
    let mut out = Vec::new();

    // ---------------- Provisioning ----------------
    out.push(Scenario {
        category: Category::Provisioning,
        program: with_network("prov-instance-chain")
            .bind(
                "inst",
                "RunInstance",
                vec![
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                    ("ImageId", Arg::field("image", "ImageId")),
                    ("InstanceType", Arg::str("t3.micro")),
                ],
            )
            .call(
                "DescribeInstance",
                vec![("InstanceId", Arg::field("inst", "InstanceId"))],
            )
            .call("DescribeVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]),
    });

    out.push(Scenario {
        category: Category::Provisioning,
        program: Program::new("prov-dedicated-tenancy")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.1.0.0/16")),
                    ("Region", Arg::str("us-west")),
                    ("InstanceTenancy", Arg::str("dedicated")),
                ],
            )
            .call("DescribeVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]),
    });

    out.push(Scenario {
        category: Category::Provisioning,
        program: with_network("prov-routing")
            .bind("igw", "CreateInternetGateway", vec![])
            .call(
                "AttachInternetGateway",
                vec![
                    ("InternetGatewayId", Arg::field("igw", "InternetGatewayId")),
                    ("VpcId", Arg::field("vpc", "VpcId")),
                ],
            )
            .bind(
                "rt",
                "CreateRouteTable",
                vec![("VpcId", Arg::field("vpc", "VpcId"))],
            )
            .call(
                "CreateRoute",
                vec![
                    ("RouteTableId", Arg::field("rt", "RouteTableId")),
                    ("DestinationCidrBlock", Arg::str("0.0.0.0/0")),
                ],
            )
            .call(
                "AssociateRouteTable",
                vec![
                    ("RouteTableId", Arg::field("rt", "RouteTableId")),
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                ],
            )
            .call(
                "DescribeRouteTable",
                vec![("RouteTableId", Arg::field("rt", "RouteTableId"))],
            ),
    });

    out.push(Scenario {
        category: Category::Provisioning,
        program: Program::new("prov-firewall")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.2.0.0/16")),
                    ("Region", Arg::str("us-east")),
                ],
            )
            .bind(
                "subnet",
                "CreateSubnet",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("CidrBlock", Arg::str("10.2.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                    ("Zone", Arg::str("us-east-1a")),
                ],
            )
            .bind(
                "policy",
                "CreateFirewallPolicy",
                vec![("PolicyName", Arg::str("default-policy"))],
            )
            .bind(
                "rg",
                "CreateRuleGroup",
                vec![
                    ("GroupName", Arg::str("web-rules")),
                    ("Type", Arg::str("STATEFUL")),
                    ("Capacity", Arg::int(100)),
                ],
            )
            .call(
                "UpdateFirewallPolicy",
                vec![
                    ("FirewallPolicyId", Arg::field("policy", "FirewallPolicyId")),
                    ("AddRuleGroupId", Arg::field("rg", "RuleGroupId")),
                ],
            )
            .bind(
                "fw",
                "CreateFirewall",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("FirewallPolicyId", Arg::field("policy", "FirewallPolicyId")),
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                ],
            )
            .call(
                "DescribeFirewall",
                vec![("FirewallId", Arg::field("fw", "FirewallId"))],
            ),
    });

    // ---------------- State updates ----------------
    out.push(Scenario {
        category: Category::StateUpdates,
        program: with_network("state-instance-lifecycle")
            .bind(
                "inst",
                "RunInstance",
                vec![
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                    ("ImageId", Arg::field("image", "ImageId")),
                    ("InstanceType", Arg::str("m5.large")),
                ],
            )
            .call(
                "StopInstance",
                vec![("InstanceId", Arg::field("inst", "InstanceId"))],
            )
            .call(
                "ModifyInstanceAttribute",
                vec![
                    ("InstanceId", Arg::field("inst", "InstanceId")),
                    ("InstanceType", Arg::str("m5.xlarge")),
                ],
            )
            .call(
                "StartInstance",
                vec![("InstanceId", Arg::field("inst", "InstanceId"))],
            )
            .call(
                "DescribeInstance",
                vec![("InstanceId", Arg::field("inst", "InstanceId"))],
            ),
    });

    out.push(Scenario {
        category: Category::StateUpdates,
        program: Program::new("state-dns-coupling")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.3.0.0/16")),
                    ("Region", Arg::str("us-east")),
                ],
            )
            .call(
                "ModifyVpcAttribute",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("EnableDnsHostnames", Arg::bool(true)),
                ],
            )
            // Disabling DNS support while hostnames are on must fail.
            .call(
                "ModifyVpcAttribute",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("EnableDnsSupport", Arg::bool(false)),
                ],
            )
            .call("DescribeVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]),
    });

    out.push(Scenario {
        category: Category::StateUpdates,
        program: with_network("state-credit-spec")
            .bind(
                "burst",
                "RunInstance",
                vec![
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                    ("ImageId", Arg::field("image", "ImageId")),
                    ("InstanceType", Arg::str("t3.micro")),
                ],
            )
            .call(
                "ModifyInstanceCreditSpecification",
                vec![
                    ("InstanceId", Arg::field("burst", "InstanceId")),
                    ("CpuCredits", Arg::str("unlimited")),
                ],
            )
            .bind(
                "big",
                "RunInstance",
                vec![
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                    ("ImageId", Arg::field("image", "ImageId")),
                    ("InstanceType", Arg::str("m5.large")),
                ],
            )
            // Credit specification on a non-burstable type must fail.
            .call(
                "ModifyInstanceCreditSpecification",
                vec![
                    ("InstanceId", Arg::field("big", "InstanceId")),
                    ("CpuCredits", Arg::str("unlimited")),
                ],
            )
            .call(
                "DescribeInstance",
                vec![("InstanceId", Arg::field("burst", "InstanceId"))],
            ),
    });

    out.push(Scenario {
        category: Category::StateUpdates,
        program: Program::new("state-volume-resize")
            .bind(
                "vol",
                "CreateVolume",
                vec![("Size", Arg::int(100)), ("Zone", Arg::str("us-east-1a"))],
            )
            .call(
                "ModifyVolume",
                vec![
                    ("VolumeId", Arg::field("vol", "VolumeId")),
                    ("Size", Arg::int(200)),
                ],
            )
            // Shrinking must fail.
            .call(
                "ModifyVolume",
                vec![
                    ("VolumeId", Arg::field("vol", "VolumeId")),
                    ("Size", Arg::int(50)),
                ],
            )
            .call(
                "DescribeVolume",
                vec![("VolumeId", Arg::field("vol", "VolumeId"))],
            ),
    });

    // ---------------- Edge cases ----------------
    out.push(Scenario {
        category: Category::EdgeCases,
        program: with_network("edge-start-running")
            .bind(
                "inst",
                "RunInstance",
                vec![
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                    ("ImageId", Arg::field("image", "ImageId")),
                    ("InstanceType", Arg::str("t3.micro")),
                ],
            )
            // Starting an already-running instance: the cloud returns
            // IncorrectInstanceState; a silent success is the paper's
            // canonical D2C transition error.
            .call(
                "StartInstance",
                vec![("InstanceId", Arg::field("inst", "InstanceId"))],
            )
            .call(
                "DescribeInstance",
                vec![("InstanceId", Arg::field("inst", "InstanceId"))],
            ),
    });

    out.push(Scenario {
        category: Category::EdgeCases,
        program: Program::new("edge-subnet-validation")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.4.0.0/16")),
                    ("Region", Arg::str("us-east")),
                ],
            )
            // Invalid prefix size (/29): the paper's shallow-validation
            // example.
            .call(
                "CreateSubnet",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("CidrBlock", Arg::str("10.4.1.0/29")),
                    ("PrefixLength", Arg::int(29)),
                    ("Zone", Arg::str("us-east-1a")),
                ],
            )
            .bind(
                "s1",
                "CreateSubnet",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("CidrBlock", Arg::str("10.4.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                    ("Zone", Arg::str("us-east-1a")),
                ],
            )
            // Conflicting CIDR.
            .call(
                "CreateSubnet",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("CidrBlock", Arg::str("10.4.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                    ("Zone", Arg::str("us-east-1b")),
                ],
            ),
    });

    out.push(Scenario {
        category: Category::EdgeCases,
        program: Program::new("edge-delete-vpc-with-children")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.5.0.0/16")),
                    ("Region", Arg::str("us-east")),
                ],
            )
            .bind(
                "subnet",
                "CreateSubnet",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("CidrBlock", Arg::str("10.5.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                    ("Zone", Arg::str("us-east-1a")),
                ],
            )
            // Deleting the VPC while the subnet lives must fail with
            // DependencyViolation (§2's Moto bug).
            .call("DeleteVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))])
            .call(
                "DeleteSubnet",
                vec![("SubnetId", Arg::field("subnet", "SubnetId"))],
            )
            .call("DeleteVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]),
    });

    out.push(Scenario {
        category: Category::EdgeCases,
        program: Program::new("edge-duplicate-sg-rule")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.6.0.0/16")),
                    ("Region", Arg::str("us-east")),
                ],
            )
            .bind(
                "sg",
                "CreateSecurityGroup",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("GroupName", Arg::str("web")),
                    ("Description", Arg::str("web tier")),
                ],
            )
            .call(
                "AuthorizeSecurityGroupIngress",
                vec![
                    ("SecurityGroupId", Arg::field("sg", "SecurityGroupId")),
                    ("Rule", Arg::str("tcp/443 from 0.0.0.0/0")),
                ],
            )
            // Duplicate rule must fail.
            .call(
                "AuthorizeSecurityGroupIngress",
                vec![
                    ("SecurityGroupId", Arg::field("sg", "SecurityGroupId")),
                    ("Rule", Arg::str("tcp/443 from 0.0.0.0/0")),
                ],
            )
            // Revoking a rule that was never added must fail.
            .call(
                "RevokeSecurityGroupIngress",
                vec![
                    ("SecurityGroupId", Arg::field("sg", "SecurityGroupId")),
                    ("Rule", Arg::str("udp/53 from 10.0.0.0/8")),
                ],
            ),
    });

    out
}
