//! The paper's evaluation scenarios.
//!
//! * [`basic_functionality`] — the §5 "basic functionality" program
//!   (create VPC → attach subnet → `ModifySubnetAttribute` enabling
//!   `MapPublicIpOnLaunch`).
//! * [`fig3_nimbus`] — the Fig. 3 accuracy matrix: 3 scenario categories
//!   (provisioning, state updates, edge cases) × 4 traces each, against
//!   the Nimbus provider.
//! * [`fig3_stratus`] — the multi-cloud replica of the same matrix against
//!   Stratus (§5, "Multi-cloud").

pub mod nimbus;
pub mod stratus;

use crate::program::Program;
use serde::{Deserialize, Serialize};

/// The Fig. 3 scenario categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Resource provisioning chains.
    Provisioning,
    /// State update flows.
    StateUpdates,
    /// Edge cases targeting subtle, underspecified checks.
    EdgeCases,
}

impl Category {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Provisioning => "provisioning",
            Category::StateUpdates => "state updates",
            Category::EdgeCases => "edge cases",
        }
    }
}

/// A categorized evaluation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Fig. 3 category.
    pub category: Category,
    /// The program to run.
    pub program: Program,
}

pub use nimbus::{basic_functionality, fig3_nimbus};
pub use stratus::fig3_stratus;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_program;
    use lce_cloud::{nimbus_provider, stratus_provider};

    #[test]
    fn fig3_matrix_is_3_by_4() {
        let scenarios = fig3_nimbus();
        assert_eq!(scenarios.len(), 12);
        for cat in [
            Category::Provisioning,
            Category::StateUpdates,
            Category::EdgeCases,
        ] {
            assert_eq!(
                scenarios.iter().filter(|s| s.category == cat).count(),
                4,
                "category {:?}",
                cat
            );
        }
    }

    #[test]
    fn stratus_matrix_is_3_by_4() {
        let scenarios = fig3_stratus();
        assert_eq!(scenarios.len(), 12);
    }

    /// Every scenario must be *meaningful* against the golden cloud: each
    /// step either succeeds or fails with the error code the scenario
    /// narrative expects — never with an accidental `InvalidAction`,
    /// `MissingParameter` or internal fault, which would mean the scenario
    /// itself is buggy.
    #[test]
    fn nimbus_scenarios_are_well_formed_against_golden_cloud() {
        for s in fig3_nimbus() {
            let mut cloud = nimbus_provider().golden_cloud();
            let run = run_program(&s.program, &mut cloud);
            for (i, step) in run.steps.iter().enumerate() {
                if let Some(e) = &step.response.error {
                    assert!(
                        ![
                            "InvalidAction",
                            "MissingParameter",
                            "UnknownParameter",
                            "InternalFailure",
                            "LimitExceeded"
                        ]
                        .contains(&e.code.as_str()),
                        "{} step {} ({}) failed unexpectedly: {}",
                        s.program.name,
                        i,
                        step.call.api,
                        e
                    );
                }
            }
        }
    }

    #[test]
    fn stratus_scenarios_are_well_formed_against_golden_cloud() {
        for s in fig3_stratus() {
            let mut cloud = stratus_provider().golden_cloud();
            let run = run_program(&s.program, &mut cloud);
            for (i, step) in run.steps.iter().enumerate() {
                if let Some(e) = &step.response.error {
                    assert!(
                        ![
                            "InvalidAction",
                            "MissingParameter",
                            "UnknownParameter",
                            "InternalFailure"
                        ]
                        .contains(&e.code.as_str()),
                        "{} step {} ({}) failed unexpectedly: {}",
                        s.program.name,
                        i,
                        step.call.api,
                        e
                    );
                }
            }
        }
    }

    /// Each category must exercise at least one expected failure (edge
    /// cases) or succeed fully (provisioning) on the golden cloud.
    #[test]
    fn provisioning_scenarios_succeed_on_golden_cloud() {
        for s in fig3_nimbus() {
            if s.category == Category::Provisioning && s.program.name != "prov-teardown-order" {
                let mut cloud = nimbus_provider().golden_cloud();
                let run = run_program(&s.program, &mut cloud);
                assert!(
                    run.all_ok(),
                    "{} should fully succeed: {:?}",
                    s.program.name,
                    run.error_codes()
                );
            }
        }
    }

    #[test]
    fn edge_case_scenarios_hit_expected_errors() {
        for s in fig3_nimbus() {
            if s.category == Category::EdgeCases {
                let mut cloud = nimbus_provider().golden_cloud();
                let run = run_program(&s.program, &mut cloud);
                assert!(
                    run.steps.iter().any(|st| !st.response.is_ok()),
                    "{} should contain at least one expected failure",
                    s.program.name
                );
            }
        }
    }

    #[test]
    fn basic_functionality_succeeds_and_keeps_state() {
        let mut cloud = nimbus_provider().golden_cloud();
        let run = run_program(&basic_functionality(), &mut cloud);
        assert!(run.all_ok(), "{:?}", run.error_codes());
        // The subnet attribute really changed.
        let last = run.steps.last().unwrap();
        assert_eq!(last.call.api, "DescribeSubnet");
        assert_eq!(
            last.response.field("MapPublicIpOnLaunch"),
            Some(&lce_emulator::Value::Bool(true))
        );
    }
}
