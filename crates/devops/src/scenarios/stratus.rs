//! Stratus evaluation programs — the multi-cloud replica of the Fig. 3
//! matrix (§5, "Multi-cloud": "We replicated the same workflow on Azure
//! and achieved comparable accuracy").

use super::{Category, Scenario};
use crate::program::{Arg, Program};

/// Shared prelude: virtual network + subnet + NIC.
fn with_vnet(name: &str) -> Program {
    Program::new(name)
        .bind(
            "vnet",
            "CreateVirtualNetwork",
            vec![
                ("AddressSpace", Arg::str("10.0.0.0/8")),
                ("Location", Arg::str("north")),
            ],
        )
        .bind(
            "subnet",
            "CreateVnetSubnet",
            vec![
                ("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId")),
                ("AddressPrefix", Arg::str("10.0.1.0/24")),
                ("PrefixLength", Arg::int(24)),
            ],
        )
        .bind(
            "nic",
            "CreateNetworkInterfaceCard",
            vec![
                ("SubnetId", Arg::field("subnet", "SubnetId")),
                ("Location", Arg::str("north")),
            ],
        )
}

/// The Fig. 3 matrix against Stratus: 4 + 4 + 4 traces.
#[allow(clippy::vec_init_then_push)]
pub fn fig3_stratus() -> Vec<Scenario> {
    let mut out = Vec::new();

    // ---------------- Provisioning ----------------
    out.push(Scenario {
        category: Category::Provisioning,
        program: with_vnet("sprov-vm-chain")
            .bind(
                "vm",
                "CreateVirtualMachine",
                vec![
                    (
                        "NetworkInterfaceCardId",
                        Arg::field("nic", "NetworkInterfaceCardId"),
                    ),
                    ("Size", Arg::str("Standard_B2s")),
                ],
            )
            .call(
                "GetVirtualMachine",
                vec![("VirtualMachineId", Arg::field("vm", "VirtualMachineId"))],
            )
            .call(
                "GetVirtualNetwork",
                vec![("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId"))],
            ),
    });

    out.push(Scenario {
        category: Category::Provisioning,
        program: Program::new("sprov-public-ip")
            .bind(
                "ip",
                "CreatePublicIpAddress",
                vec![
                    ("Location", Arg::str("south")),
                    ("AllocationMethod", Arg::str("Static")),
                ],
            )
            .call(
                "GetPublicIpAddress",
                vec![("PublicIpAddressId", Arg::field("ip", "PublicIpAddressId"))],
            ),
    });

    out.push(Scenario {
        category: Category::Provisioning,
        program: with_vnet("sprov-nsg")
            .bind(
                "nsg",
                "CreateNetworkSecurityGroup",
                vec![("Location", Arg::str("north"))],
            )
            .call(
                "AssociateNetworkSecurityGroup",
                vec![
                    ("SubnetId", Arg::field("subnet", "SubnetId")),
                    (
                        "NetworkSecurityGroupId",
                        Arg::field("nsg", "NetworkSecurityGroupId"),
                    ),
                ],
            )
            .call(
                "GetVnetSubnet",
                vec![("SubnetId", Arg::field("subnet", "SubnetId"))],
            ),
    });

    out.push(Scenario {
        category: Category::Provisioning,
        program: with_vnet("sprov-loadbalancer")
            .bind(
                "lb",
                "CreateLoadBalancer",
                vec![("Location", Arg::str("north"))],
            )
            .call(
                "AddBackend",
                vec![
                    ("LoadBalancerId", Arg::field("lb", "LoadBalancerId")),
                    (
                        "NetworkInterfaceCardId",
                        Arg::field("nic", "NetworkInterfaceCardId"),
                    ),
                ],
            )
            .call(
                "AddLoadBalancingRule",
                vec![
                    ("LoadBalancerId", Arg::field("lb", "LoadBalancerId")),
                    ("Rule", Arg::str("tcp/80 -> tcp/8080")),
                ],
            )
            .call(
                "GetLoadBalancer",
                vec![("LoadBalancerId", Arg::field("lb", "LoadBalancerId"))],
            ),
    });

    // ---------------- State updates ----------------
    out.push(Scenario {
        category: Category::StateUpdates,
        program: with_vnet("sstate-vm-lifecycle")
            .bind(
                "vm",
                "CreateVirtualMachine",
                vec![
                    (
                        "NetworkInterfaceCardId",
                        Arg::field("nic", "NetworkInterfaceCardId"),
                    ),
                    ("Size", Arg::str("Standard_B1s")),
                ],
            )
            .call(
                "PowerOffVirtualMachine",
                vec![("VirtualMachineId", Arg::field("vm", "VirtualMachineId"))],
            )
            .call(
                "DeallocateVirtualMachine",
                vec![("VirtualMachineId", Arg::field("vm", "VirtualMachineId"))],
            )
            .call(
                "ResizeVirtualMachine",
                vec![
                    ("VirtualMachineId", Arg::field("vm", "VirtualMachineId")),
                    ("Size", Arg::str("Standard_D2s")),
                ],
            )
            .call(
                "GetVirtualMachine",
                vec![("VirtualMachineId", Arg::field("vm", "VirtualMachineId"))],
            ),
    });

    out.push(Scenario {
        category: Category::StateUpdates,
        program: Program::new("sstate-disk-resize")
            .bind("disk", "CreateManagedDisk", vec![("SizeGb", Arg::int(128))])
            .call(
                "ResizeManagedDisk",
                vec![
                    ("ManagedDiskId", Arg::field("disk", "ManagedDiskId")),
                    ("SizeGb", Arg::int(256)),
                ],
            )
            // Shrinking must fail.
            .call(
                "ResizeManagedDisk",
                vec![
                    ("ManagedDiskId", Arg::field("disk", "ManagedDiskId")),
                    ("SizeGb", Arg::int(64)),
                ],
            )
            .call(
                "GetManagedDisk",
                vec![("ManagedDiskId", Arg::field("disk", "ManagedDiskId"))],
            ),
    });

    out.push(Scenario {
        category: Category::StateUpdates,
        program: with_vnet("sstate-ip-association")
            .bind(
                "ip",
                "CreatePublicIpAddress",
                vec![("Location", Arg::str("north"))],
            )
            .call(
                "AssociateWithNic",
                vec![
                    ("PublicIpAddressId", Arg::field("ip", "PublicIpAddressId")),
                    (
                        "NetworkInterfaceCardId",
                        Arg::field("nic", "NetworkInterfaceCardId"),
                    ),
                ],
            )
            .call(
                "GetNetworkInterfaceCard",
                vec![(
                    "NetworkInterfaceCardId",
                    Arg::field("nic", "NetworkInterfaceCardId"),
                )],
            )
            .call(
                "DissociateFromNic",
                vec![("PublicIpAddressId", Arg::field("ip", "PublicIpAddressId"))],
            ),
    });

    out.push(Scenario {
        category: Category::StateUpdates,
        program: Program::new("sstate-nsg-rules")
            .bind(
                "nsg",
                "CreateNetworkSecurityGroup",
                vec![("Location", Arg::str("west-europe"))],
            )
            .call(
                "CreateSecurityRule",
                vec![
                    (
                        "NetworkSecurityGroupId",
                        Arg::field("nsg", "NetworkSecurityGroupId"),
                    ),
                    ("Rule", Arg::str("allow tcp/22 priority 100")),
                ],
            )
            .call(
                "DeleteSecurityRule",
                vec![
                    (
                        "NetworkSecurityGroupId",
                        Arg::field("nsg", "NetworkSecurityGroupId"),
                    ),
                    ("Rule", Arg::str("allow tcp/22 priority 100")),
                ],
            )
            .call(
                "GetNetworkSecurityGroup",
                vec![(
                    "NetworkSecurityGroupId",
                    Arg::field("nsg", "NetworkSecurityGroupId"),
                )],
            ),
    });

    // ---------------- Edge cases ----------------
    out.push(Scenario {
        category: Category::EdgeCases,
        program: with_vnet("sedge-start-running")
            .bind(
                "vm",
                "CreateVirtualMachine",
                vec![
                    (
                        "NetworkInterfaceCardId",
                        Arg::field("nic", "NetworkInterfaceCardId"),
                    ),
                    ("Size", Arg::str("Standard_B1s")),
                ],
            )
            // Starting a running VM must fail with OperationNotAllowed.
            .call(
                "StartVirtualMachine",
                vec![("VirtualMachineId", Arg::field("vm", "VirtualMachineId"))],
            ),
    });

    out.push(Scenario {
        category: Category::EdgeCases,
        program: Program::new("sedge-subnet-overlap")
            .bind(
                "vnet",
                "CreateVirtualNetwork",
                vec![
                    ("AddressSpace", Arg::str("10.0.0.0/8")),
                    ("Location", Arg::str("north")),
                ],
            )
            .bind(
                "s1",
                "CreateVnetSubnet",
                vec![
                    ("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId")),
                    ("AddressPrefix", Arg::str("10.0.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                ],
            )
            // Overlapping prefix must fail.
            .call(
                "CreateVnetSubnet",
                vec![
                    ("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId")),
                    ("AddressPrefix", Arg::str("10.0.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                ],
            )
            // Out-of-range prefix must fail.
            .call(
                "CreateVnetSubnet",
                vec![
                    ("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId")),
                    ("AddressPrefix", Arg::str("10.0.2.0/30")),
                    ("PrefixLength", Arg::int(30)),
                ],
            ),
    });

    out.push(Scenario {
        category: Category::EdgeCases,
        program: Program::new("sedge-delete-vnet-with-subnet")
            .bind(
                "vnet",
                "CreateVirtualNetwork",
                vec![
                    ("AddressSpace", Arg::str("172.16.0.0/12")),
                    ("Location", Arg::str("south")),
                ],
            )
            .bind(
                "subnet",
                "CreateVnetSubnet",
                vec![
                    ("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId")),
                    ("AddressPrefix", Arg::str("172.16.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                ],
            )
            // Deleting the vnet with a live subnet must fail.
            .call(
                "DeleteVirtualNetwork",
                vec![("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId"))],
            )
            .call(
                "DeleteVnetSubnet",
                vec![("SubnetId", Arg::field("subnet", "SubnetId"))],
            )
            .call(
                "DeleteVirtualNetwork",
                vec![("VirtualNetworkId", Arg::field("vnet", "VirtualNetworkId"))],
            ),
    });

    out.push(Scenario {
        category: Category::EdgeCases,
        program: with_vnet("sedge-nic-in-use")
            .bind(
                "vm",
                "CreateVirtualMachine",
                vec![
                    (
                        "NetworkInterfaceCardId",
                        Arg::field("nic", "NetworkInterfaceCardId"),
                    ),
                    ("Size", Arg::str("Standard_B1s")),
                ],
            )
            // Deleting an attached NIC must fail.
            .call(
                "DeleteNetworkInterfaceCard",
                vec![(
                    "NetworkInterfaceCardId",
                    Arg::field("nic", "NetworkInterfaceCardId"),
                )],
            )
            // Resizing a running VM must fail (must deallocate first).
            .call(
                "ResizeVirtualMachine",
                vec![
                    ("VirtualMachineId", Arg::field("vm", "VirtualMachineId")),
                    ("Size", Arg::str("Standard_D4s")),
                ],
            ),
    });

    out
}
