#![deny(missing_docs)]

//! # lce-devops — DevOps programs and evaluation scenarios
//!
//! DevOps engineers drive the cloud programmatically; emulators exist so
//! those programs can be developed and tested without provisioning real
//! resources (§1–2 of the paper). This crate provides:
//!
//! * [`program::Program`] — a small IaC-style program: a sequence of API
//!   steps whose arguments may reference the response fields of earlier
//!   steps (`let vpc = CreateVpc(...); CreateSubnet(VpcId = vpc.VpcId)`),
//!   which is what makes the same program runnable against *different*
//!   backends that generate different resource ids;
//! * [`runner`] — executes programs against any
//!   [`Backend`](lce_emulator::Backend) and compares recorded runs across
//!   backends (response alignment per §4.3: identical error codes,
//!   loosely-equal fields, generated ids masked);
//! * [`scenarios`] — the paper's evaluation programs: the §5 basic
//!   functionality program, the 3 × 4 accuracy matrix of Fig. 3
//!   (provisioning / state updates / edge cases), and the Stratus
//!   multi-cloud replica.

pub mod program;
pub mod runner;
pub mod scenarios;

pub use program::{Arg, Program, Step};
pub use runner::{compare_runs, run_program, ProgramRun, RunComparison, StepRecord};
