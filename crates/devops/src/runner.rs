//! Executing programs against backends and comparing recorded runs.

use crate::program::{Arg, Program};
use lce_emulator::{ApiCall, ApiResponse, Backend, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One executed step: the concrete call sent and the response received.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Concrete call (references resolved).
    pub call: ApiCall,
    /// The backend's response.
    pub response: ApiResponse,
}

/// A recorded program execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramRun {
    /// Program name.
    pub program: String,
    /// Backend name.
    pub backend: String,
    /// Per-step records, in order.
    pub steps: Vec<StepRecord>,
}

impl ProgramRun {
    /// `true` if every step succeeded.
    pub fn all_ok(&self) -> bool {
        self.steps.iter().all(|s| s.response.is_ok())
    }

    /// Error codes in step order (`None` for successful steps).
    pub fn error_codes(&self) -> Vec<Option<String>> {
        self.steps
            .iter()
            .map(|s| s.response.error_code().map(|c| c.to_string()))
            .collect()
    }
}

/// Execute a program against a backend. References to earlier bindings
/// resolve to response fields; a reference to a missing binding or field
/// resolves to `null` (and the call proceeds — divergence in whether the
/// backend then errors is precisely what differential testing compares).
pub fn run_program<B: Backend + ?Sized>(program: &Program, backend: &mut B) -> ProgramRun {
    let mut bindings: BTreeMap<String, ApiResponse> = BTreeMap::new();
    let mut steps = Vec::new();
    for step in &program.steps {
        let mut call = ApiCall::new(step.api.clone());
        for (name, arg) in &step.args {
            let value = match arg {
                Arg::Lit(v) => v.clone(),
                Arg::FieldOf(binding, field) => bindings
                    .get(binding)
                    .and_then(|r| r.field(field))
                    .cloned()
                    .unwrap_or(Value::Null),
            };
            call.args.insert(name.clone(), value);
        }
        let response = backend.invoke(&call);
        if let Some(bind) = &step.bind {
            bindings.insert(bind.clone(), response.clone());
        }
        steps.push(StepRecord { call, response });
    }
    ProgramRun {
        program: program.name.clone(),
        backend: backend.name().to_string(),
        steps,
    }
}

/// The outcome of comparing the same program's runs on two backends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunComparison {
    /// Program name.
    pub program: String,
    /// Steps compared.
    pub total_steps: usize,
    /// Steps whose responses aligned (ids masked).
    pub aligned_steps: usize,
    /// Indices and a short description of each divergent step.
    pub divergences: Vec<(usize, String)>,
}

impl RunComparison {
    /// `true` if the whole run aligned — the per-trace accuracy criterion
    /// of Fig. 3.
    pub fn fully_aligned(&self) -> bool {
        self.aligned_steps == self.total_steps
    }
}

/// Compare two runs of the same program step by step.
pub fn compare_runs(a: &ProgramRun, b: &ProgramRun) -> RunComparison {
    let total = a.steps.len().max(b.steps.len());
    let mut aligned = 0usize;
    let mut divergences = Vec::new();
    for i in 0..total {
        match (a.steps.get(i), b.steps.get(i)) {
            (Some(sa), Some(sb)) => {
                if sa.response.aligned_with_ids_masked(&sb.response) {
                    aligned += 1;
                } else {
                    divergences
                        .push((i, describe_divergence(&sa.call, &sa.response, &sb.response)));
                }
            }
            _ => divergences.push((i, "step missing in one run".to_string())),
        }
    }
    RunComparison {
        program: a.program.clone(),
        total_steps: total,
        aligned_steps: aligned,
        divergences,
    }
}

fn describe_divergence(call: &ApiCall, a: &ApiResponse, b: &ApiResponse) -> String {
    match (&a.error, &b.error) {
        (None, Some(e)) => format!(
            "{}: first succeeded, second failed with {}",
            call.api, e.code
        ),
        (Some(e), None) => format!(
            "{}: first failed with {}, second succeeded",
            call.api, e.code
        ),
        (Some(ea), Some(eb)) => format!(
            "{}: error codes differ ({} vs {})",
            call.api, ea.code, eb.code
        ),
        (None, None) => format!("{}: response fields differ", call.api),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use lce_cloud::nimbus_provider;

    fn vpc_program() -> Program {
        Program::new("vpc-subnet")
            .bind(
                "vpc",
                "CreateVpc",
                vec![
                    ("CidrBlock", Arg::str("10.0.0.0/16")),
                    ("Region", Arg::str("us-east")),
                ],
            )
            .bind(
                "subnet",
                "CreateSubnet",
                vec![
                    ("VpcId", Arg::field("vpc", "VpcId")),
                    ("CidrBlock", Arg::str("10.0.1.0/24")),
                    ("PrefixLength", Arg::int(24)),
                    ("Zone", Arg::str("us-east-1a")),
                ],
            )
            .call(
                "DescribeSubnet",
                vec![("SubnetId", Arg::field("subnet", "SubnetId"))],
            )
    }

    #[test]
    fn run_resolves_references() {
        let mut cloud = nimbus_provider().golden_cloud();
        let run = run_program(&vpc_program(), &mut cloud);
        assert!(run.all_ok(), "{:?}", run.error_codes());
        assert_eq!(run.steps.len(), 3);
        // The describe call received the subnet's real id.
        let id = run.steps[2].call.args.get("SubnetId").unwrap();
        assert!(matches!(id, Value::Ref(_)));
    }

    #[test]
    fn missing_binding_resolves_to_null() {
        let p =
            Program::new("bad").call("DescribeVpc", vec![("VpcId", Arg::field("ghost", "VpcId"))]);
        let mut cloud = nimbus_provider().golden_cloud();
        let run = run_program(&p, &mut cloud);
        assert!(!run.all_ok());
    }

    #[test]
    fn identical_backends_align() {
        let mut a = nimbus_provider().golden_cloud();
        let mut b = nimbus_provider().golden_cloud();
        // Make b's ids diverge by burning one.
        let _ = b.invoke(&ApiCall::new("CreateInternetGateway"));
        let p = vpc_program();
        let ra = run_program(&p, &mut a);
        let rb = run_program(&p, &mut b);
        let cmp = compare_runs(&ra, &rb);
        assert!(cmp.fully_aligned(), "{:?}", cmp.divergences);
    }

    #[test]
    fn divergence_reported_with_context() {
        let mut a = nimbus_provider().golden_cloud();
        let p = vpc_program();
        let ra = run_program(&p, &mut a);
        let mut rb = ra.clone();
        rb.steps[2].response = ApiResponse::err(lce_emulator::ApiError::new("Boom", "x"));
        let cmp = compare_runs(&ra, &rb);
        assert!(!cmp.fully_aligned());
        assert_eq!(cmp.divergences.len(), 1);
        assert!(cmp.divergences[0].1.contains("DescribeSubnet"));
    }
}
