//! The DevOps program representation.

use lce_emulator::Value;
use serde::{Deserialize, Serialize};

/// An argument in a program step: either a literal value or a reference to
/// a response field of an earlier, named step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Arg {
    /// A literal value.
    Lit(Value),
    /// `FieldOf(binding, field)` — the named earlier step's response field.
    FieldOf(String, String),
}

impl Arg {
    /// Convenience: string literal.
    pub fn str(s: impl Into<String>) -> Arg {
        Arg::Lit(Value::Str(s.into()))
    }
    /// Convenience: integer literal.
    pub fn int(i: i64) -> Arg {
        Arg::Lit(Value::Int(i))
    }
    /// Convenience: boolean literal.
    pub fn bool(b: bool) -> Arg {
        Arg::Lit(Value::Bool(b))
    }
    /// Convenience: reference to an earlier binding's field.
    pub fn field(binding: impl Into<String>, field: impl Into<String>) -> Arg {
        Arg::FieldOf(binding.into(), field.into())
    }
}

/// One step of a program: an API call with (possibly symbolic) arguments,
/// optionally binding the response to a name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Binding name for the response (`let <bind> = ...`), if any.
    pub bind: Option<String>,
    /// API to invoke.
    pub api: String,
    /// Named arguments.
    pub args: Vec<(String, Arg)>,
}

/// A DevOps program: a named sequence of steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl Program {
    /// Start building a program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a step that binds its response.
    pub fn bind(
        mut self,
        bind: impl Into<String>,
        api: impl Into<String>,
        args: Vec<(&str, Arg)>,
    ) -> Self {
        self.steps.push(Step {
            bind: Some(bind.into()),
            api: api.into(),
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self
    }

    /// Append a step without binding.
    pub fn call(mut self, api: impl Into<String>, args: Vec<(&str, Arg)>) -> Self {
        self.steps.push(Step {
            bind: None,
            api: api.into(),
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_steps_in_order() {
        let p = Program::new("demo")
            .bind(
                "vpc",
                "CreateVpc",
                vec![("CidrBlock", Arg::str("10.0.0.0/16"))],
            )
            .call("DeleteVpc", vec![("VpcId", Arg::field("vpc", "VpcId"))]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.steps[0].bind.as_deref(), Some("vpc"));
        assert_eq!(p.steps[1].api, "DeleteVpc");
        assert_eq!(
            p.steps[1].args[0].1,
            Arg::FieldOf("vpc".into(), "VpcId".into())
        );
    }
}
