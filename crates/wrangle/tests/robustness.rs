//! Robustness tests for the wrangling adapters: malformed documentation
//! must produce diagnosable errors, and benign noise (pagination, blank
//! lines, unknown sections) must be tolerated — real documentation is
//! messy.

use lce_cloud::{nimbus_provider, DocFidelity, RenderedDocs};
use lce_wrangle::{DocAdapter, NimbusAdapter, StratusAdapter};

fn nimbus_text() -> String {
    let (docs, _) = nimbus_provider().render_docs(DocFidelity::Complete);
    match docs {
        RenderedDocs::Consolidated(t) => t,
        _ => unreachable!(),
    }
}

#[test]
fn empty_document_is_an_error() {
    let err = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(String::new()))
        .unwrap_err();
    assert!(err.message.contains("no resource sections"));
}

#[test]
fn extra_page_markers_are_harmless() {
    // Pagination is cosmetic; injecting extra markers must not change the
    // parse.
    let text = nimbus_text();
    let baseline = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(text.clone()))
        .unwrap();
    let noisy: String = text
        .lines()
        .flat_map(|l| [l.to_string(), "--- Page 999 ---".to_string()])
        .collect::<Vec<_>>()
        .join("\n");
    let reparsed = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(noisy))
        .unwrap();
    assert_eq!(baseline, reparsed);
}

#[test]
fn unknown_prose_lines_are_skipped() {
    // Cloud docs interleave marketing prose; unknown lines between
    // sections must not break resource recovery.
    let text = nimbus_text().replace(
        "==== Resource: Vpc ====",
        "Try our new console experience!\n==== Resource: Vpc ====",
    );
    let sections = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(text))
        .unwrap();
    assert!(sections.iter().any(|s| s.name == "Vpc"));
}

#[test]
fn malformed_containment_line_is_reported() {
    let text = nimbus_text().replace(
        "Contained in: Vpc (via attribute `vpc`)",
        "Contained in: Vpc sort of",
    );
    let err = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(text))
        .unwrap_err();
    assert!(err.message.contains("containment"), "{}", err);
}

#[test]
fn bad_behaviour_indentation_is_reported() {
    let text = nimbus_text().replace("  - Sets attribute `cidr`", "   - Sets attribute `cidr`");
    let err = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(text))
        .unwrap_err();
    assert!(err.message.contains("indentation"), "{}", err);
}

#[test]
fn section_without_id_param_is_reported() {
    let text = nimbus_text().replace("Identifier parameter: VpcId\n", "");
    let err = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(text))
        .unwrap_err();
    assert!(err.message.contains("identifier parameter"), "{}", err);
}

#[test]
fn stratus_page_without_header_is_reported() {
    let page = lce_cloud::DocPage {
        path: "docs/x".into(),
        title: "broken".into(),
        body: "**Service:** compute\n".into(),
    };
    let err = StratusAdapter
        .wrangle(&RenderedDocs::Pages(vec![page]))
        .unwrap_err();
    assert!(err.message.contains("resource header"), "{}", err);
}

#[test]
fn stratus_bad_property_row_is_reported() {
    let (docs, _) = lce_cloud::stratus_provider().render_docs(DocFidelity::Complete);
    let RenderedDocs::Pages(mut pages) = docs else {
        unreachable!()
    };
    let page = pages
        .iter_mut()
        .find(|p| p.body.contains("| address_space | str |  |  |"))
        .expect("virtual-network page");
    page.body = page
        .body
        .replace("| address_space | str |  |  |", "| address_space | str |");
    let err = StratusAdapter
        .wrangle(&RenderedDocs::Pages(pages))
        .unwrap_err();
    assert!(err.message.contains("property row"), "{}", err);
}

#[test]
fn wrangled_sections_preserve_document_order() {
    let sections = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(nimbus_text()))
        .unwrap();
    // The renderer iterates the catalog in name order; the adapter must
    // preserve it (the dependency graph builder relies on names only, but
    // order stability keeps everything deterministic).
    let names: Vec<&str> = sections.iter().map(|s| s.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn behaviour_clause_text_is_verbatim() {
    // The clause text must come through byte-identical — extraction
    // depends on it.
    let sections = NimbusAdapter
        .wrangle(&RenderedDocs::Consolidated(nimbus_text()))
        .unwrap();
    let vpc = sections.iter().find(|s| s.name == "Vpc").unwrap();
    let create = vpc.api("CreateVpc").unwrap();
    assert!(create.behavior.iter().any(|b| b.text
        == "Fails with error `InvalidParameterValue` (\"region must be us-east or us-west\") unless `arg(Region) in [\"us-east\", \"us-west\"]`."));
}
