//! Adapter for the Stratus scattered web-page documentation.
//!
//! Parses one markdown-flavoured page per resource: `# Resource:` headers,
//! bold key/value fields, a properties table, and `## Operation:` blocks
//! whose behaviour is a numbered list using `If`/`Else:` keywords. The
//! adapter normalizes the behaviour clauses back to the shared dialect
//! (`When`/`Otherwise:`) so downstream synthesis is provider-agnostic.

use crate::adapter::{split_name_type, DocAdapter, WrangleError};
use crate::section::{ApiDoc, BehaviorLine, ParamDoc, ResourceDoc, StateDoc};
use lce_cloud::RenderedDocs;

/// Parser for Stratus-style web documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StratusAdapter;

impl DocAdapter for StratusAdapter {
    fn provider_name(&self) -> &str {
        "stratus"
    }

    fn wrangle(&self, docs: &RenderedDocs) -> Result<Vec<ResourceDoc>, WrangleError> {
        let pages = match docs {
            RenderedDocs::Pages(pages) => pages,
            RenderedDocs::Consolidated(_) => {
                return Err(WrangleError::new(
                    "the Stratus adapter expects web pages, found a consolidated document",
                ))
            }
        };
        pages.iter().map(|p| parse_page(&p.body)).collect()
    }
}

fn unquote(s: &str) -> &str {
    s.trim().trim_matches('`')
}

fn parse_page(body: &str) -> Result<ResourceDoc, WrangleError> {
    let lines: Vec<&str> = body.lines().collect();
    let mut doc = ResourceDoc {
        name: String::new(),
        service: String::new(),
        summary: String::new(),
        id_param: String::new(),
        parent: None,
        states: Vec::new(),
        apis: Vec::new(),
    };
    let mut i = 0;
    while i < lines.len() {
        let l = lines[i].trim_end();
        if let Some(v) = l.strip_prefix("# Resource: ") {
            doc.name = v.to_string();
        } else if let Some(v) = l.strip_prefix("> ") {
            doc.summary = v.to_string();
        } else if let Some(v) = l.strip_prefix("**Service:** ") {
            doc.service = v.to_string();
        } else if let Some(v) = l.strip_prefix("**Identifier argument:** ") {
            doc.id_param = v.to_string();
        } else if let Some(v) = l.strip_prefix("**Parent:** ") {
            if v != "none" {
                let (parent, via) = v
                    .split_once(" via ")
                    .ok_or_else(|| WrangleError::new(format!("bad parent line: {}", l)))?;
                doc.parent = Some((parent.to_string(), unquote(via).to_string()));
            }
        } else if l == "## Properties" {
            i += 1;
            // Skip the header and separator rows.
            while i < lines.len() && lines[i].starts_with('|') {
                let row = lines[i];
                i += 1;
                if row.starts_with("| Name") || row.starts_with("|---") {
                    continue;
                }
                doc.states.push(parse_property_row(row)?);
            }
            continue;
        } else if l.starts_with("## Operation: ") {
            let (api, consumed) = parse_operation(&lines[i..])?;
            doc.apis.push(api);
            i += consumed;
            continue;
        }
        i += 1;
    }
    if doc.name.is_empty() {
        return Err(WrangleError::new("page lacks a resource header"));
    }
    Ok(doc)
}

fn parse_property_row(row: &str) -> Result<StateDoc, WrangleError> {
    let cells: Vec<&str> = row.trim_matches('|').split('|').map(|c| c.trim()).collect();
    if cells.len() != 4 {
        return Err(WrangleError::new(format!("bad property row: {}", row)));
    }
    Ok(StateDoc {
        name: cells[0].to_string(),
        ty_text: cells[1].to_string(),
        nullable: cells[2].contains("nullable"),
        default_text: if cells[3].is_empty() {
            None
        } else {
            Some(cells[3].to_string())
        },
    })
}

/// Parse one `## Operation:` block; returns the ApiDoc and lines consumed.
fn parse_operation(lines: &[&str]) -> Result<(ApiDoc, usize), WrangleError> {
    let name = lines[0]
        .trim_end()
        .strip_prefix("## Operation: ")
        .expect("caller checked")
        .to_string();
    let mut api = ApiDoc {
        name,
        kind_text: String::new(),
        summary: String::new(),
        internal: false,
        params: Vec::new(),
        behavior: Vec::new(),
    };
    let mut i = 1;
    while i < lines.len() {
        let l = lines[i].trim_end();
        if l.starts_with("## ") {
            break;
        }
        if let Some(v) = l.strip_prefix("*Category:* ") {
            api.kind_text = v.to_string();
        } else if l == "*Visibility:* internal" {
            api.internal = true;
        } else if let Some(v) = l.strip_prefix("*Summary:* ") {
            api.summary = v.to_string();
        } else if l == "*Request parameters:* none" {
            // nothing
        } else if l == "*Request parameters:*" {
            i += 1;
            while i < lines.len() {
                let Some(item) = lines[i].strip_prefix("* ") else {
                    break;
                };
                api.params.push(parse_request_param(item)?);
                i += 1;
            }
            continue;
        } else if l == "*Behavior:* none documented." {
            // nothing
        } else if l == "*Behavior:*" {
            i += 1;
            while i < lines.len() {
                let raw = lines[i];
                let trimmed = raw.trim_start();
                let indent = raw.len() - trimmed.len();
                if !indent.is_multiple_of(3) {
                    break;
                }
                let depth = indent / 3;
                let text = if trimmed == "Else:" {
                    "Otherwise:".to_string()
                } else if let Some((_num, rest)) = split_numbered(trimmed) {
                    rest.replace("If `", "When `")
                } else {
                    break;
                };
                api.behavior.push(BehaviorLine { depth, text });
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    Ok((api, i))
}

/// Split `3. rest` into (3, "rest").
fn split_numbered(s: &str) -> Option<(usize, String)> {
    let (num, rest) = s.split_once(". ")?;
    let n: usize = num.parse().ok()?;
    Some((n, rest.to_string()))
}

fn parse_request_param(item: &str) -> Result<ParamDoc, WrangleError> {
    // `` `Name: ty` `` optionally followed by ` (optional)`.
    let mut optional = false;
    let mut body = item.trim();
    if let Some(stripped) = body.strip_suffix(" (optional)") {
        optional = true;
        body = stripped;
    }
    let inner = unquote(body);
    let (name, ty_text) = split_name_type(inner)
        .ok_or_else(|| WrangleError::new(format!("bad request parameter: {}", item)))?;
    Ok(ParamDoc {
        name,
        ty_text,
        optional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_cloud::{stratus_provider, DocFidelity};

    fn sections() -> Vec<ResourceDoc> {
        let p = stratus_provider();
        let (docs, _) = p.render_docs(DocFidelity::Complete);
        StratusAdapter.wrangle(&docs).unwrap()
    }

    #[test]
    fn recovers_every_resource() {
        assert_eq!(sections().len(), stratus_provider().catalog.len());
    }

    #[test]
    fn vnet_fields_recovered() {
        let secs = sections();
        let vnet = secs.iter().find(|s| s.name == "VirtualNetwork").unwrap();
        assert_eq!(vnet.service, "compute");
        assert_eq!(vnet.id_param, "VirtualNetworkId");
        assert!(vnet.states.iter().any(|s| s.name == "address_space"));
        let ddos = vnet
            .states
            .iter()
            .find(|s| s.name == "ddos_protection")
            .unwrap();
        assert_eq!(ddos.default_text.as_deref(), Some("false"));
    }

    #[test]
    fn behavior_clauses_normalized_to_shared_dialect() {
        let secs = sections();
        let vm = secs.iter().find(|s| s.name == "VirtualMachine").unwrap();
        let create = vm.api("CreateVirtualMachine").unwrap();
        assert!(create
            .behavior
            .iter()
            .any(|b| b.text.starts_with("When `") || b.text.starts_with("Sets attribute")));
        assert!(!create.behavior.iter().any(|b| b.text.starts_with("If `")));
    }

    #[test]
    fn parent_recovered() {
        let secs = sections();
        let subnet = secs.iter().find(|s| s.name == "VnetSubnet").unwrap();
        assert_eq!(
            subnet.parent,
            Some(("VirtualNetwork".to_string(), "vnet".to_string()))
        );
    }

    #[test]
    fn internal_operations_flagged() {
        let secs = sections();
        let nic = secs
            .iter()
            .find(|s| s.name == "NetworkInterfaceCard")
            .unwrap();
        assert!(nic.api("BindPublicIp").unwrap().internal);
        assert!(!nic.api("CreateNetworkInterfaceCard").unwrap().internal);
    }

    #[test]
    fn rejects_consolidated_input() {
        let err = StratusAdapter
            .wrangle(&RenderedDocs::Consolidated(String::new()))
            .unwrap_err();
        assert!(err.message.contains("web pages"));
    }
}
