//! The provider-neutral structured documentation form.

use serde::{Deserialize, Serialize};

/// One documented state attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDoc {
    /// Attribute name.
    pub name: String,
    /// Type text in the spec language's type syntax (e.g. `ref(Vpc)`).
    pub ty_text: String,
    /// Documented as nullable.
    pub nullable: bool,
    /// Default value text, if documented.
    pub default_text: Option<String>,
}

/// One documented API parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDoc {
    /// Parameter name.
    pub name: String,
    /// Type text.
    pub ty_text: String,
    /// Documented as optional.
    pub optional: bool,
}

/// One behaviour clause recovered from the docs, with its nesting depth.
/// The clause text is in the shared dialect (`Sets attribute …`,
/// `Fails with error …`, `When …:`, `Otherwise:`) regardless of provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BehaviorLine {
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Normalized clause text.
    pub text: String,
}

/// One documented API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiDoc {
    /// API name.
    pub name: String,
    /// Category text: `create`/`destroy`/`describe`/`modify`.
    pub kind_text: String,
    /// One-line summary, if documented.
    pub summary: String,
    /// Marked internal (bookkeeping) in the docs.
    pub internal: bool,
    /// Parameters in order.
    pub params: Vec<ParamDoc>,
    /// Behaviour clauses in order.
    pub behavior: Vec<BehaviorLine>,
}

/// One resource section: everything the docs say about a resource type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceDoc {
    /// Resource type name.
    pub name: String,
    /// Owning service.
    pub service: String,
    /// One-line summary.
    pub summary: String,
    /// Identifier parameter name.
    pub id_param: String,
    /// Containment parent and linking attribute, if documented.
    pub parent: Option<(String, String)>,
    /// State attributes.
    pub states: Vec<StateDoc>,
    /// APIs.
    pub apis: Vec<ApiDoc>,
}

impl ResourceDoc {
    /// Look up an API by name.
    pub fn api(&self, name: &str) -> Option<&ApiDoc> {
        self.apis.iter().find(|a| a.name == name)
    }

    /// Names of other resources this section mentions in `ref(...)` types —
    /// the raw material for the resource-level dependency graph the
    /// incremental extractor walks.
    pub fn referenced_resources(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |tyt: &str| {
            // Find every `ref(Name)` occurrence in the type text.
            let mut rest = tyt;
            while let Some(pos) = rest.find("ref(") {
                let tail = &rest[pos + 4..];
                if let Some(end) = tail.find(')') {
                    let name = tail[..end].to_string();
                    if !out.contains(&name) {
                        out.push(name);
                    }
                    rest = &tail[end..];
                } else {
                    break;
                }
            }
        };
        for s in &self.states {
            push(&s.ty_text);
        }
        for a in &self.apis {
            for p in &a.params {
                push(&p.ty_text);
            }
        }
        if let Some((p, _)) = &self.parent {
            if !out.contains(p) {
                out.push(p.clone());
            }
        }
        out.retain(|n| n != &self.name);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_resources_from_type_texts() {
        let doc = ResourceDoc {
            name: "Subnet".into(),
            service: "compute".into(),
            summary: String::new(),
            id_param: "SubnetId".into(),
            parent: Some(("Vpc".into(), "vpc".into())),
            states: vec![StateDoc {
                name: "vpc".into(),
                ty_text: "ref(Vpc)".into(),
                nullable: false,
                default_text: None,
            }],
            apis: vec![ApiDoc {
                name: "CreateSubnet".into(),
                kind_text: "create".into(),
                summary: String::new(),
                internal: false,
                params: vec![ParamDoc {
                    name: "GatewayId".into(),
                    ty_text: "list(ref(InternetGateway))".into(),
                    optional: false,
                }],
                behavior: vec![],
            }],
        };
        let refs = doc.referenced_resources();
        assert!(refs.contains(&"Vpc".to_string()));
        assert!(refs.contains(&"InternetGateway".to_string()));
        assert!(!refs.contains(&"Subnet".to_string()));
    }
}
