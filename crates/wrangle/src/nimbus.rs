//! Adapter for the Nimbus consolidated PDF-style reference.
//!
//! Handles the format's pagination (strips `--- Page N ---` markers and the
//! table of contents), then parses `==== Resource: X ====` sections with
//! their attribute lists, API blocks and indented behaviour clauses.

use crate::adapter::{split_name_type, DocAdapter, WrangleError};
use crate::section::{ApiDoc, BehaviorLine, ParamDoc, ResourceDoc, StateDoc};
use lce_cloud::RenderedDocs;

/// Parser for Nimbus-style consolidated documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NimbusAdapter;

impl DocAdapter for NimbusAdapter {
    fn provider_name(&self) -> &str {
        "nimbus"
    }

    fn wrangle(&self, docs: &RenderedDocs) -> Result<Vec<ResourceDoc>, WrangleError> {
        let text = match docs {
            RenderedDocs::Consolidated(text) => text,
            RenderedDocs::Pages(_) => {
                return Err(WrangleError::new(
                    "the Nimbus adapter expects a consolidated document, found web pages",
                ))
            }
        };
        // Depaginate: drop page markers, keep everything else verbatim.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with("--- Page "))
            .collect();

        let mut sections = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            if let Some(name) = parse_section_header(lines[i]) {
                let start = i;
                let mut end = i + 1;
                while end < lines.len() && parse_section_header(lines[end]).is_none() {
                    end += 1;
                }
                sections.push(parse_resource(&name, &lines[start..end])?);
                i = end;
            } else {
                i += 1;
            }
        }
        if sections.is_empty() {
            return Err(WrangleError::new("no resource sections found"));
        }
        Ok(sections)
    }
}

fn parse_section_header(line: &str) -> Option<String> {
    let rest = line.strip_prefix("==== Resource: ")?;
    let name = rest.strip_suffix(" ====")?;
    Some(name.to_string())
}

/// Strip a backtick-quoted value: `` `x` `` → `x`.
fn unquote(s: &str) -> &str {
    s.trim().trim_matches('`')
}

fn parse_resource(name: &str, lines: &[&str]) -> Result<ResourceDoc, WrangleError> {
    let mut doc = ResourceDoc {
        name: name.to_string(),
        service: String::new(),
        summary: String::new(),
        id_param: String::new(),
        parent: None,
        states: Vec::new(),
        apis: Vec::new(),
    };
    let mut i = 1; // skip header
                   // Resource-level fields until the attribute list.
    while i < lines.len() {
        let l = lines[i].trim_end();
        if let Some(v) = l.strip_prefix("Service: ") {
            doc.service = v.to_string();
        } else if let Some(v) = l.strip_prefix("Summary: ") {
            doc.summary = v.to_string();
        } else if let Some(v) = l.strip_prefix("Identifier parameter: ") {
            doc.id_param = v.to_string();
        } else if let Some(v) = l.strip_prefix("Contained in: ") {
            if v != "(none)" {
                // `Vpc (via attribute `vpc`)`
                let (parent, rest) = v
                    .split_once(" (via attribute ")
                    .ok_or_else(|| WrangleError::new(format!("bad containment line: {}", l)))?;
                let via = unquote(rest.trim_end_matches(')'));
                doc.parent = Some((parent.to_string(), via.to_string()));
            }
        } else if l == "State attributes:" {
            i += 1;
            break;
        }
        i += 1;
    }
    // State attributes: `  - name: ty [nullable] [default: lit]`.
    while i < lines.len() {
        let l = lines[i];
        let Some(item) = l.strip_prefix("  - ") else {
            break;
        };
        doc.states.push(parse_state_line(item)?);
        i += 1;
    }
    // API blocks.
    while i < lines.len() {
        let l = lines[i].trim_end();
        let (api_name, internal) = if let Some(v) = l.strip_prefix("Internal API: ") {
            (v.to_string(), true)
        } else if let Some(v) = l.strip_prefix("API: ") {
            (v.to_string(), false)
        } else {
            i += 1;
            continue;
        };
        let mut api = ApiDoc {
            name: api_name,
            kind_text: String::new(),
            summary: String::new(),
            internal,
            params: Vec::new(),
            behavior: Vec::new(),
        };
        i += 1;
        while i < lines.len() {
            let l = lines[i].trim_end();
            if l.starts_with("API: ") || l.starts_with("Internal API: ") {
                break;
            }
            if let Some(v) = l.strip_prefix("Category: ") {
                api.kind_text = v.to_string();
            } else if let Some(v) = l.strip_prefix("Summary: ") {
                api.summary = v.to_string();
            } else if l == "Parameters: none" {
                // nothing
            } else if l == "Parameters:" {
                i += 1;
                while i < lines.len() {
                    let Some(item) = lines[i].strip_prefix("  - ") else {
                        break;
                    };
                    api.params.push(parse_param_line(item)?);
                    i += 1;
                }
                continue;
            } else if l == "Behavior: none documented." {
                // nothing
            } else if l == "Behavior:" {
                i += 1;
                while i < lines.len() {
                    let raw = lines[i];
                    let trimmed = raw.trim_start();
                    if !trimmed.starts_with("- ") {
                        break;
                    }
                    let indent = raw.len() - trimmed.len();
                    if indent < 2 || !indent.is_multiple_of(2) {
                        return Err(WrangleError::new(format!(
                            "bad behaviour indentation in {}: {:?}",
                            api.name, raw
                        )));
                    }
                    api.behavior.push(BehaviorLine {
                        depth: indent / 2 - 1,
                        text: trimmed[2..].to_string(),
                    });
                    i += 1;
                }
                continue;
            }
            i += 1;
        }
        doc.apis.push(api);
    }
    if doc.id_param.is_empty() {
        return Err(WrangleError::new(format!(
            "resource {} lacks an identifier parameter",
            name
        )));
    }
    Ok(doc)
}

fn parse_state_line(item: &str) -> Result<StateDoc, WrangleError> {
    // `name: ty [nullable] [default: lit]`
    let mut rest = item.to_string();
    let mut nullable = false;
    let mut default_text = None;
    if let Some(pos) = rest.find(" [default: ") {
        let tail = rest[pos + 11..].to_string();
        let val = tail
            .strip_suffix(']')
            .ok_or_else(|| WrangleError::new(format!("bad default in state line: {}", item)))?;
        default_text = Some(val.to_string());
        rest.truncate(pos);
    }
    if let Some(pos) = rest.find(" [nullable]") {
        nullable = true;
        rest.replace_range(pos..pos + 11, "");
    }
    let (name, ty_text) = split_name_type(&rest)
        .ok_or_else(|| WrangleError::new(format!("bad state line: {}", item)))?;
    Ok(StateDoc {
        name,
        ty_text,
        nullable,
        default_text,
    })
}

fn parse_param_line(item: &str) -> Result<ParamDoc, WrangleError> {
    let mut rest = item.to_string();
    let mut optional = false;
    if let Some(stripped) = rest.strip_suffix(" [optional]") {
        optional = true;
        rest = stripped.to_string();
    }
    let (name, ty_text) = split_name_type(&rest)
        .ok_or_else(|| WrangleError::new(format!("bad parameter line: {}", item)))?;
    Ok(ParamDoc {
        name,
        ty_text,
        optional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_cloud::{nimbus_provider, DocFidelity};

    fn sections() -> Vec<ResourceDoc> {
        let p = nimbus_provider();
        let (docs, _) = p.render_docs(DocFidelity::Complete);
        NimbusAdapter.wrangle(&docs).unwrap()
    }

    #[test]
    fn recovers_every_resource() {
        let p = nimbus_provider();
        let secs = sections();
        assert_eq!(secs.len(), p.catalog.len());
    }

    #[test]
    fn vpc_section_fields() {
        let secs = sections();
        let vpc = secs.iter().find(|s| s.name == "Vpc").unwrap();
        assert_eq!(vpc.service, "compute");
        assert_eq!(vpc.id_param, "VpcId");
        assert!(vpc.parent.is_none());
        assert!(vpc.states.iter().any(|s| s.name == "instance_tenancy"));
        let create = vpc.api("CreateVpc").unwrap();
        assert_eq!(create.kind_text, "create");
        assert!(create.params.iter().any(|p| p.name == "CidrBlock"));
        assert!(create
            .behavior
            .iter()
            .any(|b| b.text.contains("Sets attribute `cidr`")));
    }

    #[test]
    fn subnet_parent_recovered() {
        let secs = sections();
        let subnet = secs.iter().find(|s| s.name == "Subnet").unwrap();
        assert_eq!(subnet.parent, Some(("Vpc".to_string(), "vpc".to_string())));
    }

    #[test]
    fn nested_behavior_depths_recovered() {
        let secs = sections();
        let vpc = secs.iter().find(|s| s.name == "Vpc").unwrap();
        let modify = vpc.api("ModifyVpcAttribute").unwrap();
        assert!(modify
            .behavior
            .iter()
            .any(|b| b.depth == 0 && b.text.starts_with("When")));
        assert!(modify.behavior.iter().any(|b| b.depth == 1));
    }

    #[test]
    fn internal_apis_flagged() {
        let secs = sections();
        let vpc = secs.iter().find(|s| s.name == "Vpc").unwrap();
        assert!(vpc.api("ReserveCidr").unwrap().internal);
        assert!(!vpc.api("CreateVpc").unwrap().internal);
    }

    #[test]
    fn optional_params_flagged() {
        let secs = sections();
        let vpc = secs.iter().find(|s| s.name == "Vpc").unwrap();
        let create = vpc.api("CreateVpc").unwrap();
        let tenancy = create
            .params
            .iter()
            .find(|p| p.name == "InstanceTenancy")
            .unwrap();
        assert!(tenancy.optional);
        let cidr = create
            .params
            .iter()
            .find(|p| p.name == "CidrBlock")
            .unwrap();
        assert!(!cidr.optional);
    }

    #[test]
    fn defaults_recovered() {
        let secs = sections();
        let vpc = secs.iter().find(|s| s.name == "Vpc").unwrap();
        let dns = vpc
            .states
            .iter()
            .find(|s| s.name == "enable_dns_support")
            .unwrap();
        assert_eq!(dns.default_text.as_deref(), Some("true"));
    }

    #[test]
    fn rejects_pages_input() {
        let err = NimbusAdapter
            .wrangle(&RenderedDocs::Pages(vec![]))
            .unwrap_err();
        assert!(err.message.contains("consolidated"));
    }
}
