//! The provider-adapter trait and dispatch.

use crate::nimbus::NimbusAdapter;
use crate::section::ResourceDoc;
use crate::stratus::StratusAdapter;
use lce_cloud::{DocStyle, Provider, RenderedDocs};
use std::fmt;

/// An error while wrangling documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrangleError {
    /// What went wrong, with enough context to find the offending text.
    pub message: String,
}

impl WrangleError {
    /// Create a new wrangle error.
    pub fn new(message: impl Into<String>) -> Self {
        WrangleError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WrangleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wrangle error: {}", self.message)
    }
}

impl std::error::Error for WrangleError {}

/// A provider-specific documentation parser. Implementations recover the
/// structured [`ResourceDoc`] sections from a raw corpus. Per the paper,
/// this adapter is *the* provider-specific part of the whole pipeline
/// ("The primary additional effort in generalizing to other cloud providers
/// lies in documentation wrangling", §5).
pub trait DocAdapter {
    /// The provider this adapter understands.
    fn provider_name(&self) -> &str;

    /// Parse the corpus into resource sections, in document order.
    fn wrangle(&self, docs: &RenderedDocs) -> Result<Vec<ResourceDoc>, WrangleError>;
}

/// Render nothing: pick the right adapter for a provider's doc style and
/// run it over the given corpus.
pub fn wrangle_provider(
    provider: &Provider,
    docs: &RenderedDocs,
) -> Result<Vec<ResourceDoc>, WrangleError> {
    match provider.doc_style {
        DocStyle::ConsolidatedPdf => NimbusAdapter.wrangle(docs),
        DocStyle::WebPages => StratusAdapter.wrangle(docs),
    }
}

/// Split an `optional`-suffixed or plain `name: type` signature fragment.
/// Shared by both adapters.
pub(crate) fn split_name_type(s: &str) -> Option<(String, String)> {
    let (name, ty) = s.split_once(':')?;
    Some((name.trim().to_string(), ty.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_cloud::{nimbus_provider, stratus_provider, DocFidelity};

    #[test]
    fn dispatch_selects_adapter_by_style() {
        let nim = nimbus_provider();
        let (docs, _) = nim.render_docs(DocFidelity::Complete);
        let sections = wrangle_provider(&nim, &docs).unwrap();
        assert_eq!(sections.len(), nim.catalog.len());

        let strat = stratus_provider();
        let (docs, _) = strat.render_docs(DocFidelity::Complete);
        let sections = wrangle_provider(&strat, &docs).unwrap();
        assert_eq!(sections.len(), strat.catalog.len());
    }
}
