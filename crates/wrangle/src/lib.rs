#![deny(missing_docs)]

//! # lce-wrangle — documentation wrangling
//!
//! The preprocessing step of the learned-emulator workflow (§4.1 of the
//! paper): turn a provider's raw documentation corpus into structured,
//! resource-indexed sections the synthesizer can consume. The paper's
//! observation is that cloud docs are *semi-structured* — "we should be
//! able to create a symbolic parser, based on documentation structure, to
//! preprocess information" — and that the required effort is
//! provider-specific (AWS ships one consolidated PDF; Azure scatters web
//! pages).
//!
//! Accordingly this crate exposes:
//!
//! * [`section::ResourceDoc`] — the provider-neutral structured form: one
//!   resource with its state table, API signatures and behaviour clauses;
//! * [`adapter::DocAdapter`] — the provider-adapter trait;
//! * [`nimbus::NimbusAdapter`] — parses the consolidated paginated PDF-style
//!   reference;
//! * [`stratus::StratusAdapter`] — parses scattered markdown-ish web pages;
//! * [`adapter::wrangle_provider`] — convenience: pick the right adapter
//!   for a [`lce_cloud::Provider`] and run it.

pub mod adapter;
pub mod nimbus;
pub mod section;
pub mod stratus;

pub use adapter::{wrangle_provider, DocAdapter, WrangleError};
pub use nimbus::NimbusAdapter;
pub use section::{ApiDoc, BehaviorLine, ParamDoc, ResourceDoc, StateDoc};
pub use stratus::StratusAdapter;
