//! Property tests for `FaultPlan` schedule determinism (satellite: same
//! seed ⇒ identical injected fault sequence across runs and across thread
//! interleavings; different seeds ⇒ schedules differ).

use lce_faults::{BackendFaults, DetRng, FaultPlan, WireFaults, WriteFaultScope};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// A plan with arbitrary (but mid-range) rates so schedules are neither
/// empty nor saturated. Rates are expanded deterministically from a
/// second sampled seed.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), any::<u64>()).prop_map(|(seed, rates_seed)| {
        let mut r = DetRng::new(rates_seed);
        let mut rate = move || 50 + (r.next_u64() % 450) as u32;
        let mut plan = FaultPlan::none(seed);
        plan.backend = BackendFaults {
            error_per_mille: rate(),
            throttle_per_mille: rate(),
            latency_per_mille: rate(),
            max_latency_ms: 3,
        };
        plan.wire = WireFaults {
            accept_reset_per_mille: rate(),
            read_reset_per_mille: rate(),
            write_truncate_per_mille: rate(),
            write_reset_per_mille: rate(),
            write_scope: WriteFaultScope::All,
        };
        plan
    })
}

/// Materialise the full decision schedule of a plan over a small event
/// grid, as comparable strings.
fn schedule(plan: &FaultPlan, accounts: u64, events: u64) -> Vec<String> {
    let mut out = Vec::new();
    for a in 0..accounts {
        let scope = format!("acct-{a}");
        for seq in 0..events {
            out.push(format!(
                "invoke {scope} {seq} {:?}",
                plan.decide_invoke(&scope, "CreateVpc", seq)
            ));
        }
    }
    for conn in 0..accounts * events {
        out.push(format!("accept {conn} {:?}", plan.decide_accept(conn)));
        out.push(format!("read {conn} {:?}", plan.decide_read(conn, 0)));
        out.push(format!(
            "write {conn} {:?}",
            plan.decide_write(conn, 0, conn % 2 == 0)
        ));
    }
    out
}

proptest! {
    /// Same seed (same plan) ⇒ the schedule is identical on every
    /// materialisation.
    #[test]
    fn same_seed_identical_schedule(plan in arb_plan()) {
        prop_assert_eq!(schedule(&plan, 4, 32), schedule(&plan, 4, 32));
    }

    /// The schedule is identical no matter which threads evaluate which
    /// decisions: decisions are pure, so a maximally-sliced concurrent
    /// evaluation matches the serial one exactly.
    #[test]
    fn schedule_is_interleaving_invariant(plan in arb_plan()) {
        let serial = schedule(&plan, 4, 16);
        let plan = Arc::new(plan);
        // Evaluate per-account slices on separate threads, in reverse
        // spawn order, then reassemble.
        let mut handles = Vec::new();
        for a in (0..4u64).rev() {
            let plan = Arc::clone(&plan);
            handles.push((a, thread::spawn(move || {
                let scope = format!("acct-{a}");
                (0..16u64)
                    .map(|seq| format!(
                        "invoke {scope} {seq} {:?}",
                        plan.decide_invoke(&scope, "CreateVpc", seq)
                    ))
                    .collect::<Vec<_>>()
            })));
        }
        let mut concurrent: Vec<(u64, Vec<String>)> = handles
            .into_iter()
            .map(|(a, h)| (a, h.join().unwrap()))
            .collect();
        concurrent.sort_by_key(|(a, _)| *a);
        let concurrent: Vec<String> =
            concurrent.into_iter().flat_map(|(_, v)| v).collect();
        // The serial schedule's invoke section is the first 4*16 entries.
        prop_assert_eq!(&serial[..64], &concurrent[..]);
    }

    /// Different seeds ⇒ the schedules differ (on a grid large enough that
    /// a coincidental full match is implausible).
    #[test]
    fn different_seeds_differ(plan in arb_plan(), delta in 1u64..u64::MAX) {
        let mut other = FaultPlan::none(plan.seed().wrapping_add(delta));
        other.backend = plan.backend.clone();
        other.wire = plan.wire.clone();
        assert_ne!(schedule(&plan, 4, 64), schedule(&other, 4, 64));
    }
}

#[test]
fn preset_plans_are_reproducible_across_construction() {
    // Constructing the same preset twice gives not just equal rates but
    // the exact same schedule object.
    let a = FaultPlan::aggressive(7);
    let b = FaultPlan::aggressive(7);
    assert_eq!(a, b);
    assert_eq!(schedule(&a, 8, 64), schedule(&b, 8, 64));
}
