//! The [`FaultPlan`]: a seeded, fully deterministic schedule of faults.
//!
//! A plan never stores mutable state. Every decision is a pure function of
//! the seed, the fault point, a scope key (account id, connection number)
//! and a sequence number — so the same plan replays the same schedule
//! byte-for-byte, regardless of how threads interleave, and two plans with
//! the same seed and rates are interchangeable.
//!
//! Two layers of faults share one plan:
//!
//! * **Backend faults** ([`BackendFault`]), injected by
//!   [`FaultyBackend`](crate::FaultyBackend) *before* the wrapped backend
//!   runs: transient 5xx-style errors, throttles, and added latency. They
//!   never mutate backend state, so a retry is always safe.
//! * **Wire faults** ([`WireFault`]), injected by the serving layer at its
//!   accept/read/write points: connection resets and response truncation.
//!   Accept and read faults fire before a request is dispatched (safe to
//!   retry); write faults fire after dispatch and are therefore restricted
//!   by [`WriteFaultScope`] to idempotent traffic unless a test explicitly
//!   opts into mutating-request faults.

use crate::rng::{fnv1a64, hits, mix};
use std::time::Duration;

/// A backend-level fault, decided per `(account, api, invocation)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendFault {
    /// A transient internal error (the emulated cloud's 5xx).
    TransientError,
    /// A throttling rejection (retry-after style).
    Throttle,
    /// Added latency before the real invocation proceeds.
    Latency(Duration),
}

impl BackendFault {
    /// A stable label for the fault kind, used as the `kind` label of the
    /// observability layer's `lce_faults_injected_total` counter.
    pub fn kind(&self) -> &'static str {
        match self {
            BackendFault::TransientError => "transient-error",
            BackendFault::Throttle => "throttle",
            BackendFault::Latency(_) => "latency",
        }
    }
}

/// A wire-level fault at one of the server's accept/read/write points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Drop the connection immediately, without a response.
    Reset,
    /// Write a prefix of the response, then drop the connection.
    Truncate,
}

impl WireFault {
    /// A stable label for the fault kind (`kind` label of
    /// `lce_wire_faults_total`).
    pub fn kind(&self) -> &'static str {
        match self {
            WireFault::Reset => "reset",
            WireFault::Truncate => "truncate",
        }
    }
}

/// Which requests are eligible for *write*-point faults. Write faults drop
/// or truncate a response **after** the request was dispatched, so a lost
/// response to a mutating call leaves the mutation applied — only
/// idempotent traffic can be faulted there without breaking convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFaultScope {
    /// Only idempotent requests (GETs, `_reset`, `Describe*`/`List*`/`Get*`).
    IdempotentOnly,
    /// Only mutating requests — used by regression tests that pin the
    /// client's no-double-apply behaviour under mid-response failures.
    MutatingOnly,
    /// Every request. Convergence is NOT guaranteed under this scope.
    All,
}

/// Backend-level fault rates (per-mille, i.e. N/1000 per invocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendFaults {
    /// Rate of injected transient errors.
    pub error_per_mille: u32,
    /// Rate of injected throttles.
    pub throttle_per_mille: u32,
    /// Rate of injected latency.
    pub latency_per_mille: u32,
    /// Upper bound on injected latency, in milliseconds (the concrete
    /// duration is derived deterministically from the decision hash).
    pub max_latency_ms: u64,
}

impl BackendFaults {
    /// No backend faults at all.
    pub fn none() -> Self {
        BackendFaults {
            error_per_mille: 0,
            throttle_per_mille: 0,
            latency_per_mille: 0,
            max_latency_ms: 0,
        }
    }
}

/// Wire-level fault rates (per-mille, per decision point).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFaults {
    /// Rate of dropping a connection straight after accept.
    pub accept_reset_per_mille: u32,
    /// Rate of dropping a connection after a read event (always before the
    /// buffered request is dispatched).
    pub read_reset_per_mille: u32,
    /// Rate of truncating a response mid-write.
    pub write_truncate_per_mille: u32,
    /// Rate of dropping a connection instead of writing the response.
    pub write_reset_per_mille: u32,
    /// Which requests write faults may hit.
    pub write_scope: WriteFaultScope,
}

impl WireFaults {
    /// No wire faults at all.
    pub fn none() -> Self {
        WireFaults {
            accept_reset_per_mille: 0,
            read_reset_per_mille: 0,
            write_truncate_per_mille: 0,
            write_reset_per_mille: 0,
            write_scope: WriteFaultScope::IdempotentOnly,
        }
    }
}

// Distinct salts keep the per-point decision streams independent even when
// scope keys and sequence numbers coincide.
const SALT_INVOKE_ERROR: u64 = 0x01;
const SALT_INVOKE_THROTTLE: u64 = 0x02;
const SALT_INVOKE_LATENCY: u64 = 0x03;
const SALT_ACCEPT: u64 = 0x11;
const SALT_READ: u64 = 0x12;
const SALT_WRITE: u64 = 0x13;

/// A seeded, deterministic fault schedule over backend and wire points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Backend-level rates.
    pub backend: BackendFaults,
    /// Wire-level rates.
    pub wire: WireFaults,
}

impl FaultPlan {
    /// An empty plan: zero rates everywhere. Wrapping a backend or a
    /// server in an empty plan must be byte-for-byte behaviour-preserving
    /// (pinned by the serving passthrough test).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            backend: BackendFaults::none(),
            wire: WireFaults::none(),
        }
    }

    /// The standard chaos mix: a few percent of everything, convergence-safe
    /// write scope.
    pub fn standard(seed: u64) -> Self {
        FaultPlan {
            seed,
            backend: BackendFaults {
                error_per_mille: 30,
                throttle_per_mille: 20,
                latency_per_mille: 40,
                max_latency_ms: 3,
            },
            wire: WireFaults {
                accept_reset_per_mille: 25,
                read_reset_per_mille: 15,
                write_truncate_per_mille: 100,
                write_reset_per_mille: 50,
                write_scope: WriteFaultScope::IdempotentOnly,
            },
        }
    }

    /// A heavy mix for stress runs: roughly an order of magnitude more
    /// faults than [`FaultPlan::standard`], still convergence-safe.
    pub fn aggressive(seed: u64) -> Self {
        FaultPlan {
            seed,
            backend: BackendFaults {
                error_per_mille: 150,
                throttle_per_mille: 100,
                latency_per_mille: 120,
                max_latency_ms: 3,
            },
            wire: WireFaults {
                accept_reset_per_mille: 120,
                read_reset_per_mille: 80,
                write_truncate_per_mille: 250,
                write_reset_per_mille: 150,
                write_scope: WriteFaultScope::IdempotentOnly,
            },
        }
    }

    /// The standard backend-fault rates with **no wire faults**. Wire
    /// faults key on accept-order connection ids, which are racy across
    /// interleavings; backend faults key on each account's invocation
    /// sequence, which is deterministic whenever one client drives each
    /// account. This preset is therefore the one whose schedule-class
    /// metrics are byte-identical across repeat runs and thread counts —
    /// the plan the metrics-determinism tests and the CI `obs` job use.
    pub fn backend_only(seed: u64) -> Self {
        FaultPlan {
            seed,
            backend: FaultPlan::standard(seed).backend,
            wire: WireFaults::none(),
        }
    }

    /// A deliberately convergence-breaking preset: write-point faults on
    /// **mutating** traffic only. A lost response to a mutating call leaves
    /// the mutation applied, and the client must not blindly re-send it —
    /// so chaos runs under this plan are expected to diverge. This is the
    /// preset the trace-capture machinery uses to provoke real failing
    /// traces on demand.
    pub fn torn_writes(seed: u64) -> Self {
        FaultPlan {
            seed,
            backend: BackendFaults::none(),
            wire: WireFaults {
                accept_reset_per_mille: 0,
                read_reset_per_mille: 0,
                write_truncate_per_mille: 150,
                write_reset_per_mille: 300,
                write_scope: WriteFaultScope::MutatingOnly,
            },
        }
    }

    /// Look up a plan preset by name (`none`, `standard`/`default`,
    /// `aggressive`, `backend-only`, `torn-writes`).
    pub fn named(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" | "empty" => Some(FaultPlan::none(seed)),
            "standard" | "default" => Some(FaultPlan::standard(seed)),
            "aggressive" | "heavy" => Some(FaultPlan::aggressive(seed)),
            "backend-only" | "backend" => Some(FaultPlan::backend_only(seed)),
            "torn-writes" | "torn" => Some(FaultPlan::torn_writes(seed)),
            _ => None,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` if every rate is zero — the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.backend.error_per_mille == 0
            && self.backend.throttle_per_mille == 0
            && self.backend.latency_per_mille == 0
            && self.wire.accept_reset_per_mille == 0
            && self.wire.read_reset_per_mille == 0
            && self.wire.write_truncate_per_mille == 0
            && self.wire.write_reset_per_mille == 0
    }

    /// `true` if any wire-level rate is nonzero. Wire faults key on racy
    /// accept-order connection ids, so a plan with wire faults cannot
    /// promise schedule-deterministic metrics (see
    /// [`FaultPlan::backend_only`]).
    pub fn has_wire_faults(&self) -> bool {
        self.wire.accept_reset_per_mille > 0
            || self.wire.read_reset_per_mille > 0
            || self.wire.write_truncate_per_mille > 0
            || self.wire.write_reset_per_mille > 0
    }

    /// A stable, single-line description of the plan — safe to embed in
    /// reports that must be byte-identical across runs.
    pub fn describe(&self) -> String {
        let scope = match self.wire.write_scope {
            WriteFaultScope::IdempotentOnly => "idempotent-only",
            WriteFaultScope::MutatingOnly => "mutating-only",
            WriteFaultScope::All => "all",
        };
        format!(
            "seed={} backend[err={}/1000 throttle={}/1000 latency={}/1000<={}ms] \
             wire[accept-reset={}/1000 read-reset={}/1000 write-truncate={}/1000 \
             write-reset={}/1000 scope={}]",
            self.seed,
            self.backend.error_per_mille,
            self.backend.throttle_per_mille,
            self.backend.latency_per_mille,
            self.backend.max_latency_ms,
            self.wire.accept_reset_per_mille,
            self.wire.read_reset_per_mille,
            self.wire.write_truncate_per_mille,
            self.wire.write_reset_per_mille,
            scope,
        )
    }

    /// Serialize the plan (seed included) to a stable single-line `k=v`
    /// spec, the form trace files embed. [`FaultPlan::parse_spec`] inverts
    /// it exactly.
    pub fn to_spec(&self) -> String {
        let scope = match self.wire.write_scope {
            WriteFaultScope::IdempotentOnly => "idempotent",
            WriteFaultScope::MutatingOnly => "mutating",
            WriteFaultScope::All => "all",
        };
        format!(
            "seed={} err={} throttle={} latency={} maxms={} accept={} read={} \
             wtrunc={} wreset={} wscope={}",
            self.seed,
            self.backend.error_per_mille,
            self.backend.throttle_per_mille,
            self.backend.latency_per_mille,
            self.backend.max_latency_ms,
            self.wire.accept_reset_per_mille,
            self.wire.read_reset_per_mille,
            self.wire.write_truncate_per_mille,
            self.wire.write_reset_per_mille,
            scope,
        )
    }

    /// Parse a plan spec produced by [`FaultPlan::to_spec`]. Every key must
    /// appear exactly once; unknown keys are rejected so a typo cannot
    /// silently weaken a replayed schedule.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none(0);
        let mut seen = std::collections::BTreeSet::new();
        for part in spec.split_whitespace() {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad plan spec item (want k=v): {part}"))?;
            if !seen.insert(key.to_string()) {
                return Err(format!("duplicate plan spec key: {key}"));
            }
            let num = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("bad plan spec value for {key}: {e}"))
            };
            match key {
                "seed" => plan.seed = num()?,
                "err" => plan.backend.error_per_mille = num()? as u32,
                "throttle" => plan.backend.throttle_per_mille = num()? as u32,
                "latency" => plan.backend.latency_per_mille = num()? as u32,
                "maxms" => plan.backend.max_latency_ms = num()?,
                "accept" => plan.wire.accept_reset_per_mille = num()? as u32,
                "read" => plan.wire.read_reset_per_mille = num()? as u32,
                "wtrunc" => plan.wire.write_truncate_per_mille = num()? as u32,
                "wreset" => plan.wire.write_reset_per_mille = num()? as u32,
                "wscope" => {
                    plan.wire.write_scope = match value {
                        "idempotent" => WriteFaultScope::IdempotentOnly,
                        "mutating" => WriteFaultScope::MutatingOnly,
                        "all" => WriteFaultScope::All,
                        other => return Err(format!("bad write scope: {other}")),
                    }
                }
                other => return Err(format!("unknown plan spec key: {other}")),
            }
        }
        for key in [
            "seed", "err", "throttle", "latency", "maxms", "accept", "read", "wtrunc", "wreset",
            "wscope",
        ] {
            if !seen.contains(key) {
                return Err(format!("plan spec missing key: {key}"));
            }
        }
        Ok(plan)
    }

    /// Decide the fault (if any) for the `seq`-th invocation of `api`
    /// within `scope` (an account id). Pure: identical inputs give the
    /// identical decision on every call, in every thread, in every run.
    pub fn decide_invoke(&self, scope: &str, api: &str, seq: u64) -> Option<BackendFault> {
        let key = &[
            self.seed,
            SALT_INVOKE_ERROR,
            fnv1a64(scope.as_bytes()),
            fnv1a64(api.as_bytes()),
            seq,
        ];
        if hits(mix(key), self.backend.error_per_mille) {
            return Some(BackendFault::TransientError);
        }
        let key = &[
            self.seed,
            SALT_INVOKE_THROTTLE,
            fnv1a64(scope.as_bytes()),
            fnv1a64(api.as_bytes()),
            seq,
        ];
        if hits(mix(key), self.backend.throttle_per_mille) {
            return Some(BackendFault::Throttle);
        }
        let key = &[
            self.seed,
            SALT_INVOKE_LATENCY,
            fnv1a64(scope.as_bytes()),
            fnv1a64(api.as_bytes()),
            seq,
        ];
        let h = mix(key);
        if hits(h, self.backend.latency_per_mille) && self.backend.max_latency_ms > 0 {
            let ms = 1 + (h >> 10) % self.backend.max_latency_ms;
            return Some(BackendFault::Latency(Duration::from_millis(ms)));
        }
        None
    }

    /// Decide whether connection number `conn` is reset at accept.
    pub fn decide_accept(&self, conn: u64) -> Option<WireFault> {
        let h = mix(&[self.seed, SALT_ACCEPT, conn]);
        hits(h, self.wire.accept_reset_per_mille).then_some(WireFault::Reset)
    }

    /// Decide whether connection `conn` is reset after its `event`-th
    /// successful read (always before any buffered request is dispatched).
    pub fn decide_read(&self, conn: u64, event: u64) -> Option<WireFault> {
        let h = mix(&[self.seed, SALT_READ, conn, event]);
        hits(h, self.wire.read_reset_per_mille).then_some(WireFault::Reset)
    }

    /// Decide the write-point fault for the `req`-th response on connection
    /// `conn`. `idempotent` classifies the request being answered; the
    /// plan's [`WriteFaultScope`] gates eligibility.
    pub fn decide_write(&self, conn: u64, req: u64, idempotent: bool) -> Option<WireFault> {
        let eligible = match self.wire.write_scope {
            WriteFaultScope::IdempotentOnly => idempotent,
            WriteFaultScope::MutatingOnly => !idempotent,
            WriteFaultScope::All => true,
        };
        if !eligible {
            return None;
        }
        let h = mix(&[self.seed, SALT_WRITE, conn, req]);
        if hits(h, self.wire.write_truncate_per_mille) {
            return Some(WireFault::Truncate);
        }
        // Salt the second draw by rotating so truncate and reset rates are
        // independent rather than nested.
        if hits(h.rotate_left(17), self.wire.write_reset_per_mille) {
            return Some(WireFault::Reset);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::none(7);
        assert!(p.is_empty());
        for seq in 0..500 {
            assert_eq!(p.decide_invoke("acct", "CreateVpc", seq), None);
            assert_eq!(p.decide_accept(seq), None);
            assert_eq!(p.decide_read(seq, 0), None);
            assert_eq!(p.decide_write(seq, 0, true), None);
            assert_eq!(p.decide_write(seq, 0, false), None);
        }
    }

    #[test]
    fn decisions_are_pure() {
        let p = FaultPlan::aggressive(42);
        for seq in 0..200 {
            assert_eq!(
                p.decide_invoke("a", "CreateVpc", seq),
                p.decide_invoke("a", "CreateVpc", seq)
            );
            assert_eq!(p.decide_write(3, seq, true), p.decide_write(3, seq, true));
        }
    }

    #[test]
    fn scopes_get_independent_schedules() {
        let p = FaultPlan::aggressive(42);
        let a: Vec<_> = (0..300).map(|s| p.decide_invoke("a", "X", s)).collect();
        let b: Vec<_> = (0..300).map(|s| p.decide_invoke("b", "X", s)).collect();
        assert_ne!(a, b, "distinct accounts see distinct schedules");
    }

    #[test]
    fn latency_is_bounded_and_deterministic() {
        let p = FaultPlan {
            backend: BackendFaults {
                error_per_mille: 0,
                throttle_per_mille: 0,
                latency_per_mille: 1000,
                max_latency_ms: 5,
            },
            ..FaultPlan::none(9)
        };
        for seq in 0..200 {
            match p.decide_invoke("a", "X", seq) {
                Some(BackendFault::Latency(d)) => {
                    assert!((1..=5).contains(&d.as_millis()), "{:?}", d)
                }
                other => panic!("expected latency, got {:?}", other),
            }
        }
    }

    #[test]
    fn write_scope_gates_eligibility() {
        let mut p = FaultPlan::none(1);
        p.wire.write_truncate_per_mille = 1000;
        p.wire.write_scope = WriteFaultScope::IdempotentOnly;
        assert_eq!(p.decide_write(0, 0, true), Some(WireFault::Truncate));
        assert_eq!(p.decide_write(0, 0, false), None);
        p.wire.write_scope = WriteFaultScope::MutatingOnly;
        assert_eq!(p.decide_write(0, 0, true), None);
        assert_eq!(p.decide_write(0, 0, false), Some(WireFault::Truncate));
        p.wire.write_scope = WriteFaultScope::All;
        assert_eq!(p.decide_write(0, 0, true), Some(WireFault::Truncate));
        assert_eq!(p.decide_write(0, 0, false), Some(WireFault::Truncate));
    }

    #[test]
    fn named_presets_resolve() {
        assert!(FaultPlan::named("none", 1).unwrap().is_empty());
        assert_eq!(FaultPlan::named("default", 1), Some(FaultPlan::standard(1)));
        assert_eq!(FaultPlan::named("heavy", 1), Some(FaultPlan::aggressive(1)));
        assert_eq!(
            FaultPlan::named("backend-only", 1),
            Some(FaultPlan::backend_only(1))
        );
        assert_eq!(FaultPlan::named("bogus", 1), None);
    }

    #[test]
    fn backend_only_fires_no_wire_faults_but_matches_standard_backend() {
        let p = FaultPlan::backend_only(7);
        assert!(!p.is_empty());
        assert_eq!(p.backend, FaultPlan::standard(7).backend);
        for conn in 0..500 {
            assert_eq!(p.decide_accept(conn), None);
            assert_eq!(p.decide_read(conn, 0), None);
            assert_eq!(p.decide_write(conn, 0, true), None);
        }
        // Same seed ⇒ the backend schedule is identical to standard's.
        let std = FaultPlan::standard(7);
        for seq in 0..200 {
            assert_eq!(
                p.decide_invoke("a", "CreateVpc", seq),
                std.decide_invoke("a", "CreateVpc", seq)
            );
        }
    }

    #[test]
    fn fault_kind_labels_are_stable() {
        assert_eq!(BackendFault::TransientError.kind(), "transient-error");
        assert_eq!(BackendFault::Throttle.kind(), "throttle");
        assert_eq!(
            BackendFault::Latency(Duration::from_millis(1)).kind(),
            "latency"
        );
        assert_eq!(WireFault::Reset.kind(), "reset");
        assert_eq!(WireFault::Truncate.kind(), "truncate");
    }

    #[test]
    fn plan_specs_round_trip_every_preset() {
        for seed in [0, 1, 7, u64::MAX] {
            for name in [
                "none",
                "standard",
                "aggressive",
                "backend-only",
                "torn-writes",
            ] {
                let plan = FaultPlan::named(name, seed).unwrap();
                let spec = plan.to_spec();
                let back =
                    FaultPlan::parse_spec(&spec).unwrap_or_else(|e| panic!("{name}/{seed}: {e}"));
                assert_eq!(back, plan, "{name}/{seed}: {spec}");
                assert_eq!(back.to_spec(), spec);
            }
        }
    }

    #[test]
    fn plan_spec_parsing_rejects_malformed_input() {
        let good = FaultPlan::standard(7).to_spec();
        assert!(FaultPlan::parse_spec("").is_err(), "missing keys");
        assert!(FaultPlan::parse_spec("seed=x").is_err(), "bad number");
        assert!(
            FaultPlan::parse_spec(&format!("{good} seed=7")).is_err(),
            "dup key"
        );
        assert!(
            FaultPlan::parse_spec(&format!("{good} zap=1")).is_err(),
            "unknown key"
        );
        assert!(
            FaultPlan::parse_spec(&good.replace("wscope=idempotent", "wscope=sideways")).is_err(),
            "bad scope"
        );
    }

    #[test]
    fn torn_writes_faults_only_mutating_traffic() {
        let p = FaultPlan::torn_writes(7);
        assert!(p.has_wire_faults());
        assert_eq!(p.backend, BackendFaults::none());
        let mut mutating_hits = 0;
        for conn in 0..500u64 {
            assert_eq!(p.decide_invoke("a", "X", conn), None);
            assert_eq!(p.decide_accept(conn), None);
            assert_eq!(p.decide_read(conn, 0), None);
            assert_eq!(p.decide_write(conn, 0, true), None, "idempotent is safe");
            if p.decide_write(conn, 0, false).is_some() {
                mutating_hits += 1;
            }
        }
        assert!(
            mutating_hits > 100,
            "rates high enough to bite: {mutating_hits}"
        );
    }

    #[test]
    fn describe_is_stable() {
        let a = FaultPlan::standard(7).describe();
        let b = FaultPlan::standard(7).describe();
        assert_eq!(a, b);
        assert!(a.contains("seed=7"), "{}", a);
        assert_ne!(a, FaultPlan::standard(8).describe());
    }
}
