//! Interleaving-invariant store fingerprints.
//!
//! Two chaos runs that apply the same program steps in different thread
//! interleavings can end with stores that are *semantically* identical but
//! differ in concrete resource ids: if two accounts' creates race, one
//! run's `subnet-000001` may parent `vpc-000001` while another's parents
//! `vpc-000002` — same shape, different labels. A convergence check that
//! compared raw stores would flake on that.
//!
//! [`store_digest`] canonicalises away concrete ids: every instance is
//! rendered as its type plus its state, with each [`Value::Ref`] and
//! parent link replaced (recursively) by the *target's* canonical content
//! rather than its id. The per-instance lines are then sorted and folded
//! with FNV-1a into a short hex digest. Identical shapes produce identical
//! digests no matter how the id counters were interleaved.

use crate::rng::fnv1a64;
use lce_emulator::{Instance, ResourceId, ResourceStore, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Canonicalise one value: refs dissolve into the target's canonical
/// rendering so concrete ids never appear in the output.
fn canon_value(store: &ResourceStore, v: &Value, visiting: &mut BTreeSet<ResourceId>) -> String {
    match v {
        Value::Str(s) => format!("str:{s}"),
        Value::Int(i) => format!("int:{i}"),
        Value::Bool(b) => format!("bool:{b}"),
        Value::Enum(e) => format!("enum:{e}"),
        Value::Null => "null".to_string(),
        Value::List(items) => {
            let inner: Vec<String> = items
                .iter()
                .map(|i| canon_value(store, i, visiting))
                .collect();
            format!("[{}]", inner.join(","))
        }
        Value::Ref(id) => match store.get(id) {
            None => "ref:<dangling>".to_string(),
            Some(target) => {
                if visiting.contains(id) {
                    return "ref:<cycle>".to_string();
                }
                visiting.insert(id.clone());
                let rendered = format!("ref:{{{}}}", canon_instance(store, target, visiting));
                visiting.remove(id);
                rendered
            }
        },
    }
}

/// Canonicalise one instance: type, sorted state, and the parent rendered
/// by content.
fn canon_instance(
    store: &ResourceStore,
    inst: &Instance,
    visiting: &mut BTreeSet<ResourceId>,
) -> String {
    let mut out = String::new();
    let _ = write!(out, "sm={}", inst.sm.as_str());
    for (var, val) in &inst.state {
        let _ = write!(out, ";{}={}", var, canon_value(store, val, visiting));
    }
    match &inst.parent {
        None => out.push_str(";parent=none"),
        Some(pid) => {
            let rendered = canon_value(store, &Value::Ref(pid.clone()), visiting);
            let _ = write!(out, ";parent={rendered}");
        }
    }
    out
}

/// An interleaving-invariant digest of a store: identical resource shapes
/// give identical digests even when concrete ids were assigned in a
/// different order. Format: `"{fnv:016x}:{instance count}"`.
pub fn store_digest(store: &ResourceStore) -> String {
    let mut lines: Vec<String> = store
        .iter()
        .map(|inst| {
            let mut visiting = BTreeSet::new();
            visiting.insert(inst.id.clone());
            canon_instance(store, inst, &mut visiting)
        })
        .collect();
    lines.sort();
    let mut h: u64 = 0xcbf29ce484222325;
    for line in &lines {
        h ^= fnv1a64(line.as_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{:016x}:{}", h, lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::parse_sm;

    /// One instance spec for building stores through the public API.
    struct Spec<'a> {
        id: &'a str,
        sm: &'a str,
        state: Vec<(&'a str, Value)>,
        parent: Option<&'a str>,
    }

    fn inst<'a>(
        id: &'a str,
        sm: &'a str,
        state: &[(&'a str, Value)],
        parent: Option<&'a str>,
    ) -> Spec<'a> {
        Spec {
            id,
            sm,
            state: state.to_vec(),
            parent,
        }
    }

    fn store_of(specs: Vec<Spec<'_>>) -> ResourceStore {
        let mut store = ResourceStore::new();
        for s in &specs {
            let sm_spec = parse_sm(&format!(
                r#"sm {} {{ service "test"; states {{ }} }}"#,
                s.sm
            ))
            .unwrap();
            let rid = ResourceId::new(s.id);
            let instance = store.instantiate(&sm_spec, rid.clone());
            for (k, v) in &s.state {
                instance.set(k, v.clone());
            }
            if let Some(p) = s.parent {
                store.set_parent(&rid, ResourceId::new(p));
            }
        }
        store
    }

    #[test]
    fn digest_ignores_concrete_ids() {
        // Run A: vpc-000001 owns subnet-000001.
        let a = store_of(vec![
            inst(
                "vpc-000001",
                "Vpc",
                &[("cidr", Value::str("10.0.0.0/16"))],
                None,
            ),
            inst(
                "subnet-000001",
                "Subnet",
                &[("vpc", Value::Ref(ResourceId::new("vpc-000001")))],
                Some("vpc-000001"),
            ),
        ]);
        // Run B: same shape, ids swapped by a different interleaving.
        let b = store_of(vec![
            inst(
                "vpc-000002",
                "Vpc",
                &[("cidr", Value::str("10.0.0.0/16"))],
                None,
            ),
            inst(
                "subnet-000005",
                "Subnet",
                &[("vpc", Value::Ref(ResourceId::new("vpc-000002")))],
                Some("vpc-000002"),
            ),
        ]);
        assert_eq!(store_digest(&a), store_digest(&b));
    }

    #[test]
    fn digest_sees_content_differences() {
        let a = store_of(vec![inst(
            "vpc-000001",
            "Vpc",
            &[("cidr", Value::str("10.0.0.0/16"))],
            None,
        )]);
        let b = store_of(vec![inst(
            "vpc-000001",
            "Vpc",
            &[("cidr", Value::str("10.9.0.0/16"))],
            None,
        )]);
        assert_ne!(store_digest(&a), store_digest(&b));
    }

    #[test]
    fn digest_sees_link_differences() {
        let vpcs = || {
            vec![
                inst("vpc-000001", "Vpc", &[("cidr", Value::str("a"))], None),
                inst("vpc-000002", "Vpc", &[("cidr", Value::str("b"))], None),
            ]
        };
        let mut a_insts = vpcs();
        a_insts.push(inst("subnet-000001", "Subnet", &[], Some("vpc-000001")));
        let mut b_insts = vpcs();
        b_insts.push(inst("subnet-000001", "Subnet", &[], Some("vpc-000002")));
        assert_ne!(
            store_digest(&store_of(a_insts)),
            store_digest(&store_of(b_insts)),
            "parenting a different-content vpc must change the digest"
        );
    }

    #[test]
    fn digest_handles_cycles_and_dangling_refs() {
        let cyclic = store_of(vec![
            inst(
                "a-000001",
                "A",
                &[("peer", Value::Ref(ResourceId::new("b-000001")))],
                None,
            ),
            inst(
                "b-000001",
                "B",
                &[("peer", Value::Ref(ResourceId::new("a-000001")))],
                None,
            ),
        ]);
        let d = store_digest(&cyclic);
        assert_eq!(d, store_digest(&cyclic), "cycle digest is stable");

        let dangling = store_of(vec![inst(
            "a-000001",
            "A",
            &[("peer", Value::Ref(ResourceId::new("gone-000009")))],
            None,
        )]);
        assert!(store_digest(&dangling).ends_with(":1"));
    }

    #[test]
    fn empty_store_digest_is_fixed() {
        let empty = ResourceStore::new();
        assert_eq!(store_digest(&empty), store_digest(&ResourceStore::new()));
        assert!(store_digest(&empty).ends_with(":0"));
    }
}
