//! Deterministic pseudo-randomness for fault schedules.
//!
//! Fault decisions must be *pure functions* of `(seed, fault point, scope,
//! sequence number)` so that a schedule replays identically across runs and
//! across thread interleavings: no shared counters, no global RNG state,
//! no wall clock. Everything here is a stateless hash (SplitMix64 over
//! FNV-1a'd keys) except [`DetRng`], a tiny owned stream used where an
//! ordered sequence is genuinely local to one owner (backoff jitter).

/// One SplitMix64 scramble step: a high-quality 64-bit finalizer.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over raw bytes; used to fold string keys (account ids, API
/// names) into the decision hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fold an arbitrary tuple of parts into one decision hash. Order matters:
/// `mix(&[a, b]) != mix(&[b, a])` in general, which keeps distinct fault
/// points with the same operands independent.
pub fn mix(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    for p in parts {
        h = splitmix64(h ^ *p);
    }
    h
}

/// `true` with probability `per_mille / 1000`, decided purely by the hash.
pub fn hits(hash: u64, per_mille: u32) -> bool {
    (hash % 1000) < u64::from(per_mille.min(1000))
}

/// A small owned SplitMix64 stream. Deterministic given the seed; used for
/// backoff jitter, where the consumer owns the whole sequence.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A stream seeded deterministically.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: splitmix64(seed ^ 0x6a09e667f3bcc909),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[lo, hi]` (inclusive). `lo > hi` is treated as the
    /// single point `lo`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_pure_and_spreads() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
    }

    #[test]
    fn hits_edges() {
        for h in [0u64, 1, 999, 1000, u64::MAX] {
            assert!(!hits(h, 0), "rate 0 never fires");
            assert!(hits(h, 1000), "rate 1000 always fires");
        }
    }

    #[test]
    fn hits_rate_roughly_respected() {
        let n = 10_000u64;
        let fired = (0..n).filter(|i| hits(splitmix64(*i), 250)).count();
        let frac = fired as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "got {}", frac);
    }

    #[test]
    fn det_rng_reproducible_and_bounded() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
        for _ in 0..1000 {
            let v = c.next_in(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(c.next_in(5, 5), 5);
        assert_eq!(c.next_in(9, 3), 9, "inverted range collapses to lo");
    }
}
