//! # lce-faults: seeded, deterministic fault injection
//!
//! The paper's alignment loop (§4) only trusts a divergence when the
//! emulator's behaviour is reproducible. This crate makes *misbehaviour*
//! reproducible too: a seeded [`FaultPlan`] schedules transient errors,
//! throttles, latency, response truncation and connection resets as pure
//! functions of `(seed, fault point, scope, sequence)` — no shared
//! counters, no global RNG — so the same schedule replays byte-for-byte
//! across runs *and* across thread interleavings.
//!
//! Pieces:
//!
//! * [`FaultPlan`] — the deterministic schedule ([`plan`]).
//! * [`FaultyBackend`] — wraps any [`Backend`](lce_emulator::Backend),
//!   injecting backend-level faults pre-invoke ([`backend`]).
//! * [`RetryPolicy`] / [`Backoff`] — capped exponential backoff with
//!   decorrelated jitter and injectable sleep ([`backoff`]).
//! * [`store_digest`] — interleaving-invariant store fingerprints for
//!   convergence checks ([`fingerprint`]).
//!
//! The wire-level hooks (accept/read/write fault points) live in
//! `lce-server`, driven by the same [`FaultPlan`]; the chaos harness that
//! puts it all together lives in the root crate (`lce chaos`).

#![deny(missing_docs)]

pub mod backend;
pub mod backoff;
pub mod fingerprint;
pub mod plan;
pub mod rng;

pub use backend::{
    retryable_codes, FaultListener, FaultyBackend, INJECTED_INTERNAL_ERROR, INJECTED_THROTTLE,
};
pub use backoff::{counting_sleep, no_sleep, real_sleep, Backoff, RetryPolicy, SleepFn};
pub use fingerprint::store_digest;
pub use plan::{BackendFault, BackendFaults, FaultPlan, WireFault, WireFaults, WriteFaultScope};
pub use rng::DetRng;
