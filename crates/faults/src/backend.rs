//! [`FaultyBackend`]: a [`Backend`] wrapper that injects plan-scheduled
//! backend faults *before* delegating to the wrapped backend.
//!
//! Injection happens pre-invoke: an injected error or throttle returns
//! without touching the inner backend at all, so the wrapped store is
//! exactly as if the call never arrived — a retry can never double-apply.
//! Injected latency sleeps (via an injectable sleeper, so tests never
//! wall-sleep) and then delegates normally.

use crate::backoff::{real_sleep, SleepFn};
use crate::plan::{BackendFault, FaultPlan};
use lce_emulator::{ApiCall, ApiError, ApiResponse, Backend, ResourceStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error code carried by an injected transient error.
pub const INJECTED_INTERNAL_ERROR: &str = "InternalError";
/// Error code carried by an injected throttle.
pub const INJECTED_THROTTLE: &str = "ThrottlingException";

/// The error codes a retry policy should treat as transient. These are the
/// exact codes [`FaultyBackend`] injects.
pub fn retryable_codes() -> Vec<String> {
    vec![
        INJECTED_INTERNAL_ERROR.to_string(),
        INJECTED_THROTTLE.to_string(),
    ]
}

/// A callback invoked with every fault a [`FaultyBackend`] injects —
/// the seam the observability layer hooks without this crate depending
/// on it. Called synchronously from `invoke`, so implementations must be
/// cheap and must not call back into the backend.
pub type FaultListener = Arc<dyn Fn(&BackendFault) + Send + Sync>;

/// A [`Backend`] wrapper injecting the backend-level faults of a
/// [`FaultPlan`], scoped to one key (normally the account id).
///
/// The invocation sequence number is an owned atomic, not shared state:
/// each wrapper counts its own invocations, so the schedule a given
/// account sees depends only on `(plan, scope, how many calls that account
/// made)` — not on what other accounts or threads are doing.
pub struct FaultyBackend<B: Backend> {
    inner: B,
    plan: Arc<FaultPlan>,
    scope: String,
    seq: AtomicU64,
    sleeper: SleepFn,
    injected: AtomicU64,
    listener: Option<FaultListener>,
}

impl<B: Backend> FaultyBackend<B> {
    /// Wrap `inner`, drawing fault decisions from `plan` under `scope`.
    pub fn new(inner: B, plan: Arc<FaultPlan>, scope: impl Into<String>) -> Self {
        FaultyBackend {
            inner,
            plan,
            scope: scope.into(),
            seq: AtomicU64::new(0),
            sleeper: real_sleep(),
            injected: AtomicU64::new(0),
            listener: None,
        }
    }

    /// Replace the sleeper used for injected latency (tests pass a no-op
    /// or counting sleeper so they never wall-sleep).
    pub fn with_sleeper(mut self, sleeper: SleepFn) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Install a listener called with every injected fault, after the
    /// internal injected-count bump and before the fault takes effect.
    pub fn with_fault_listener(mut self, listener: FaultListener) -> Self {
        self.listener = Some(listener);
        self
    }

    /// How many faults this wrapper has injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let decision = self.plan.decide_invoke(&self.scope, &call.api, seq);
        if let Some(fault) = &decision {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if let Some(listener) = &self.listener {
                listener(fault);
            }
        }
        match decision {
            Some(BackendFault::TransientError) => ApiResponse::err(ApiError::new(
                INJECTED_INTERNAL_ERROR,
                "injected transient internal error",
            )),
            Some(BackendFault::Throttle) => ApiResponse::err(ApiError::new(
                INJECTED_THROTTLE,
                "injected throttle: rate exceeded",
            )),
            Some(BackendFault::Latency(d)) => {
                (self.sleeper)(d);
                self.inner.invoke(call)
            }
            None => self.inner.invoke(call),
        }
    }

    fn reset(&mut self) {
        // The fault schedule keeps advancing across resets: `_reset` is
        // part of the workload, not a schedule boundary.
        self.inner.reset();
    }

    fn api_names(&self) -> Vec<String> {
        self.inner.api_names()
    }

    fn supports(&self, api: &str) -> bool {
        self.inner.supports(api)
    }

    fn snapshot(&self) -> Option<ResourceStore> {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::counting_sleep;
    use lce_emulator::Value;
    use std::collections::BTreeMap;

    /// A tiny backend that counts invocations and supports everything.
    struct Probe {
        calls: u64,
    }

    impl Backend for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn invoke(&mut self, _call: &ApiCall) -> ApiResponse {
            self.calls += 1;
            let mut fields = BTreeMap::new();
            fields.insert("Calls".to_string(), Value::Int(self.calls as i64));
            ApiResponse::ok(fields)
        }
        fn reset(&mut self) {
            self.calls = 0;
        }
        fn api_names(&self) -> Vec<String> {
            vec!["Ping".into()]
        }
    }

    fn call() -> ApiCall {
        ApiCall {
            api: "Ping".into(),
            args: BTreeMap::new(),
        }
    }

    #[test]
    fn empty_plan_is_pure_passthrough() {
        let plan = Arc::new(FaultPlan::none(7));
        let mut fb = FaultyBackend::new(Probe { calls: 0 }, plan, "acct");
        for i in 1..=50 {
            let r = fb.invoke(&call());
            assert!(r.is_ok());
            assert_eq!(r.field("Calls"), Some(&Value::Int(i)));
        }
        assert_eq!(fb.injected_count(), 0);
        assert_eq!(fb.name(), "probe");
        assert!(fb.supports("Ping"));
        assert_eq!(fb.api_names(), vec!["Ping".to_string()]);
    }

    #[test]
    fn injected_errors_never_reach_inner() {
        let mut plan = FaultPlan::none(3);
        plan.backend.error_per_mille = 1000;
        let mut fb = FaultyBackend::new(Probe { calls: 0 }, Arc::new(plan), "acct");
        for _ in 0..20 {
            let r = fb.invoke(&call());
            assert_eq!(r.error_code(), Some(INJECTED_INTERNAL_ERROR));
        }
        assert_eq!(fb.inner().calls, 0, "inner backend untouched");
        assert_eq!(fb.injected_count(), 20);
    }

    #[test]
    fn throttle_code_is_distinct() {
        let mut plan = FaultPlan::none(3);
        plan.backend.throttle_per_mille = 1000;
        let mut fb = FaultyBackend::new(Probe { calls: 0 }, Arc::new(plan), "acct");
        let r = fb.invoke(&call());
        assert_eq!(r.error_code(), Some(INJECTED_THROTTLE));
        assert!(retryable_codes().contains(&INJECTED_THROTTLE.to_string()));
    }

    #[test]
    fn latency_sleeps_then_delegates() {
        let mut plan = FaultPlan::none(3);
        plan.backend.latency_per_mille = 1000;
        plan.backend.max_latency_ms = 4;
        let (sleeper, slept) = counting_sleep();
        let mut fb =
            FaultyBackend::new(Probe { calls: 0 }, Arc::new(plan), "acct").with_sleeper(sleeper);
        for _ in 0..10 {
            assert!(fb.invoke(&call()).is_ok());
        }
        assert_eq!(fb.inner().calls, 10, "latency still delegates");
        assert_eq!(slept.lock().unwrap().len(), 10);
        assert!(slept
            .lock()
            .unwrap()
            .iter()
            .all(|d| (1..=4).contains(&d.as_millis())));
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::standard(11);
        let run = |plan: FaultPlan| -> Vec<Option<String>> {
            let mut fb = FaultyBackend::new(Probe { calls: 0 }, Arc::new(plan), "acct");
            (0..200)
                .map(|_| fb.invoke(&call()).error_code().map(str::to_string))
                .collect()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn listener_sees_every_injected_fault_and_only_those() {
        use std::sync::Mutex;
        let plan = Arc::new(FaultPlan::standard(13));
        let seen: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let (sleeper, _) = counting_sleep();
        let mut fb = FaultyBackend::new(Probe { calls: 0 }, Arc::clone(&plan), "acct")
            .with_sleeper(sleeper)
            .with_fault_listener(Arc::new(move |f| seen2.lock().unwrap().push(f.kind())));
        let expected: Vec<&'static str> = (0..300)
            .filter_map(|seq| plan.decide_invoke("acct", "Ping", seq).map(|f| f.kind()))
            .collect();
        for _ in 0..300 {
            fb.invoke(&call());
        }
        assert!(!expected.is_empty(), "standard plan must fire in 300 calls");
        assert_eq!(*seen.lock().unwrap(), expected);
        assert_eq!(fb.injected_count(), expected.len() as u64);
    }

    #[test]
    fn reset_clears_inner_but_not_schedule() {
        let mut plan = FaultPlan::none(3);
        plan.backend.error_per_mille = 500;
        let plan = Arc::new(plan);
        // Record the first 40 outcomes without a reset...
        let mut a = FaultyBackend::new(Probe { calls: 0 }, plan.clone(), "acct");
        let seq_a: Vec<bool> = (0..40).map(|_| a.invoke(&call()).is_ok()).collect();
        // ...and with a reset in the middle: the schedule must not rewind.
        let mut b = FaultyBackend::new(Probe { calls: 0 }, plan, "acct");
        let mut seq_b = Vec::new();
        for i in 0..40 {
            if i == 20 {
                b.reset();
                assert_eq!(b.inner().calls, 0, "reset reached inner");
            }
            seq_b.push(b.invoke(&call()).is_ok());
        }
        assert_eq!(seq_a, seq_b, "reset must not rewind the fault schedule");
    }
}
