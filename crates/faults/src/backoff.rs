//! Retry policies with capped exponential backoff and decorrelated jitter.
//!
//! The backoff follows the "decorrelated jitter" recipe (next delay drawn
//! uniformly from `[base, prev * 3]`, capped): it decorrelates competing
//! clients while keeping the expected delay growing geometrically. All
//! randomness comes from a seeded [`DetRng`], and sleeping goes through an
//! injectable [`SleepFn`], so a test can make retries deterministic and
//! instantaneous while production code wall-sleeps.

use crate::rng::DetRng;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An injectable sleep. Production uses [`real_sleep`]; tests use
/// [`no_sleep`] or [`counting_sleep`] so nothing ever wall-sleeps.
pub type SleepFn = Arc<dyn Fn(Duration) + Send + Sync>;

/// A [`SleepFn`] that actually blocks the thread.
pub fn real_sleep() -> SleepFn {
    Arc::new(std::thread::sleep)
}

/// A [`SleepFn`] that returns immediately.
pub fn no_sleep() -> SleepFn {
    Arc::new(|_| {})
}

/// A [`SleepFn`] that records every requested duration instead of
/// sleeping. Returns the sleeper and the shared log of durations.
pub fn counting_sleep() -> (SleepFn, Arc<Mutex<Vec<Duration>>>) {
    let log: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();
    let f: SleepFn = Arc::new(move |d| log2.lock().unwrap().push(d));
    (f, log)
}

/// A capped decorrelated-jitter backoff stream.
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: DetRng,
    base: Duration,
    cap: Duration,
    prev: Duration,
}

impl Backoff {
    /// A stream seeded deterministically, starting at `base` and never
    /// exceeding `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        Backoff {
            rng: DetRng::new(seed),
            base,
            cap,
            prev: base,
        }
    }

    /// The next delay: `min(cap, uniform(base, prev * 3))`.
    pub fn next_delay(&mut self) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        let hi = (self.prev.as_millis() as u64)
            .saturating_mul(3)
            .max(base_ms);
        let drawn = self.rng.next_in(base_ms, hi);
        let capped = drawn.min(self.cap.as_millis() as u64);
        self.prev = Duration::from_millis(capped);
        self.prev
    }
}

/// A retry policy for the remote client: which errors to retry, how many
/// attempts, and how to back off between them.
#[derive(Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff floor.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Application error codes considered transient.
    pub retry_codes: Vec<String>,
    /// Whether transport errors (resets, truncation) are retried.
    pub retry_transport: bool,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// The sleep used between attempts.
    pub sleep: SleepFn,
    /// APIs *proven* retry-safe by the static effect analysis
    /// (`lce-effects`). `None` means no proofs are loaded and callers must
    /// fall back to name-based idempotence heuristics; `Some` means
    /// [`static_retry_safe`](RetryPolicy::static_retry_safe) answers from
    /// proofs, so a wire-level retry needs no no-double-apply wrapper.
    pub retry_safe_apis: Option<Arc<BTreeSet<String>>>,
}

impl std::fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("max_attempts", &self.max_attempts)
            .field("base", &self.base)
            .field("cap", &self.cap)
            .field("retry_codes", &self.retry_codes)
            .field("retry_transport", &self.retry_transport)
            .field("seed", &self.seed)
            .field(
                "retry_safe_apis",
                &self.retry_safe_apis.as_ref().map(|s| s.len()),
            )
            .finish_non_exhaustive()
    }
}

impl RetryPolicy {
    /// A conservative default: 4 attempts, 25ms..1s backoff, retrying the
    /// injected transient codes and transport errors.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            retry_codes: crate::backend::retryable_codes(),
            retry_transport: true,
            seed,
            sleep: real_sleep(),
            retry_safe_apis: None,
        }
    }

    /// The chaos-harness policy: generous attempts and a tiny backoff so
    /// aggressive plans still converge quickly, with no wall-sleeping.
    pub fn chaos(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 25,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            retry_codes: crate::backend::retryable_codes(),
            retry_transport: true,
            seed,
            sleep: no_sleep(),
            retry_safe_apis: None,
        }
    }

    /// Override the attempt budget.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Override the sleeper.
    pub fn with_sleep(mut self, sleep: SleepFn) -> Self {
        self.sleep = sleep;
        self
    }

    /// Disable transport-error retries.
    pub fn without_transport_retry(mut self) -> Self {
        self.retry_transport = false;
        self
    }

    /// `true` if `code` is in the transient set.
    pub fn should_retry_code(&self, code: &str) -> bool {
        self.retry_codes.iter().any(|c| c == code)
    }

    /// Load the set of APIs proven retry-safe by static effect analysis.
    /// Callers that would otherwise gate wire-level retries on name-based
    /// idempotence can consult
    /// [`static_retry_safe`](RetryPolicy::static_retry_safe) instead.
    pub fn with_retry_safe_apis(mut self, apis: BTreeSet<String>) -> Self {
        self.retry_safe_apis = Some(Arc::new(apis));
        self
    }

    /// `true` if static proofs are loaded (even an empty set counts: it
    /// means the analysis ran and proved nothing, not that it never ran).
    pub fn has_static_proofs(&self) -> bool {
        self.retry_safe_apis.is_some()
    }

    /// `true` if `api` is statically proven retry-safe. Without loaded
    /// proofs this is always `false` — absence of analysis is never
    /// evidence of safety.
    pub fn static_retry_safe(&self, api: &str) -> bool {
        self.retry_safe_apis
            .as_ref()
            .is_some_and(|s| s.contains(api))
    }

    /// A fresh backoff stream for one logical operation. The extra salt
    /// keeps concurrent operations under the same policy decorrelated.
    pub fn backoff(&self, salt: u64) -> Backoff {
        Backoff::new(self.seed ^ salt.rotate_left(32), self.base, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_and_capped() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut a = Backoff::new(7, base, cap);
        let mut b = Backoff::new(7, base, cap);
        let seq_a: Vec<_> = (0..20).map(|_| a.next_delay()).collect();
        let seq_b: Vec<_> = (0..20).map(|_| b.next_delay()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same delays");
        assert!(seq_a.iter().all(|d| *d >= base && *d <= cap));
        let mut c = Backoff::new(8, base, cap);
        let seq_c: Vec<_> = (0..20).map(|_| c.next_delay()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different jitter");
    }

    #[test]
    fn backoff_grows_toward_cap() {
        let mut b = Backoff::new(3, Duration::from_millis(10), Duration::from_millis(500));
        let delays: Vec<_> = (0..30).map(|_| b.next_delay().as_millis()).collect();
        let late_max = delays[10..].iter().max().unwrap();
        assert!(*late_max > 10, "delays should grow beyond the base");
        assert!(delays.iter().all(|d| *d <= 500));
    }

    #[test]
    fn counting_sleeper_records() {
        let (sleep, log) = counting_sleep();
        sleep(Duration::from_millis(3));
        sleep(Duration::from_millis(5));
        assert_eq!(
            *log.lock().unwrap(),
            vec![Duration::from_millis(3), Duration::from_millis(5)]
        );
    }

    #[test]
    fn policy_classifies_codes() {
        let p = RetryPolicy::new(1);
        assert!(p.should_retry_code("InternalError"));
        assert!(p.should_retry_code("ThrottlingException"));
        assert!(!p.should_retry_code("NotFound"));
        assert!(p.retry_transport);
        assert!(!p.clone().without_transport_retry().retry_transport);
        assert_eq!(p.with_max_attempts(0).max_attempts, 1);
    }

    #[test]
    fn static_retry_safety_requires_loaded_proofs() {
        let p = RetryPolicy::new(1);
        assert!(!p.has_static_proofs());
        assert!(
            !p.static_retry_safe("DescribeVpc"),
            "no proofs loaded: nothing is statically safe"
        );
        let mut apis = BTreeSet::new();
        apis.insert("DescribeVpc".to_string());
        apis.insert("AttachVolume".to_string());
        let p = p.with_retry_safe_apis(apis);
        assert!(p.has_static_proofs());
        assert!(p.static_retry_safe("DescribeVpc"));
        assert!(p.static_retry_safe("AttachVolume"), "proofs beat naming");
        assert!(!p.static_retry_safe("CreateVpc"));
        // An empty proof set still counts as "analysis ran".
        let empty = RetryPolicy::new(2).with_retry_safe_apis(BTreeSet::new());
        assert!(empty.has_static_proofs());
        assert!(!empty.static_retry_safe("DescribeVpc"));
    }

    #[test]
    fn per_operation_backoffs_are_decorrelated() {
        let p = RetryPolicy::new(9);
        let mut a = p.backoff(1);
        let mut b = p.backoff(2);
        let seq_a: Vec<_> = (0..10).map(|_| a.next_delay()).collect();
        let seq_b: Vec<_> = (0..10).map(|_| b.next_delay()).collect();
        assert_ne!(seq_a, seq_b);
    }
}
