//! Symbolic execution over transition bodies.
//!
//! A transition body is a tree of straight-line effects with two kinds of
//! branch points: `if/else` and `assert` (whose failing side terminates
//! the path with an error). Enumerating root-to-exit paths yields the
//! *symbolically equivalent classes* of §4.3: all concrete inputs that
//! drive execution down the same path are behaviourally interchangeable,
//! so one witness per path suffices for differential testing — and a
//! violating trace pins the root cause to a *single* check.
//!
//! Nested `call`s are treated as opaque successes here; their own paths
//! are enumerated when the callee's transition is analyzed. (A call that
//! fails at runtime shows up as a divergence attributed to this class,
//! which is still localized enough for repair.)

use lce_spec::{ErrorCode, Expr, Stmt, Transition};
use serde::{Deserialize, Serialize};

/// How a path terminates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathOutcome {
    /// The transition completes.
    Success,
    /// The path fails the assert carrying this code.
    Error(ErrorCode),
}

/// One constraint along a path: the predicate must evaluate to `expected`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The branch/assert predicate.
    pub pred: Expr,
    /// Required truth value.
    pub expected: bool,
}

/// One symbolic path (equivalence class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymPath {
    /// Constraints in encounter order.
    pub constraints: Vec<Constraint>,
    /// Terminal outcome.
    pub outcome: PathOutcome,
}

impl SymPath {
    /// A short stable label for reports: `ok`, or the error code, plus the
    /// constraint count.
    pub fn label(&self) -> String {
        match &self.outcome {
            PathOutcome::Success => format!("ok[{}]", self.constraints.len()),
            PathOutcome::Error(e) => format!("{}[{}]", e, self.constraints.len()),
        }
    }
}

/// Enumerate the symbolic paths of a transition, up to `max_paths`.
/// Paths are produced error-paths-first at each assert (shallow failures
/// before deep ones), then the success continuation.
///
/// For `create`-kinded transitions the symbolic store starts from the
/// declared defaults (a create runs on a fresh instance); for all others,
/// `read(v)` of a not-yet-written variable denotes the *pre-state* and
/// stays a free leaf. Writes update the store so later reads substitute
/// the written expression — path constraints are therefore expressed over
/// arguments and pre-state only.
pub fn symbolic_paths(t: &Transition, max_paths: usize) -> Vec<SymPath> {
    symbolic_paths_for(t, None, max_paths)
}

/// Like [`symbolic_paths`], but with the machine's declarations available
/// so that create transitions substitute declared defaults for reads.
pub fn symbolic_paths_in(sm: &lce_spec::SmSpec, t: &Transition, max_paths: usize) -> Vec<SymPath> {
    symbolic_paths_for(t, Some(sm), max_paths)
}

fn symbolic_paths_for(
    t: &Transition,
    sm: Option<&lce_spec::SmSpec>,
    max_paths: usize,
) -> Vec<SymPath> {
    let mut out = Vec::new();
    let mut store: Store = Store::new();
    if t.kind == lce_spec::TransitionKind::Create {
        if let Some(sm) = sm {
            for s in &sm.states {
                let init = match &s.default {
                    Some(lit) => Some(Expr::Lit(lit.clone())),
                    None if s.nullable => Some(Expr::Null),
                    None => default_expr(&s.ty),
                };
                if let Some(e) = init {
                    store.insert(s.name.clone(), e);
                }
            }
        }
    }
    let work: Vec<&[Stmt]> = vec![&t.body];
    walk(work, Vec::new(), store, &mut out, max_paths);
    out
}

/// The default expression for a type, mirroring
/// [`lce_emulator::Value::default_for`]. `None` for types whose default is
/// better left opaque.
fn default_expr(ty: &lce_spec::StateType) -> Option<Expr> {
    use lce_spec::{Literal, StateType};
    Some(match ty {
        StateType::Str => Expr::Lit(Literal::Str(String::new())),
        StateType::Int => Expr::Lit(Literal::Int(0)),
        StateType::Bool => Expr::Lit(Literal::Bool(false)),
        StateType::Enum(vs) => Expr::Lit(Literal::EnumVal(vs.first()?.clone())),
        StateType::Ref(_) => Expr::Null,
        StateType::List(_) => Expr::ListOf(Vec::new()),
    })
}

type Store = std::collections::BTreeMap<String, Expr>;

/// Substitute stored write expressions for `read(v)` occurrences.
fn substitute(expr: &Expr, store: &Store) -> Expr {
    match expr {
        Expr::Read(v) => match store.get(v) {
            Some(e) => e.clone(),
            None => expr.clone(),
        },
        Expr::Field(inner, f) => Expr::Field(Box::new(substitute(inner, store)), f.clone()),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(substitute(inner, store))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute(a, store)),
            Box::new(substitute(b, store)),
        ),
        Expr::ListOf(items) => Expr::ListOf(items.iter().map(|e| substitute(e, store)).collect()),
        Expr::Append(a, b) => Expr::Append(
            Box::new(substitute(a, store)),
            Box::new(substitute(b, store)),
        ),
        Expr::Remove(a, b) => Expr::Remove(
            Box::new(substitute(a, store)),
            Box::new(substitute(b, store)),
        ),
        Expr::Lit(_) | Expr::Null | Expr::Arg(_) | Expr::SelfId | Expr::ChildCount(_) => {
            expr.clone()
        }
    }
}

/// `work` is a stack of statement slices to execute in order (innermost
/// first). This lets branch bodies prepend to the continuation without
/// cloning statements.
fn walk(
    work: Vec<&[Stmt]>,
    constraints: Vec<Constraint>,
    store: Store,
    out: &mut Vec<SymPath>,
    max: usize,
) {
    if out.len() >= max {
        return;
    }
    // Find the next statement.
    let mut work = work;
    let (stmt, rest_work) = loop {
        match work.pop() {
            None => {
                out.push(SymPath {
                    constraints,
                    outcome: PathOutcome::Success,
                });
                return;
            }
            Some(slice) => {
                if let Some((first, rest)) = slice.split_first() {
                    if !rest.is_empty() {
                        work.push(rest);
                    }
                    break (first, work);
                }
                // Empty slice: continue popping.
            }
        }
    };
    match stmt {
        Stmt::Assert { pred, error, .. } => {
            let pred = substitute(pred, &store);
            // Failing side.
            let mut c = constraints.clone();
            c.push(Constraint {
                pred: pred.clone(),
                expected: false,
            });
            out.push(SymPath {
                constraints: c,
                outcome: PathOutcome::Error(error.clone()),
            });
            // Passing side.
            let mut c = constraints;
            c.push(Constraint {
                pred,
                expected: true,
            });
            walk(rest_work, c, store, out, max);
        }
        Stmt::If {
            pred, then, els, ..
        } => {
            let pred = substitute(pred, &store);
            let mut then_work = rest_work.clone();
            if !then.is_empty() {
                then_work.push(then);
            }
            let mut c = constraints.clone();
            c.push(Constraint {
                pred: pred.clone(),
                expected: true,
            });
            walk(then_work, c, store.clone(), out, max);

            let mut else_work = rest_work;
            if !els.is_empty() {
                else_work.push(els);
            }
            let mut c = constraints;
            c.push(Constraint {
                pred,
                expected: false,
            });
            walk(else_work, c, store, out, max);
        }
        Stmt::Write { state, value, .. } => {
            let mut store = store;
            let substituted = substitute(value, &store);
            store.insert(state.clone(), substituted);
            walk(rest_work, constraints, store, out, max);
        }
        // Other effects don't branch and don't touch local state.
        Stmt::Emit { .. } | Stmt::Call { .. } => {
            walk(rest_work, constraints, store, out, max);
        }
    }
}

/// Count state transitions (symbolic paths) for a whole machine — one of
/// the cloud-complexity metrics of §4.4 ("counting the number of state
/// transitions could quantify cloud complexity").
pub fn path_count(t: &Transition) -> usize {
    symbolic_paths(t, 10_000).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::parse_sm;

    fn transition(body: &str, params: &str) -> Transition {
        let src = format!(
            r#"sm A {{ service "s";
              states {{ x: int = 0; flag: bool = false; st: enum(on, off) = off; }}
              transition T({}) kind modify {{ {} }} }}"#,
            params, body
        );
        parse_sm(&src).unwrap().transition("T").unwrap().clone()
    }

    #[test]
    fn straight_line_has_one_path() {
        let t = transition("write(x, 1); emit(X, read(x));", "");
        let paths = symbolic_paths(&t, 100);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].outcome, PathOutcome::Success);
        assert!(paths[0].constraints.is_empty());
    }

    #[test]
    fn assert_forks_two_paths() {
        let t = transition(
            r#"assert(arg(N) > 0) else Bad "m"; write(x, arg(N));"#,
            "N: int",
        );
        let paths = symbolic_paths(&t, 100);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].outcome, PathOutcome::Error(ErrorCode::new("Bad")));
        assert!(!paths[0].constraints[0].expected);
        assert_eq!(paths[1].outcome, PathOutcome::Success);
        assert!(paths[1].constraints[0].expected);
    }

    #[test]
    fn two_asserts_three_paths() {
        let t = transition(
            r#"assert(arg(N) > 0) else A "m"; assert(arg(N) < 10) else B "m";"#,
            "N: int",
        );
        let paths = symbolic_paths(&t, 100);
        assert_eq!(paths.len(), 3);
        let errs: Vec<String> = paths.iter().map(|p| p.label()).collect();
        assert_eq!(errs, vec!["A[1]", "B[2]", "ok[2]"]);
    }

    #[test]
    fn if_else_forks() {
        let t = transition("if read(flag) { write(x, 1); } else { write(x, 2); }", "");
        let paths = symbolic_paths(&t, 100);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.outcome == PathOutcome::Success));
    }

    #[test]
    fn assert_inside_if_composes() {
        let t = transition(
            r#"if !is_null(arg(V)) {
                 assert(arg(V) > 0) else Bad "m";
                 write(x, arg(V));
               }"#,
            "V: int?",
        );
        let paths = symbolic_paths(&t, 100);
        // then+fail, then+ok, else.
        assert_eq!(paths.len(), 3);
        assert!(paths
            .iter()
            .any(|p| p.outcome == PathOutcome::Error(ErrorCode::new("Bad"))));
    }

    #[test]
    fn path_cap_respected() {
        // 8 sequential asserts → 9 paths uncapped.
        let body: String = (0..8)
            .map(|i| format!(r#"assert(arg(N) != {}) else E{} "m";"#, i, i))
            .collect();
        let t = transition(&body, "N: int");
        assert_eq!(symbolic_paths(&t, 4).len(), 4);
        assert_eq!(symbolic_paths(&t, 100).len(), 9);
    }

    #[test]
    fn golden_vpc_paths_cover_all_error_codes() {
        let catalog = lce_cloud::nimbus_provider().catalog;
        let vpc = catalog.get(&lce_spec::SmName::new("Vpc")).unwrap();
        let del = vpc.transition("DeleteVpc").unwrap();
        let paths = symbolic_paths(del, 100);
        let error_paths = paths
            .iter()
            .filter(|p| matches!(p.outcome, PathOutcome::Error(_)))
            .count();
        assert_eq!(error_paths, del.error_codes().len());
    }
}
