//! Divergence diagnosis: mapping observed divergences to the paper's §5
//! error taxonomy.

use crate::diff::Divergence;
use serde::{Deserialize, Serialize};

/// The diagnosis categories (§5's "two categories of issues", refined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DivergenceClass {
    /// The cloud rejects, the emulator silently succeeds — a missing
    /// check ("it returned a success code. This creates a dangerous state
    /// inconsistency that the DevOps program cannot detect").
    SilentSuccess,
    /// Both reject but with different codes — "failure to return the
    /// specific error codes required by client-side tooling".
    WrongErrorCode,
    /// The cloud succeeds, the emulator rejects — an over-strict or
    /// corrupted check, or missing state/resource context.
    SpuriousFailure,
    /// Both succeed but the responses differ — missing state variables
    /// render attributes invisible or stale.
    StateMismatch,
}

impl DivergenceClass {
    /// The paper's top-level split.
    pub fn category(&self) -> &'static str {
        match self {
            DivergenceClass::StateMismatch | DivergenceClass::SpuriousFailure => "state",
            DivergenceClass::SilentSuccess | DivergenceClass::WrongErrorCode => "transition",
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DivergenceClass::SilentSuccess => "silent success (missing check)",
            DivergenceClass::WrongErrorCode => "wrong error code",
            DivergenceClass::SpuriousFailure => "spurious failure",
            DivergenceClass::StateMismatch => "state mismatch",
        }
    }
}

/// Classify one divergence.
pub fn classify_divergence(d: &Divergence) -> DivergenceClass {
    match (&d.golden, &d.learned) {
        (Some(_), None) => DivergenceClass::SilentSuccess,
        (None, Some(_)) => DivergenceClass::SpuriousFailure,
        (Some(a), Some(b)) if a != b => DivergenceClass::WrongErrorCode,
        _ => DivergenceClass::StateMismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::SmName;

    fn d(golden: Option<&str>, learned: Option<&str>) -> Divergence {
        Divergence {
            case_index: 0,
            case_sm: SmName::new("Vpc"),
            case_api: "DeleteVpc".into(),
            class: "ok[1]".into(),
            step: 0,
            step_api: "DeleteVpc".into(),
            golden: golden.map(|s| s.to_string()),
            learned: learned.map(|s| s.to_string()),
            description: String::new(),
        }
    }

    #[test]
    fn classifies_all_shapes() {
        assert_eq!(
            classify_divergence(&d(Some("DependencyViolation"), None)),
            DivergenceClass::SilentSuccess
        );
        assert_eq!(
            classify_divergence(&d(None, Some("InternalFailure"))),
            DivergenceClass::SpuriousFailure
        );
        assert_eq!(
            classify_divergence(&d(Some("A"), Some("B"))),
            DivergenceClass::WrongErrorCode
        );
        assert_eq!(
            classify_divergence(&d(None, None)),
            DivergenceClass::StateMismatch
        );
    }

    #[test]
    fn category_split_matches_paper() {
        assert_eq!(DivergenceClass::SilentSuccess.category(), "transition");
        assert_eq!(DivergenceClass::StateMismatch.category(), "state");
    }
}
