//! Finite-domain witness solving for symbolic classes.
//!
//! Every leaf of a path constraint is either a transition argument
//! (`arg(p)`) or a state variable of the target instance (`read(v)`).
//! Their types induce small finite domains — enum variants, booleans,
//! integer literals ±1 (boundary probing), string literals observed in the
//! spec, and reference liveness markers — so witness finding is a bounded
//! enumeration rather than SMT.
//!
//! Constraints whose sub-expressions the solver cannot evaluate (cross-
//! machine `field` reads, list membership against mutable state) are
//! treated as *undecidable-satisfiable*: the witness is marked inexact and
//! the differential phase still runs it (any program is a valid
//! differential test; exactness only affects which class it lands in).

use crate::symbolic::SymPath;
use lce_emulator::Value;
use lce_spec::{BinOp, Expr, Literal, SmSpec, StateType, Transition, UnOp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Marker prefix for reference-typed witness values; interpreted by the
/// trace planner.
pub const REF_SHARED: &str = "@ref:shared";
/// A reference that must be a *fresh, distinct* live instance.
pub const REF_FRESH: &str = "@ref:fresh";
/// A reference to a non-existent resource.
pub const REF_DANGLING: &str = "@ref:dangling";

/// A concrete witness for one symbolic class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Witness {
    /// Argument values (reference args carry `@ref:*` markers; `Null`
    /// means "omit the optional parameter").
    pub args: BTreeMap<String, Value>,
    /// Required pre-state of the target instance (empty for create).
    pub state_reqs: BTreeMap<String, Value>,
    /// `true` if every constraint was decidable under this assignment.
    pub exact: bool,
}

/// Solve one path. Returns `None` when the decidable constraints are
/// unsatisfiable within the domains (e.g. a `child_count != 0` requirement,
/// which needs a structural probe instead).
pub fn solve_path(sm: &SmSpec, t: &Transition, path: &SymPath) -> Option<Witness> {
    solve_path_k(sm, t, path, 1).into_iter().next()
}

/// Like [`solve_path`], but returns up to `k` distinct witnesses — the
/// trace planner tries them in order, since the first witness may require
/// a pre-state no public-API plan can reach while a later one does.
pub fn solve_path_k(sm: &SmSpec, t: &Transition, path: &SymPath, k: usize) -> Vec<Witness> {
    // Collect the leaves that occur in constraints.
    let mut arg_leaves: BTreeSet<String> = BTreeSet::new();
    let mut read_leaves: BTreeSet<String> = BTreeSet::new();
    for c in &path.constraints {
        c.pred.visit(&mut |e| match e {
            Expr::Arg(p) => {
                arg_leaves.insert(p.clone());
            }
            Expr::Read(v) => {
                read_leaves.insert(v.clone());
            }
            _ => {}
        });
    }

    // Literal pools for int/str domains, collected *per leaf* from the
    // constraints that mention the leaf (pooling across all constraints
    // would leak, say, a region literal into a CIDR argument's domain).
    let pools = |is_arg: bool, name: &str| -> (BTreeSet<i64>, BTreeSet<String>) {
        let mut ints = BTreeSet::new();
        let mut strs = BTreeSet::new();
        for c in &path.constraints {
            let mut mentions = false;
            c.pred.visit(&mut |e| match e {
                Expr::Arg(p) if is_arg && p == name => mentions = true,
                Expr::Read(v) if !is_arg && v == name => mentions = true,
                _ => {}
            });
            if !mentions {
                continue;
            }
            c.pred.visit(&mut |e| {
                if let Expr::Lit(Literal::Int(i)) = e {
                    ints.insert(*i);
                }
                if let Expr::Lit(Literal::Str(s)) = e {
                    strs.insert(s.clone());
                }
            });
        }
        (ints, strs)
    };

    // Values documented as creatable: literals guarding the create
    // transition's argument that feeds each state variable. They extend
    // `read` domains so pre-state requirements stay plannable (e.g. an
    // instance type that is valid to create but not burstable).
    let create_literals = |var: &str| -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for c in sm.creates() {
            // Find the argument written into `var`.
            let mut param: Option<String> = None;
            for st in c.all_stmts() {
                if let lce_spec::Stmt::Write {
                    state,
                    value: Expr::Arg(p),
                    ..
                } = st
                {
                    if state == var {
                        param = Some(p.clone());
                    }
                }
            }
            let Some(param) = param else { continue };
            for st in c.all_stmts() {
                if let lce_spec::Stmt::Assert { pred, .. } = st {
                    let mut mentions = false;
                    pred.visit(&mut |e| {
                        if matches!(e, Expr::Arg(p) if *p == param) {
                            mentions = true;
                        }
                    });
                    if mentions {
                        pred.visit(&mut |e| {
                            if let Expr::Lit(Literal::Str(s)) = e {
                                out.insert(s.clone());
                            }
                        });
                    }
                }
            }
        }
        out
    };

    // Build per-leaf domains, constrained leaves first.
    let mut leaves: Vec<(LeafKey, Vec<Value>)> = Vec::new();
    for p in &arg_leaves {
        let Some(param) = t.param(p) else { continue };
        let (int_lits, str_lits) = pools(true, p);
        let domain = domain_for(
            &param.ty,
            param.optional,
            &int_lits,
            &str_lits,
            &format!("arg:{}", p),
        );
        leaves.push((LeafKey::Arg(p.clone()), domain));
    }
    for v in &read_leaves {
        let Some(decl) = sm.state(v) else { continue };
        let (int_lits, mut str_lits) = pools(false, v);
        if matches!(decl.ty, StateType::Str) {
            str_lits.extend(create_literals(v));
        }
        let domain = domain_for(
            &decl.ty,
            decl.nullable,
            &int_lits,
            &str_lits,
            &format!("read:{}", v),
        );
        leaves.push((LeafKey::Read(v.clone()), domain));
    }

    // Bounded enumeration over the cartesian product.
    const MAX_ASSIGNMENTS: usize = 50_000;
    let total: usize = leaves
        .iter()
        .map(|(_, d)| d.len().max(1))
        .try_fold(1usize, |a, b| a.checked_mul(b))
        .unwrap_or(usize::MAX);
    let budget = total.min(MAX_ASSIGNMENTS);

    let mut found: Vec<Witness> = Vec::new();
    let mut assignment: BTreeMap<LeafKey, Value> = BTreeMap::new();
    for idx in 0..budget {
        // Decode the mixed-radix index.
        let mut rem = idx;
        assignment.clear();
        for (key, domain) in &leaves {
            if domain.is_empty() {
                continue;
            }
            let v = &domain[rem % domain.len()];
            rem /= domain.len();
            assignment.insert(key.clone(), v.clone());
        }
        let mut exact = true;
        let mut ok = true;
        for c in &path.constraints {
            match eval(&c.pred, &assignment) {
                Some(Value::Bool(b)) => {
                    if b != c.expected {
                        ok = false;
                        break;
                    }
                }
                Some(_) => {
                    ok = false;
                    break;
                }
                None => exact = false, // undecidable: optimistically satisfied
            }
        }
        if !ok {
            continue;
        }
        // Found a satisfying assignment; fill in unconstrained params.
        let mut args = BTreeMap::new();
        for p in &t.params {
            let v = match assignment.get(&LeafKey::Arg(p.name.clone())) {
                Some(v) => v.clone(),
                None => default_value(&p.ty, p.optional),
            };
            args.insert(p.name.clone(), v);
        }
        let state_reqs: BTreeMap<String, Value> = assignment
            .iter()
            .filter_map(|(k, v)| match k {
                LeafKey::Read(var) => Some((var.clone(), v.clone())),
                LeafKey::Arg(_) => None,
            })
            .collect();
        let w = Witness {
            args,
            state_reqs,
            exact,
        };
        // Deduplicate by pre-state requirements: extra witnesses exist to
        // offer the planner *different* setups, not different arguments.
        if !found.iter().any(|f| f.state_reqs == w.state_reqs) {
            found.push(w);
        }
        if found.len() >= k {
            break;
        }
    }
    found
}

/// Evaluate an expression given concrete argument values and a concrete
/// (tracked) instance state. Used by the trace planner's abstract
/// interpretation of setup steps. `None` = undecidable.
pub(crate) fn eval_concrete(
    expr: &Expr,
    args: &BTreeMap<String, Value>,
    state: &BTreeMap<String, Value>,
) -> Option<Value> {
    let mut assignment: BTreeMap<LeafKey, Value> = BTreeMap::new();
    for (k, v) in args {
        assignment.insert(LeafKey::Arg(k.clone()), v.clone());
    }
    for (k, v) in state {
        assignment.insert(LeafKey::Read(k.clone()), v.clone());
    }
    eval(expr, &assignment)
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum LeafKey {
    Arg(String),
    Read(String),
}

/// The finite domain of a leaf, ordered so "ordinary" values come first
/// (shared live refs, defaults) and exotica later (dangling refs, nulls).
fn domain_for(
    ty: &StateType,
    nullable: bool,
    int_lits: &BTreeSet<i64>,
    str_lits: &BTreeSet<String>,
    leaf_id: &str,
) -> Vec<Value> {
    let mut out = match ty {
        StateType::Bool => vec![Value::Bool(true), Value::Bool(false)],
        StateType::Enum(vs) => vs.iter().map(|v| Value::Enum(v.clone())).collect(),
        StateType::Int => {
            let mut vals: BTreeSet<i64> = BTreeSet::new();
            for l in int_lits {
                vals.insert(l - 1);
                vals.insert(*l);
                vals.insert(l + 1);
            }
            vals.insert(0);
            vals.insert(1);
            vals.into_iter().take(16).map(Value::Int).collect()
        }
        StateType::Str => {
            // The uniquifiable fallback first, so unconstrained leaves
            // pick it; observed literals next; the empty string last.
            let mut vals: Vec<Value> = vec![Value::str("witness")];
            vals.extend(str_lits.iter().map(|s| Value::str(s.clone())));
            vals.push(Value::str(""));
            vals
        }
        StateType::Ref(_) => vec![
            Value::str(REF_SHARED),
            Value::str(format!("{}:{}", REF_FRESH, leaf_id)),
            Value::str(REF_DANGLING),
        ],
        StateType::List(_) => vec![Value::List(Vec::new())],
    };
    if nullable {
        out.push(Value::Null);
    }
    out
}

/// A sensible default for parameters that no constraint mentions.
fn default_value(ty: &StateType, optional: bool) -> Value {
    if optional {
        return Value::Null;
    }
    match ty {
        StateType::Bool => Value::Bool(false),
        StateType::Int => Value::Int(1),
        StateType::Str => Value::str("witness"),
        StateType::Enum(vs) => Value::Enum(vs.first().cloned().unwrap_or_default()),
        StateType::Ref(_) => Value::str(REF_SHARED),
        StateType::List(_) => Value::List(Vec::new()),
    }
}

/// Concretely evaluate an expression under a partial leaf assignment.
/// `None` = undecidable.
fn eval(expr: &Expr, assignment: &BTreeMap<LeafKey, Value>) -> Option<Value> {
    match expr {
        Expr::Lit(l) => Some(Value::from_literal(l)),
        Expr::Null => Some(Value::Null),
        Expr::Arg(p) => assignment.get(&LeafKey::Arg(p.clone())).cloned(),
        Expr::Read(v) => assignment.get(&LeafKey::Read(v.clone())).cloned(),
        Expr::SelfId | Expr::Field(_, _) | Expr::Append(_, _) | Expr::Remove(_, _) => None,
        // Fresh-instance assumption: a newly created target has no children.
        Expr::ChildCount(_) => Some(Value::Int(0)),
        Expr::Unary(op, inner) => {
            let v = eval(inner, assignment);
            match op {
                UnOp::Not => match v? {
                    Value::Bool(b) => Some(Value::Bool(!b)),
                    _ => None,
                },
                UnOp::IsNull => Some(Value::Bool(v?.is_null())),
                UnOp::Exists => match v? {
                    Value::Null => Some(Value::Bool(false)),
                    Value::Str(s) if s == REF_DANGLING => Some(Value::Bool(false)),
                    Value::Str(s) if s.starts_with("@ref:") => Some(Value::Bool(true)),
                    Value::Ref(_) => Some(Value::Bool(true)),
                    _ => None,
                },
                UnOp::Len => match v? {
                    Value::Str(s) => Some(Value::Int(s.chars().count() as i64)),
                    Value::List(items) => Some(Value::Int(items.len() as i64)),
                    _ => None,
                },
            }
        }
        Expr::Binary(op, a, b) => {
            let va = eval(a, assignment);
            let vb = eval(b, assignment);
            match op {
                BinOp::And => match (as_bool(&va), as_bool(&vb)) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                },
                BinOp::Or => match (as_bool(&va), as_bool(&vb)) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                },
                BinOp::Eq => Some(Value::Bool(va?.loose_eq(&vb?))),
                BinOp::Ne => Some(Value::Bool(!va?.loose_eq(&vb?))),
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let (x, y) = (va?.as_int()?, vb?.as_int()?);
                    Some(Value::Bool(match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        _ => unreachable!(),
                    }))
                }
                BinOp::In => match vb? {
                    Value::List(items) => {
                        let v = va?;
                        Some(Value::Bool(items.iter().any(|i| v.loose_eq(i))))
                    }
                    _ => None,
                },
                BinOp::Add => Some(Value::Int(va?.as_int()? + vb?.as_int()?)),
                BinOp::Sub => Some(Value::Int(va?.as_int()? - vb?.as_int()?)),
            }
        }
        Expr::ListOf(items) => {
            let vals: Option<Vec<Value>> = items.iter().map(|e| eval(e, assignment)).collect();
            Some(Value::List(vals?))
        }
    }
}

fn as_bool(v: &Option<Value>) -> Option<bool> {
    match v {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{symbolic_paths, PathOutcome};
    use lce_spec::parse_sm;

    fn sm_and_t(src: &str) -> (SmSpec, Transition) {
        let sm = parse_sm(src).unwrap();
        let t = sm.transition("T").unwrap().clone();
        (sm, t)
    }

    #[test]
    fn solves_enum_membership_both_sides() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { }
              transition T(Region: str) kind modify {
                assert(arg(Region) in ["us-east", "us-west"]) else Bad "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        // Error path: a string outside the set.
        let err = solve_path(&sm, &t, &paths[0]).unwrap();
        let v = err.args.get("Region").unwrap().as_str().unwrap();
        assert!(!["us-east", "us-west"].contains(&v));
        assert!(err.exact);
        // Success path: a member.
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        let v = ok.args.get("Region").unwrap().as_str().unwrap();
        assert!(["us-east", "us-west"].contains(&v));
    }

    #[test]
    fn solves_integer_boundaries() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { }
              transition T(N: int) kind modify {
                assert(arg(N) >= 16) else Low "m";
                assert(arg(N) <= 28) else High "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        for p in &paths {
            let w = solve_path(&sm, &t, p).unwrap();
            let n = w.args.get("N").unwrap().as_int().unwrap();
            match &p.outcome {
                PathOutcome::Error(e) if e.as_str() == "Low" => assert!(n < 16),
                PathOutcome::Error(e) if e.as_str() == "High" => {
                    assert!(!(16..=28).contains(&n) && n > 28)
                }
                _ => assert!((16..=28).contains(&n)),
            }
        }
    }

    #[test]
    fn solves_state_requirement() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { st: enum(running, stopped) = running; }
              transition T() kind modify {
                assert(read(st) == stopped) else IncorrectState "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        assert_eq!(ok.state_reqs.get("st"), Some(&Value::enum_val("stopped")));
    }

    #[test]
    fn solves_ref_liveness() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { }
              transition T(B: ref(B)) kind modify {
                assert(exists(arg(B))) else NotFound "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        let err = solve_path(&sm, &t, &paths[0]).unwrap();
        assert_eq!(err.args.get("B").unwrap().as_str(), Some(REF_DANGLING));
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        assert!(ok
            .args
            .get("B")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("@ref:"));
        assert_ne!(ok.args.get("B").unwrap().as_str(), Some(REF_DANGLING));
    }

    #[test]
    fn distinct_refs_for_inequality() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { }
              transition T(X: ref(B), Y: ref(B)) kind modify {
                assert(arg(X) != arg(Y)) else Same "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        // Error path (equal): both shared.
        let err = solve_path(&sm, &t, &paths[0]).unwrap();
        assert_eq!(err.args.get("X"), err.args.get("Y"));
        // Success path (distinct).
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        assert_ne!(ok.args.get("X"), ok.args.get("Y"));
    }

    #[test]
    fn child_count_nonzero_is_unsatisfiable_here() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { }
              transition T() kind destroy {
                assert(child_count(B) == 0) else DependencyViolation "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        // Fail side needs children, which the fresh-instance assumption
        // forbids — structural probes cover it instead.
        assert!(solve_path(&sm, &t, &paths[0]).is_none());
        assert!(solve_path(&sm, &t, &paths[1]).is_some());
    }

    #[test]
    fn undecidable_constraints_mark_inexact() {
        // A cross-machine `field` read is opaque to the solver.
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { }
              transition T(B: ref(B)) kind modify {
                assert(field(arg(B), zone) == "z") else Mismatch "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        assert!(!ok.exact);
    }

    #[test]
    fn list_state_decides_via_empty_default() {
        // Membership against own list state decides under the
        // fresh-instance (empty list) assumption.
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { routes: list(str); }
              transition T(D: str) kind modify {
                assert(!(arg(D) in read(routes))) else Dup "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        assert!(ok.exact);
        // The duplicate class is unreachable on a fresh instance (the
        // repeat-call probe covers it instead).
        assert!(solve_path(&sm, &t, &paths[0]).is_none());
    }

    #[test]
    fn optional_params_default_to_null() {
        let (sm, t) = sm_and_t(
            r#"sm A { service "s"; states { x: int = 0; }
              transition T(N: int?, M: int) kind modify {
                assert(arg(M) > 0) else Bad "m";
              } }"#,
        );
        let paths = symbolic_paths(&t, 10);
        let ok = solve_path(&sm, &t, &paths[1]).unwrap();
        assert_eq!(ok.args.get("N"), Some(&Value::Null));
    }
}
