#![deny(missing_docs)]

//! # lce-align — automated alignment
//!
//! The closing loop of the learned-emulator workflow (§4.3 of the paper):
//! make the synthesized emulator behave like the cloud, treating the cloud
//! as a black box.
//!
//! * [`symbolic`] — symbolic passes over the SM transition bodies divide
//!   the input space into **symbolically equivalent classes** (one per
//!   control-flow path: every assert's pass/fail side, every branch).
//! * [`solver`] — a finite-domain constraint solver concretizes one
//!   witness per class (enum variants, booleans, integer boundaries,
//!   observed string literals, reference liveness).
//! * [`tracegen`] — plans an executable DevOps program per witness: the
//!   dependency-chain setup (create parents, reach required states via
//!   modify transitions) followed by the probed call. Classes the planner
//!   cannot reach through public APIs are reported, not silently dropped.
//! * [`diff`] — runs each program on the learned emulator and the golden
//!   cloud, recording divergences with root-cause context (machine,
//!   transition, class).
//! * [`classify`] — maps divergences to the paper's §5 taxonomy (state
//!   errors vs transition errors).
//! * [`repair`] — closes the loop: divergent transitions are re-extracted
//!   from the documentation (modelling re-prompting with the diagnosis
//!   delta); checks the documentation never contained are **mined from
//!   probes** against the black-box cloud (single-argument domain sweeps
//!   synthesizing membership/range guards).
//! * [`report`] — alignment and error-message-quality reports.

pub mod classify;
pub mod diff;
pub mod fuzz;
pub mod repair;
pub mod report;
pub mod solver;
pub mod symbolic;
pub mod tracegen;

pub use classify::{classify_divergence, DivergenceClass};
pub use diff::{run_suite, Divergence, SuiteOutcome};
pub use fuzz::{fuzz_corpus, random_program, FuzzConfig};
pub use repair::{run_alignment, AlignmentOptions, AlignmentReport, Repair, RepairStrategy};
pub use report::message_quality;
pub use solver::{solve_path, Witness};
pub use symbolic::{symbolic_paths, PathOutcome, SymPath};
pub use tracegen::{generate_suite, plan_test, TestCase};
