//! Random API fuzzing — the baseline §4.3 argues against.
//!
//! "Whereas prior work has found emulator discrepancy using API fuzzing,
//! randomly fuzzing the entire emulator is inefficient and can make check
//! mining inefficient." This module implements that baseline so the claim
//! is measurable: seeded random DevOps programs over a catalog's API
//! surface, comparable head-to-head with the symbolic suite on divergences
//! found per program budget (ablation A4).

use lce_devops::{Arg, Program, Step};
use lce_spec::{Catalog, SmName, StateType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration for the random program generator.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Calls per program.
    pub program_len: usize,
    /// Probability of reusing a previously created resource for a
    /// reference argument (vs fabricating an id).
    pub p_reuse_ref: f64,
    /// Probability of omitting an optional argument.
    pub p_omit_optional: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            program_len: 6,
            p_reuse_ref: 0.8,
            p_omit_optional: 0.5,
        }
    }
}

/// Generate one random program against the catalog's public API surface.
/// Deterministic in `rng`.
pub fn random_program(
    catalog: &Catalog,
    cfg: &FuzzConfig,
    rng: &mut StdRng,
    name: usize,
) -> Program {
    // The callable surface, with owning machine.
    let apis: Vec<(&SmName, &lce_spec::Transition)> = catalog
        .iter()
        .flat_map(|sm| {
            sm.transitions
                .iter()
                .filter(|t| !t.internal)
                .map(move |t| (&sm.name, t))
        })
        .collect();
    // String literal pool harvested from the whole catalog.
    let mut str_pool: Vec<String> = Vec::new();
    for sm in catalog.iter() {
        for t in &sm.transitions {
            for s in t.all_stmts() {
                let exprs: Vec<&lce_spec::Expr> = match s {
                    lce_spec::Stmt::Write { value, .. } | lce_spec::Stmt::Emit { value, .. } => {
                        vec![value]
                    }
                    lce_spec::Stmt::Assert { pred, .. } | lce_spec::Stmt::If { pred, .. } => {
                        vec![pred]
                    }
                    lce_spec::Stmt::Call { args, .. } => args.iter().collect(),
                };
                for e in exprs {
                    e.visit(&mut |e| {
                        if let lce_spec::Expr::Lit(lce_spec::Literal::Str(s)) = e {
                            if !str_pool.contains(s) {
                                str_pool.push(s.clone());
                            }
                        }
                    });
                }
            }
        }
    }
    str_pool.push("fuzz".to_string());

    let mut program = Program::new(format!("fuzz-{}", name));
    // Track bindings per created resource type.
    let mut created: BTreeMap<SmName, Vec<String>> = BTreeMap::new();
    for i in 0..cfg.program_len {
        let Some((owner, t)) = apis.choose(rng) else {
            break;
        };
        let owner_spec = catalog.get(owner).expect("api table");
        let mut args: Vec<(String, Arg)> = Vec::new();
        // Non-create calls need the target id.
        if t.kind != lce_spec::TransitionKind::Create {
            let arg = ref_arg(owner, &created, cfg, rng);
            args.push((owner_spec.id_param.clone(), arg));
        }
        for p in &t.params {
            if p.optional && rng.gen_bool(cfg.p_omit_optional) {
                continue;
            }
            args.push((
                p.name.clone(),
                random_value(&p.ty, &created, &str_pool, cfg, rng),
            ));
        }
        let bind = if t.kind == lce_spec::TransitionKind::Create {
            let b = format!("f{}", i);
            created.entry((*owner).clone()).or_default().push(b.clone());
            Some(b)
        } else {
            None
        };
        program.steps.push(Step {
            bind,
            api: t.name.as_str().to_string(),
            args,
        });
    }
    program
}

fn ref_arg(
    target: &SmName,
    created: &BTreeMap<SmName, Vec<String>>,
    cfg: &FuzzConfig,
    rng: &mut StdRng,
) -> Arg {
    if rng.gen_bool(cfg.p_reuse_ref) {
        if let Some(bindings) = created.get(target) {
            if let Some(b) = bindings.choose(rng) {
                return Arg::field(b, format!("{}Id", target.as_str()));
            }
        }
    }
    Arg::str(format!(
        "{}-{:06x}",
        lce_emulator::value::id_prefix(target),
        rng.gen_range(0..0xffffffu32)
    ))
}

fn random_value(
    ty: &StateType,
    created: &BTreeMap<SmName, Vec<String>>,
    str_pool: &[String],
    cfg: &FuzzConfig,
    rng: &mut StdRng,
) -> Arg {
    use lce_emulator::Value;
    match ty {
        StateType::Bool => Arg::Lit(Value::Bool(rng.gen())),
        StateType::Int => {
            let boundary = [-1i64, 0, 1, 2, 8, 16, 28, 29, 64, 100, 1000, 16384, 65535];
            Arg::Lit(Value::Int(*boundary.choose(rng).expect("non-empty")))
        }
        StateType::Str => Arg::Lit(Value::str(
            str_pool.choose(rng).cloned().unwrap_or_default(),
        )),
        StateType::Enum(vs) => Arg::Lit(Value::Enum(vs.choose(rng).cloned().unwrap_or_default())),
        StateType::Ref(target) => {
            // The id field name must match the target's id_param; we use
            // the `{Name}Id` convention which holds across the catalogs.
            ref_arg(target, created, cfg, rng)
        }
        StateType::List(_) => Arg::Lit(Value::List(Vec::new())),
    }
}

/// Generate a seeded corpus of random programs.
pub fn fuzz_corpus(catalog: &Catalog, cfg: &FuzzConfig, seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| random_program(catalog, cfg, &mut rng, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_devops::run_program;

    #[test]
    fn corpus_is_deterministic() {
        let catalog = lce_cloud::nimbus_provider().catalog;
        let a = fuzz_corpus(&catalog, &FuzzConfig::default(), 9, 5);
        let b = fuzz_corpus(&catalog, &FuzzConfig::default(), 9, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn fuzz_programs_execute_without_internal_faults() {
        // Random programs may fail plenty — but never with interpreter
        // faults (InternalFailure indicates a spec/interpreter bug, not a
        // bad request).
        let catalog = lce_cloud::nimbus_provider().catalog;
        let corpus = fuzz_corpus(&catalog, &FuzzConfig::default(), 7, 40);
        let mut cloud = lce_cloud::nimbus_provider().golden_cloud();
        for p in &corpus {
            use lce_emulator::Backend;
            cloud.reset();
            let run = run_program(p, &mut cloud);
            for step in &run.steps {
                assert_ne!(
                    step.response.error_code(),
                    Some("InternalFailure"),
                    "interpreter fault on {}: {:?}",
                    step.call,
                    step.response.error
                );
            }
        }
    }

    #[test]
    fn fuzzing_finds_fewer_divergences_than_symbolic_per_budget() {
        use crate::diff::run_suite;
        use crate::tracegen::{generate_suite, subsample_suite, ProbeKind, TestCase};
        use lce_baselines::d2c_emulator;
        use std::collections::BTreeSet;

        let provider = lce_cloud::nimbus_provider();
        let budget = 120;

        // Symbolic suite, subsampled round-robin by machine to the budget
        // (the full suite is ordered by machine; a prefix or stride sample
        // would bias coverage toward early machines and can drop late
        // machines entirely).
        let (cases, _) = generate_suite(&provider.catalog, 16);
        let symbolic = subsample_suite(cases, budget);

        // Random corpus of the same size, wrapped as cases.
        let corpus = fuzz_corpus(&provider.catalog, &FuzzConfig::default(), 3, budget);
        let fuzz_cases: Vec<TestCase> = corpus
            .into_iter()
            .map(|program| TestCase {
                sm: lce_spec::SmName::new("fuzz"),
                api: String::new(),
                class: "fuzz".into(),
                kind: ProbeKind::Symbolic { exact: false },
                program,
            })
            .collect();

        let distinct = |cases: &[TestCase]| {
            let mut golden = provider.golden_cloud();
            let (mut d2c, _) = d2c_emulator(&provider, 42);
            let outcome = run_suite(cases, &mut golden, &mut d2c);
            outcome
                .divergences
                .iter()
                .map(|d| (d.step_api.clone(), d.golden.clone(), d.learned.clone()))
                .collect::<BTreeSet<_>>()
                .len()
        };
        let sym = distinct(&symbolic);
        let fz = distinct(&fuzz_cases);
        assert!(
            sym > fz,
            "symbolic should find more distinct divergences per budget: {} vs {}",
            sym,
            fz
        );
    }
}
