//! Differential execution: the suite against two backends.

use crate::tracegen::TestCase;
use lce_devops::{compare_runs, run_program};
use lce_emulator::Backend;
use lce_spec::SmName;
use serde::{Deserialize, Serialize};

/// One observed divergence, localized per §4.3 ("track down the source of
/// errors, e.g., to a specific SM implementation, a specific interaction").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index of the test case in the executed suite (for re-running /
    /// probing during repair).
    pub case_index: usize,
    /// Machine the probed case targeted.
    pub case_sm: SmName,
    /// Transition the probed case targeted.
    pub case_api: String,
    /// Symbolic class / probe label.
    pub class: String,
    /// Index of the first divergent step.
    pub step: usize,
    /// The API actually invoked at the divergent step (may belong to a
    /// different machine when setup diverged).
    pub step_api: String,
    /// Golden outcome: `None` = success, `Some(code)` = error code.
    pub golden: Option<String>,
    /// Learned outcome.
    pub learned: Option<String>,
    /// Human-readable description.
    pub description: String,
}

/// The outcome of one suite execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteOutcome {
    /// Cases executed.
    pub total_cases: usize,
    /// Cases whose every step aligned.
    pub aligned_cases: usize,
    /// First divergence of every misaligned case.
    pub divergences: Vec<Divergence>,
}

impl SuiteOutcome {
    /// Aligned fraction in `[0, 1]`.
    pub fn aligned_fraction(&self) -> f64 {
        if self.total_cases == 0 {
            return 1.0;
        }
        self.aligned_cases as f64 / self.total_cases as f64
    }
}

/// Run every case on both backends (resetting between cases) and collect
/// the first divergence of each misaligned case.
pub fn run_suite<G, L>(cases: &[TestCase], golden: &mut G, learned: &mut L) -> SuiteOutcome
where
    G: Backend + ?Sized,
    L: Backend + ?Sized,
{
    let mut aligned = 0usize;
    let mut divergences = Vec::new();
    for (case_index, case) in cases.iter().enumerate() {
        golden.reset();
        learned.reset();
        let rg = run_program(&case.program, golden);
        let rl = run_program(&case.program, learned);
        let cmp = compare_runs(&rg, &rl);
        if cmp.fully_aligned() {
            aligned += 1;
            continue;
        }
        let (step, description) = cmp.divergences[0].clone();
        let step_api = case
            .program
            .steps
            .get(step)
            .map(|s| s.api.clone())
            .unwrap_or_default();
        divergences.push(Divergence {
            case_index,
            case_sm: case.sm.clone(),
            case_api: case.api.clone(),
            class: case.class.clone(),
            step,
            step_api,
            golden: rg
                .steps
                .get(step)
                .and_then(|s| s.response.error_code().map(|c| c.to_string())),
            learned: rl
                .steps
                .get(step)
                .and_then(|s| s.response.error_code().map(|c| c.to_string())),
            description,
        });
    }
    SuiteOutcome {
        total_cases: cases.len(),
        aligned_cases: aligned,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::generate_suite;
    use lce_cloud::nimbus_provider;

    #[test]
    fn golden_vs_golden_is_fully_aligned() {
        let catalog = nimbus_provider().catalog;
        let (cases, _) = generate_suite(&catalog, 16);
        // Subsample for test speed: every 5th case.
        let sample: Vec<_> = cases.into_iter().step_by(5).collect();
        let mut a = nimbus_provider().golden_cloud();
        let mut b = nimbus_provider().golden_cloud();
        let outcome = run_suite(&sample, &mut a, &mut b);
        assert_eq!(
            outcome.aligned_cases,
            outcome.total_cases,
            "golden vs golden diverged: {:#?}",
            outcome.divergences.first()
        );
    }

    #[test]
    fn moto_vs_golden_diverges() {
        let catalog = nimbus_provider().catalog;
        let (cases, _) = generate_suite(&catalog, 8);
        let sample: Vec<_> = cases.into_iter().step_by(7).collect();
        let mut golden = nimbus_provider().golden_cloud();
        let mut moto = lce_baselines::MotoLike::new();
        let outcome = run_suite(&sample, &mut golden, &mut moto);
        assert!(outcome.aligned_cases < outcome.total_cases);
        // Divergences carry localization.
        let d = &outcome.divergences[0];
        assert!(!d.step_api.is_empty());
    }
}
