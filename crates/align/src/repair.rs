//! The alignment loop: detect → diagnose → repair → re-test.
//!
//! §4.3: *"If any discrepancy is identified […] we feed the LLM with the
//! delta to diagnose the error: are the differences attributed to the
//! extracted spec, or the cloud documentation? Eventually, based on the
//! diagnoses, the LLM updates the emulator to align with the cloud
//! behavior."*
//!
//! Diagnosis and repair here:
//!
//! * If the learned transition **differs from the documentation** the
//!   error is in the extracted spec → re-extract that transition (and any
//!   state variables it needs) from the docs. This models re-prompting
//!   with the divergence delta, which succeeds because the information
//!   exists.
//! * If the learned transition **matches the documentation** but the cloud
//!   rejects inputs the emulator accepts, the documentation itself is
//!   incomplete (§6, "Underspecified Documentation") → the missing check
//!   is **mined** by probing the black-box cloud: sweep the offending
//!   argument over its finite domain, partition into accepted/rejected
//!   values, and synthesize a membership or range guard with the observed
//!   error code.
//! * A spurious failure whose guard was itself mined earlier is relaxed
//!   (mined guards are marked and never confused with documented checks).

use crate::classify::{classify_divergence, DivergenceClass};
use crate::diff::{run_suite, Divergence, SuiteOutcome};
use crate::tracegen::{generate_suite, SuiteStats, TestCase, INT_SWEEP};
use lce_devops::{run_program, Arg, Program};
use lce_emulator::{Backend, Emulator, EmulatorConfig, Value};
use lce_spec::{ApiName, Catalog, ErrorCode, Expr, SmName, SmSpec, Span, StateType, Stmt};
use lce_synth::extract_resource;
use lce_wrangle::ResourceDoc;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Marker message for guards synthesized from probes, so they can be
/// relaxed (and audited) later without touching documented checks.
pub const MINED_MESSAGE: &str = "mined via alignment probing";

/// Alignment configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignmentOptions {
    /// Detect/repair rounds (the final round only verifies).
    pub max_rounds: usize,
    /// Symbolic path cap per transition.
    pub max_paths: usize,
    /// Enable probe mining for undocumented checks.
    pub enable_probe_mining: bool,
}

impl Default for AlignmentOptions {
    fn default() -> Self {
        AlignmentOptions {
            max_rounds: 4,
            max_paths: 64,
            enable_probe_mining: true,
        }
    }
}

/// How a repair was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// Re-extracted from the documentation.
    ReExtract,
    /// Guard mined from black-box probes.
    ProbeMined,
    /// A previously mined guard was removed.
    RelaxMinedGuard,
}

/// One applied repair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repair {
    /// Machine repaired.
    pub sm: SmName,
    /// Transition repaired.
    pub api: String,
    /// Strategy used.
    pub strategy: RepairStrategy,
}

/// Per-round statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Cases executed.
    pub cases: usize,
    /// Fully aligned cases.
    pub aligned: usize,
    /// Divergent cases.
    pub divergent: usize,
}

/// The alignment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignmentReport {
    /// One entry per executed round.
    pub rounds: Vec<RoundStats>,
    /// Applied repairs, in order.
    pub repairs: Vec<Repair>,
    /// Divergences remaining after the final round.
    pub unrepaired: Vec<Divergence>,
    /// Suite statistics of the final round.
    pub suite_stats: SuiteStats,
}

impl AlignmentReport {
    /// Aligned fraction before any repair.
    pub fn initial_aligned_fraction(&self) -> f64 {
        self.rounds
            .first()
            .map(|r| r.aligned as f64 / r.cases.max(1) as f64)
            .unwrap_or(1.0)
    }

    /// Aligned fraction after the final round.
    pub fn final_aligned_fraction(&self) -> f64 {
        self.rounds
            .last()
            .map(|r| r.aligned as f64 / r.cases.max(1) as f64)
            .unwrap_or(1.0)
    }

    /// `true` if the emulator ended fully aligned on the generated suite.
    pub fn fully_aligned(&self) -> bool {
        self.unrepaired.is_empty() && self.rounds.last().is_some_and(|r| r.divergent == 0)
    }
}

/// Run the alignment loop, mutating the learned catalog in place.
/// The golden cloud is driven strictly through its [`Backend`] interface
/// (it is the black box being imitated).
pub fn run_alignment(
    learned: &mut Catalog,
    learned_cfg: EmulatorConfig,
    golden_catalog: &Catalog,
    golden_cfg: EmulatorConfig,
    sections: &[ResourceDoc],
    opts: &AlignmentOptions,
) -> AlignmentReport {
    // Faithful comprehension of the docs, used by the re-extract strategy.
    let faithful: BTreeMap<SmName, SmSpec> = sections
        .iter()
        .filter_map(|s| extract_resource(s).ok())
        .map(|s| (s.name.clone(), s))
        .collect();

    let mut golden =
        Emulator::with_config(golden_catalog.clone(), golden_cfg).named("golden-cloud");

    let mut report = AlignmentReport {
        rounds: Vec::new(),
        repairs: Vec::new(),
        unrepaired: Vec::new(),
        suite_stats: SuiteStats::default(),
    };

    for round in 0..opts.max_rounds {
        let (cases, stats) = generate_suite(learned, opts.max_paths);
        report.suite_stats = stats;
        let mut learned_emu =
            Emulator::with_config(learned.clone(), learned_cfg.clone()).named("learned");
        let outcome: SuiteOutcome = run_suite(&cases, &mut golden, &mut learned_emu);
        report.rounds.push(RoundStats {
            cases: outcome.total_cases,
            aligned: outcome.aligned_cases,
            divergent: outcome.divergences.len(),
        });
        if outcome.divergences.is_empty() {
            report.unrepaired.clear();
            break;
        }
        if round + 1 == opts.max_rounds {
            report.unrepaired = outcome.divergences;
            break;
        }
        // Repair phase: one repair per (machine, transition) per round.
        let mut repaired: Vec<(SmName, String)> = Vec::new();
        for d in &outcome.divergences {
            // Localize the culprit: the machine owning the divergent step's
            // API (setup steps may implicate other machines).
            let culprit = learned
                .sm_for_api(&d.step_api)
                .map(|sm| sm.name.clone())
                .unwrap_or_else(|| d.case_sm.clone());
            let key = (culprit.clone(), d.step_api.clone());
            if repaired.contains(&key) {
                continue;
            }
            if let Some(repair) = repair_one(
                learned,
                &culprit,
                &d.step_api,
                d,
                &faithful,
                &mut golden,
                &cases,
                opts,
            ) {
                report.repairs.push(repair);
                repaired.push(key);
            }
        }
        if repaired.is_empty() {
            // Nothing repairable: record and stop.
            report.unrepaired = outcome.divergences;
            break;
        }
    }
    report
}

/// Attempt one repair. Returns `None` when no strategy applies.
#[allow(clippy::too_many_arguments)]
fn repair_one(
    learned: &mut Catalog,
    sm_name: &SmName,
    api: &str,
    d: &Divergence,
    faithful: &BTreeMap<SmName, SmSpec>,
    golden: &mut Emulator,
    cases: &[TestCase],
    opts: &AlignmentOptions,
) -> Option<Repair> {
    let truth = faithful.get(sm_name)?;
    let truth_t = truth.transition(api);
    let learned_sm = learned.get(sm_name)?;
    let learned_t = learned_sm.transition(api);

    // Strategy 1: the extracted spec differs from the docs → re-extract.
    // Mined guards are not part of the docs; ignore them when comparing.
    let differs = match (learned_t, truth_t) {
        (Some(a), Some(b)) => {
            let mut a = a.clone();
            a.body.retain(|s| !is_mined(s));
            a != *b
        }
        (None, Some(_)) => true,
        _ => false,
    };
    let missing_states: Vec<_> = truth
        .states
        .iter()
        .filter(|s| learned_sm.state(&s.name).is_none())
        .cloned()
        .collect();
    if differs || !missing_states.is_empty() {
        let spec = learned.get_mut(sm_name)?;
        for s in missing_states {
            spec.states.push(s);
        }
        if let Some(tt) = truth_t {
            match spec.transitions.iter_mut().find(|t| t.name.as_str() == api) {
                Some(slot) => *slot = tt.clone(),
                None => spec.transitions.push(tt.clone()),
            }
        }
        return Some(Repair {
            sm: sm_name.clone(),
            api: api.to_string(),
            strategy: RepairStrategy::ReExtract,
        });
    }

    // Strategy 1b: the divergent transition matches the docs but the
    // machine as a whole does not — the root cause sits in a *different*
    // transition of the same machine (e.g. a corrupted create observed
    // through a describe). Re-extract the machine ("track down the source
    // of errors … to a specific SM implementation"). Mined guards are not
    // part of the docs and are preserved across the re-extraction.
    if strip_mined(learned_sm) != *truth {
        let fresh = reextract_machine(learned_sm, truth);
        learned.insert(fresh);
        return Some(Repair {
            sm: sm_name.clone(),
            api: api.to_string(),
            strategy: RepairStrategy::ReExtract,
        });
    }

    // Strategy 1c: the culprit machine matches its documentation, so the
    // fault sits in a machine it *interacts with* through `call`s ("a
    // specific interaction"): scan the referenced machines and re-extract
    // the first one that deviates from the docs.
    for referenced in learned_sm.referenced_sms() {
        let (Some(l), Some(t)) = (learned.get(&referenced), faithful.get(&referenced)) else {
            continue;
        };
        if strip_mined(l) != *t {
            let fresh = reextract_machine(l, t);
            learned.insert(fresh);
            return Some(Repair {
                sm: referenced,
                api: d.step_api.clone(),
                strategy: RepairStrategy::ReExtract,
            });
        }
    }

    // The spec matches the docs: the documentation is incomplete.
    match classify_divergence(d) {
        DivergenceClass::SilentSuccess | DivergenceClass::WrongErrorCode
            if opts.enable_probe_mining =>
        {
            let code = d.golden.clone()?;
            let case = cases.get(d.case_index)?;
            // Structural mining from the probe's minimal trace ("we
            // leverage the SM abstraction to find the minimal API traces
            // that could trigger the discrepancies"), then fall back to
            // argument-domain sweeps.
            let guard =
                mine_structural(&case.kind, &code, learned, sm_name, api, d).or_else(|| {
                    if classify_divergence(d) == DivergenceClass::SilentSuccess {
                        mine_guard(
                            golden,
                            &case.program,
                            d.step,
                            &code,
                            learned.get(sm_name)?,
                            api,
                        )
                    } else {
                        None
                    }
                })?;
            let spec = learned.get_mut(sm_name)?;
            let t = spec
                .transitions
                .iter_mut()
                .find(|t| t.name.as_str() == api)?;
            t.body.insert(0, guard);
            Some(Repair {
                sm: sm_name.clone(),
                api: api.to_string(),
                strategy: RepairStrategy::ProbeMined,
            })
        }
        DivergenceClass::SpuriousFailure => {
            // Relax a previously mined guard with this code, if any.
            let code = d.learned.clone()?;
            let spec = learned.get_mut(sm_name)?;
            let t = spec
                .transitions
                .iter_mut()
                .find(|t| t.name.as_str() == api)?;
            let before = t.body.len();
            t.body.retain(|s| {
                !matches!(s, Stmt::Assert { error, message, .. }
                    if error.as_str() == code && message == MINED_MESSAGE)
            });
            if t.body.len() < before {
                Some(Repair {
                    sm: sm_name.clone(),
                    api: api.to_string(),
                    strategy: RepairStrategy::RelaxMinedGuard,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Structural mining: the probe family that exposed the divergence tells
/// us *which* kind of check is missing, and the SM's own effects tell us
/// which state it ranges over.
///
/// * A repeat-call/repeat-create probe where the cloud rejected the second
///   identical call ⇒ a uniqueness check over whatever list the transition
///   appends to: `assert(!(arg(p) in read(v))) else E` (or, for appends
///   delegated to a parent via an internal call, a `field` read on the
///   call target).
/// * A child-blocks-destroy probe with a diverging error code ⇒ the
///   cloud's own containment code: `assert(child_count(C) == 0) else E`.
/// * A destroy-dependency probe ⇒ an in-use check over the reference the
///   dependent's creation bound: `assert(is_null(read(v))) else E`.
fn mine_structural(
    kind: &crate::tracegen::ProbeKind,
    code: &str,
    learned: &Catalog,
    sm_name: &SmName,
    api: &str,
    d: &Divergence,
) -> Option<Stmt> {
    use crate::tracegen::ProbeKind;
    let sm = learned.get(sm_name)?;
    let t = sm.transition(api)?;
    let mined = |pred: Expr| Stmt::Assert {
        pred,
        error: ErrorCode::new(code),
        message: MINED_MESSAGE.to_string(),
        span: Span::NONE,
    };
    match kind {
        ProbeKind::RepeatCall | ProbeKind::RepeatCreate => {
            // Direct append to own state: write(v, append(read(v), arg(p)))
            // ⇒ uniqueness; direct removal: write(v, remove(read(v), arg(p)))
            // ⇒ presence.
            for s in t.all_stmts() {
                if let Stmt::Write {
                    state,
                    value: Expr::Append(list, item),
                    ..
                } = s
                {
                    if let (Expr::Read(v), Expr::Arg(p)) = (&**list, &**item) {
                        if v == state {
                            return Some(mined(Expr::not(Expr::Binary(
                                lce_spec::BinOp::In,
                                Box::new(Expr::arg(p)),
                                Box::new(Expr::read(v)),
                            ))));
                        }
                    }
                }
                if let Stmt::Write {
                    state,
                    value: Expr::Remove(list, item),
                    ..
                } = s
                {
                    if let (Expr::Read(v), Expr::Arg(p)) = (&**list, &**item) {
                        if v == state {
                            return Some(mined(Expr::Binary(
                                lce_spec::BinOp::In,
                                Box::new(Expr::arg(p)),
                                Box::new(Expr::read(v)),
                            )));
                        }
                    }
                }
            }
            // Plain value setter: write(v, arg(p)) ⇒ the cloud rejects
            // setting the value the resource already has.
            for s in t.all_stmts() {
                if let Stmt::Write {
                    state,
                    value: Expr::Arg(p),
                    ..
                } = s
                {
                    if t.param(p).is_some_and(|q| !q.optional) {
                        return Some(mined(Expr::ne(Expr::arg(p), Expr::read(state))));
                    }
                }
            }
            // Delegated append: call(target, Api, [arg(p)]) where the
            // callee appends its argument to a list variable.
            for s in t.all_stmts() {
                if let Stmt::Call {
                    target,
                    api: callee_api,
                    args,
                    ..
                } = s
                {
                    let [Expr::Arg(p)] = args.as_slice() else {
                        continue;
                    };
                    // Resolve the callee's machine through the target type.
                    let target_ty = match target {
                        Expr::Arg(q) => match &t.param(q)?.ty {
                            StateType::Ref(n) => n.clone(),
                            _ => continue,
                        },
                        Expr::Read(v) => match &sm.state(v)?.ty {
                            StateType::Ref(n) => n.clone(),
                            _ => continue,
                        },
                        _ => continue,
                    };
                    let callee_sm = learned.get(&target_ty)?;
                    let callee = callee_sm.transition(callee_api.as_str())?;
                    for cs in callee.all_stmts() {
                        if let Stmt::Write {
                            state: v,
                            value: Expr::Append(..),
                            ..
                        } = cs
                        {
                            return Some(mined(Expr::not(Expr::Binary(
                                lce_spec::BinOp::In,
                                Box::new(Expr::arg(p)),
                                Box::new(Expr::Field(Box::new(target.clone()), v.clone())),
                            ))));
                        }
                    }
                }
            }
            None
        }
        ProbeKind::ChildBlocksDestroy => {
            // The class label carries the child type:
            // `destroy-with-live-<Child>`.
            let child = d.class.strip_prefix("destroy-with-live-")?;
            Some(mined(Expr::eq(
                Expr::ChildCount(SmName::new(child)),
                Expr::int(0),
            )))
        }
        ProbeKind::DestroyDependency { dependent } => {
            // Which of this machine's ref variables does the dependent's
            // creation bind (through an internal call)?
            let dep = learned.get(dependent)?;
            let create = dep.creates().next()?;
            for s in create.all_stmts() {
                if let Stmt::Call {
                    target,
                    api: callee_api,
                    ..
                } = s
                {
                    let targets_us = match target {
                        Expr::Arg(q) => {
                            matches!(&create.param(q).map(|p| &p.ty), Some(StateType::Ref(n)) if n == sm_name)
                        }
                        _ => false,
                    };
                    if !targets_us {
                        continue;
                    }
                    let callee = sm.transition(callee_api.as_str())?;
                    for cs in callee.all_stmts() {
                        if let Stmt::Write {
                            state: v, value, ..
                        } = cs
                        {
                            // Reference binding ⇒ must be unbound to destroy.
                            if matches!(&sm.state(v).map(|s| &s.ty), Some(StateType::Ref(_))) {
                                return Some(mined(Expr::is_null(Expr::read(v))));
                            }
                            // Counter increment ⇒ must be zero to destroy.
                            if matches!(&sm.state(v).map(|s| &s.ty), Some(StateType::Int))
                                && matches!(value, Expr::Binary(lce_spec::BinOp::Add, ..))
                            {
                                return Some(mined(Expr::eq(Expr::read(v), Expr::int(0))));
                            }
                        }
                    }
                }
            }
            None
        }
        ProbeKind::Symbolic { .. }
        | ProbeKind::DomainSweep { .. }
        | ProbeKind::PairProbe { .. } => {
            // A success-class probe the cloud rejected on a fresh instance:
            // if the transition removes an argument from a list, the cloud
            // is enforcing presence.
            for s in t.all_stmts() {
                if let Stmt::Write {
                    state,
                    value: Expr::Remove(list, item),
                    ..
                } = s
                {
                    if let (Expr::Read(v), Expr::Arg(p)) = (&**list, &**item) {
                        if v == state {
                            return Some(mined(Expr::Binary(
                                lce_spec::BinOp::In,
                                Box::new(Expr::arg(p)),
                                Box::new(Expr::read(v)),
                            )));
                        }
                    }
                }
            }
            None
        }
    }
}

/// Mine a guard for an undocumented check: sweep each finite-domain
/// parameter of the divergent call across its domain against the golden
/// cloud; if exactly the rejected values share the observed error code,
/// synthesize the corresponding membership/range assert.
fn mine_guard(
    golden: &mut Emulator,
    program: &Program,
    step: usize,
    code: &str,
    sm: &SmSpec,
    api: &str,
) -> Option<Stmt> {
    let t = sm.transition(api)?;
    for p in &t.params {
        let domain: Vec<Value> = match &p.ty {
            StateType::Bool => vec![Value::Bool(true), Value::Bool(false)],
            StateType::Enum(vs) => vs.iter().map(|v| Value::Enum(v.clone())).collect(),
            StateType::Int => INT_SWEEP.iter().map(|i| Value::Int(*i)).collect(),
            _ => continue,
        };
        let mut ok_values = Vec::new();
        let mut fail_values = Vec::new();
        let mut foreign_failure = false;
        for v in &domain {
            let mut variant = program.clone();
            let s = variant.steps.get_mut(step)?;
            if s.api != api {
                return None; // divergent step is not the probed transition
            }
            // Override (or add) the swept argument.
            if let Some(slot) = s.args.iter_mut().find(|(name, _)| name == &p.name) {
                slot.1 = Arg::Lit(v.clone());
            } else {
                s.args.push((p.name.clone(), Arg::Lit(v.clone())));
            }
            golden.reset();
            let run = run_program(&variant, golden);
            // Setup must succeed for the observation to be attributable.
            if run.steps[..step].iter().any(|r| !r.response.is_ok()) {
                continue;
            }
            match run.steps.get(step)?.response.error_code() {
                None => ok_values.push(v.clone()),
                Some(c) if c == code => fail_values.push(v.clone()),
                Some(_) => foreign_failure = true,
            }
        }
        if foreign_failure || fail_values.is_empty() || ok_values.is_empty() {
            continue;
        }
        return synthesize_guard(p, &ok_values, &fail_values, code);
    }
    None
}

/// Build the guard statement from observed accept/reject sets.
fn synthesize_guard(p: &lce_spec::Param, ok: &[Value], fail: &[Value], code: &str) -> Option<Stmt> {
    let arg = Expr::arg(&p.name);
    let pred = match &p.ty {
        StateType::Enum(_) => {
            let items = ok
                .iter()
                .filter_map(|v| match v {
                    Value::Enum(s) => Some(Expr::enum_val(s.clone())),
                    _ => None,
                })
                .collect::<Vec<_>>();
            Expr::Binary(
                lce_spec::BinOp::In,
                Box::new(arg),
                Box::new(Expr::ListOf(items)),
            )
        }
        StateType::Bool => {
            let ok_true = ok.iter().any(|v| v == &Value::Bool(true));
            let ok_false = ok.iter().any(|v| v == &Value::Bool(false));
            if ok_true && ok_false {
                return None;
            }
            Expr::eq(arg, Expr::bool(ok_true))
        }
        StateType::Int => {
            let ok_ints: Vec<i64> = ok.iter().filter_map(|v| v.as_int()).collect();
            let min = *ok_ints.iter().min()?;
            let max = *ok_ints.iter().max()?;
            // The range must separate accept from reject cleanly.
            let clean = fail
                .iter()
                .filter_map(|v| v.as_int())
                .all(|f| f < min || f > max);
            if !clean {
                let items = ok_ints.into_iter().map(Expr::int).collect();
                Expr::Binary(
                    lce_spec::BinOp::In,
                    Box::new(arg),
                    Box::new(Expr::ListOf(items)),
                )
            } else {
                Expr::and(
                    Expr::Binary(
                        lce_spec::BinOp::Ge,
                        Box::new(arg.clone()),
                        Box::new(Expr::int(min)),
                    ),
                    Expr::Binary(lce_spec::BinOp::Le, Box::new(arg), Box::new(Expr::int(max))),
                )
            }
        }
        _ => return None,
    };
    // Optional parameters may always be omitted.
    let pred = if p.optional {
        Expr::Binary(
            lce_spec::BinOp::Or,
            Box::new(Expr::is_null(Expr::arg(&p.name))),
            Box::new(pred),
        )
    } else {
        pred
    };
    Some(Stmt::Assert {
        pred,
        error: ErrorCode::new(code),
        message: MINED_MESSAGE.to_string(),
        span: Span::NONE,
    })
}

/// Replace a machine with its faithful extraction, preserving any mined
/// guards (they are not part of the docs and must survive re-extraction).
fn reextract_machine(learned_sm: &SmSpec, truth: &SmSpec) -> SmSpec {
    let mined: Vec<(String, Vec<Stmt>)> = learned_sm
        .transitions
        .iter()
        .map(|t| {
            (
                t.name.as_str().to_string(),
                t.body
                    .iter()
                    .filter(|s| is_mined(s))
                    .cloned()
                    .collect::<Vec<_>>(),
            )
        })
        .filter(|(_, g)| !g.is_empty())
        .collect();
    let mut fresh = truth.clone();
    for (api, guards) in mined {
        if let Some(t) = fresh
            .transitions
            .iter_mut()
            .find(|t| t.name.as_str() == api)
        {
            for (i, g) in guards.into_iter().enumerate() {
                t.body.insert(i, g);
            }
        }
    }
    fresh
}

/// `true` if the statement is a guard synthesized by probe mining.
fn is_mined(s: &Stmt) -> bool {
    matches!(s, Stmt::Assert { message, .. } if message == MINED_MESSAGE)
}

/// A copy of the machine with all mined guards removed (for comparison
/// against the documentation).
fn strip_mined(sm: &SmSpec) -> SmSpec {
    let mut out = sm.clone();
    for t in &mut out.transitions {
        t.body.retain(|s| !is_mined(s));
    }
    out
}

/// Convenience: the APIs a repair list touched, for reports.
pub fn repaired_apis(repairs: &[Repair]) -> Vec<(SmName, ApiName)> {
    repairs
        .iter()
        .map(|r| (r.sm.clone(), ApiName::new(r.api.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_cloud::{nimbus_provider, DocFidelity};
    use lce_wrangle::wrangle_provider;

    fn nimbus_sections() -> Vec<ResourceDoc> {
        let p = nimbus_provider();
        let (docs, _) = p.render_docs(DocFidelity::Complete);
        wrangle_provider(&p, &docs).unwrap()
    }

    /// End-to-end: synthesize a noisy learned catalog, align it, verify it
    /// ends behaviourally aligned with the golden cloud.
    #[test]
    fn alignment_repairs_learned_catalog() {
        let provider = nimbus_provider();
        let sections = nimbus_sections();
        let (mut catalog, _) =
            lce_synth::synthesize(&sections, &lce_synth::PipelineConfig::learned(11)).unwrap();
        let opts = AlignmentOptions {
            max_paths: 24,
            ..AlignmentOptions::default()
        };
        let report = run_alignment(
            &mut catalog,
            EmulatorConfig::framework(),
            &provider.catalog,
            EmulatorConfig::framework(),
            &sections,
            &opts,
        );
        assert!(
            report.final_aligned_fraction() > report.initial_aligned_fraction()
                || report.initial_aligned_fraction() == 1.0,
            "alignment must improve: {:?} -> {:?}",
            report.initial_aligned_fraction(),
            report.final_aligned_fraction()
        );
        assert!(
            report.fully_aligned(),
            "residual divergences: {:#?} (rounds {:?})",
            report.unrepaired.first(),
            report.rounds
        );
        assert!(!report.repairs.is_empty());
    }

    /// Underspecified docs: the omitted checks are not re-extractable, so
    /// probe mining must carry the load (and §6's completeness caveat
    /// shows up as possibly-unrepaired stragglers).
    #[test]
    fn alignment_mines_undocumented_checks() {
        let provider = nimbus_provider();
        // Render *underspecified* docs: some failure clauses are missing.
        let (docs, omitted) = provider.render_docs(DocFidelity::OmitAsserts { every_nth: 8 });
        assert!(omitted > 0);
        let sections = wrangle_provider(&provider, &docs).unwrap();
        // Noiseless pipeline: the only gaps are the documentation's.
        let (mut catalog, _) =
            lce_synth::synthesize(&sections, &lce_synth::PipelineConfig::noiseless(3)).unwrap();
        let opts = AlignmentOptions {
            max_paths: 24,
            ..AlignmentOptions::default()
        };
        let report = run_alignment(
            &mut catalog,
            EmulatorConfig::framework(),
            &provider.catalog,
            EmulatorConfig::framework(),
            &sections,
            &opts,
        );
        assert!(
            report
                .repairs
                .iter()
                .any(|r| r.strategy == RepairStrategy::ProbeMined),
            "expected mined repairs, got {:?}",
            report.repairs
        );
        assert!(
            report.final_aligned_fraction() >= report.initial_aligned_fraction(),
            "{} -> {}",
            report.initial_aligned_fraction(),
            report.final_aligned_fraction()
        );
    }
}
