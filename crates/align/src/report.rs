//! Error-message quality reporting.
//!
//! §4.3 hypothesizes that "error codes" and "error messages" should be
//! treated differently: codes must align exactly; messages are for
//! developer consumption and may deviate — and the emulator can decode
//! failure context into responses *richer* than the cloud's. This module
//! measures both: code-match rate and message similarity over the error
//! responses of a suite, plus how often the emulator's decoded explanation
//! carries strictly more context than the raw message.

use crate::tracegen::TestCase;
use lce_devops::run_program;
use lce_emulator::Backend;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Message-quality metrics over a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageQuality {
    /// Error responses observed on both backends at the same step.
    pub paired_errors: usize,
    /// Pairs with identical error codes.
    pub code_matches: usize,
    /// Mean Jaccard word-overlap between the paired messages.
    pub mean_message_similarity: f64,
    /// Fraction of learned errors whose decoded explanation strictly
    /// extends the raw message (extra context lines / hints).
    pub richer_explanations: f64,
}

/// Compute message quality for a suite over two backends.
pub fn message_quality<G, L>(cases: &[TestCase], golden: &mut G, learned: &mut L) -> MessageQuality
where
    G: Backend + ?Sized,
    L: Backend + ?Sized,
{
    let mut paired = 0usize;
    let mut code_matches = 0usize;
    let mut sim_sum = 0.0f64;
    let mut richer = 0usize;
    let mut learned_errors = 0usize;
    for case in cases {
        golden.reset();
        learned.reset();
        let rg = run_program(&case.program, golden);
        let rl = run_program(&case.program, learned);
        for (sg, sl) in rg.steps.iter().zip(rl.steps.iter()) {
            if let Some(el) = &sl.response.error {
                learned_errors += 1;
                if el.explain().lines().count() > 1 {
                    richer += 1;
                }
            }
            if let (Some(eg), Some(el)) = (&sg.response.error, &sl.response.error) {
                paired += 1;
                if eg.code == el.code {
                    code_matches += 1;
                }
                sim_sum += jaccard(&eg.message, &el.message);
            }
        }
    }
    MessageQuality {
        paired_errors: paired,
        code_matches,
        mean_message_similarity: if paired > 0 {
            sim_sum / paired as f64
        } else {
            1.0
        },
        richer_explanations: if learned_errors > 0 {
            richer as f64 / learned_errors as f64
        } else {
            0.0
        },
    }
}

/// Word-set Jaccard similarity.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let wa: BTreeSet<&str> = a.split_whitespace().collect();
    let wb: BTreeSet<&str> = b.split_whitespace().collect();
    if wa.is_empty() && wb.is_empty() {
        return 1.0;
    }
    let inter = wa.intersection(&wb).count() as f64;
    let union = wa.union(&wb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::generate_suite;
    use lce_cloud::nimbus_provider;

    #[test]
    fn jaccard_basics() {
        assert!((jaccard("a b c", "a b c") - 1.0).abs() < 1e-9);
        assert!((jaccard("a b", "c d") - 0.0).abs() < 1e-9);
        assert!((jaccard("", "") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_vs_golden_messages_identical() {
        let catalog = nimbus_provider().catalog;
        let (cases, _) = generate_suite(&catalog, 8);
        let sample: Vec<_> = cases.into_iter().step_by(11).collect();
        let mut a = nimbus_provider().golden_cloud();
        let mut b = nimbus_provider().golden_cloud();
        let q = message_quality(&sample, &mut a, &mut b);
        assert!(q.paired_errors > 0);
        assert_eq!(q.code_matches, q.paired_errors);
        assert!((q.mean_message_similarity - 1.0).abs() < 1e-9);
        // Decoded explanations carry context beyond the raw message.
        assert!(q.richer_explanations > 0.9);
    }
}
