//! Trace planning: turn symbolic witnesses into executable programs.
//!
//! Every symbolic class yields (at most) one [`TestCase`]: a DevOps
//! program that builds the dependency chain (creating parents and
//! referenced resources), drives the target instance into the required
//! pre-state via documented modify transitions, and finally issues the
//! probed call with the witness arguments. Two structural probe families
//! supplement the symbolic classes for behaviours that are invisible to a
//! fresh instance's path conditions: *repeat-call* probes (duplicate /
//! idempotency checks) and *child-blocks-destroy* probes (containment
//! checks over live children).
//!
//! Classes the planner cannot reach through public APIs are counted, not
//! silently dropped ("Alignment Completeness", §6: hardening targets the
//! reachable paths).

use crate::solver::{
    eval_concrete, solve_path, solve_path_k, Witness, REF_DANGLING, REF_FRESH, REF_SHARED,
};
use crate::symbolic::{symbolic_paths_in, PathOutcome, SymPath};
use lce_devops::{Arg, Program};
use lce_emulator::Value;
use lce_spec::{Catalog, SmName, SmSpec, StateType, Stmt, Transition, TransitionKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What produced a test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeKind {
    /// A symbolic equivalence class; `exact` mirrors the witness.
    Symbolic {
        /// Every path constraint was decidable for the witness.
        exact: bool,
    },
    /// The same successful modify issued twice in a row.
    RepeatCall,
    /// The same create issued twice with identical arguments — catches
    /// duplicate/conflict checks (CIDR overlap, name uniqueness).
    RepeatCreate,
    /// Destroying a resource another resource's creation bound to —
    /// catches in-use checks on non-containment associations.
    DestroyDependency {
        /// The dependent machine whose create bound the target.
        dependent: SmName,
    },
    /// Destroying a parent while a child is alive.
    ChildBlocksDestroy,
    /// A success-path program with one argument swept across its finite
    /// domain. This is the probe family that *detects* checks the spec
    /// never had (a dropped assert leaves no symbolic class behind, so
    /// only black-box probing can expose it).
    DomainSweep {
        /// The swept parameter.
        param: String,
    },
    /// Two sequential calls of the same modify with different single
    /// parameters — pairwise interaction testing (cf. combinatorial API
    /// testing), catching cross-attribute couplings such as "DNS
    /// hostnames require DNS support".
    PairProbe {
        /// First call's parameter.
        first: String,
        /// Second call's parameter.
        second: String,
    },
}

/// One differential test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    /// Machine under test.
    pub sm: SmName,
    /// Transition under test.
    pub api: String,
    /// Class label (see [`SymPath::label`]) or probe name.
    pub class: String,
    /// Probe family.
    pub kind: ProbeKind,
    /// The program (setup steps + final probed step).
    pub program: Program,
}

/// Suite generation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteStats {
    /// Symbolic classes enumerated.
    pub classes: usize,
    /// Classes with no witness in the finite domains.
    pub unsatisfiable: usize,
    /// Classes whose setup could not be planned via public APIs.
    pub unplanned: usize,
    /// Test cases emitted (symbolic + structural probes).
    pub cases: usize,
}

/// Generate the full differential suite for a catalog.
pub fn generate_suite(
    catalog: &Catalog,
    max_paths_per_transition: usize,
) -> (Vec<TestCase>, SuiteStats) {
    let mut cases = Vec::new();
    let mut stats = SuiteStats::default();
    for sm in catalog.iter() {
        for t in &sm.transitions {
            if t.internal {
                continue; // not part of the public API surface
            }
            let paths = symbolic_paths_in(sm, t, max_paths_per_transition);
            for path in &paths {
                stats.classes += 1;
                let witnesses = solve_path_k(sm, t, path, 4);
                if witnesses.is_empty() {
                    stats.unsatisfiable += 1;
                    continue;
                }
                let mut planned = false;
                for witness in &witnesses {
                    if let Some(program) = plan_test(catalog, sm, t, path, witness) {
                        cases.push(TestCase {
                            sm: sm.name.clone(),
                            api: t.name.as_str().to_string(),
                            class: path.label(),
                            kind: ProbeKind::Symbolic {
                                exact: witness.exact,
                            },
                            program,
                        });
                        planned = true;
                        break;
                    }
                }
                if !planned {
                    stats.unplanned += 1;
                }
            }
            // Repeat-call probe for modifies with a success path.
            if t.kind == TransitionKind::Modify {
                if let Some(program) = plan_repeat_call(catalog, sm, t) {
                    cases.push(TestCase {
                        sm: sm.name.clone(),
                        api: t.name.as_str().to_string(),
                        class: "repeat-call".into(),
                        kind: ProbeKind::RepeatCall,
                        program,
                    });
                }
            }
            // Repeat-create probe: the same create twice, same arguments.
            if t.kind == TransitionKind::Create {
                if let Some(program) = plan_repeat_create(catalog, sm, t) {
                    cases.push(TestCase {
                        sm: sm.name.clone(),
                        api: t.name.as_str().to_string(),
                        class: "repeat-create".into(),
                        kind: ProbeKind::RepeatCreate,
                        program,
                    });
                }
            }
            // Domain sweeps over finite-domain parameters.
            for (param, value, program) in plan_domain_sweeps(catalog, sm, t) {
                cases.push(TestCase {
                    sm: sm.name.clone(),
                    api: t.name.as_str().to_string(),
                    class: format!("sweep-{}={}", param, value),
                    kind: ProbeKind::DomainSweep { param },
                    program,
                });
            }
            // Pairwise interaction probes over small-domain parameters.
            if t.kind == TransitionKind::Modify {
                for (first, v1, second, v2, program) in plan_pair_probes(catalog, sm, t) {
                    cases.push(TestCase {
                        sm: sm.name.clone(),
                        api: t.name.as_str().to_string(),
                        class: format!("pair-{}={}-then-{}={}", first, v1, second, v2),
                        kind: ProbeKind::PairProbe { first, second },
                        program,
                    });
                }
            }
        }
        // Destroy-dependency probes: create this machine, then attempt to
        // destroy each resource its create bound (skip the containment
        // parent, which the child-blocks-destroy probe already covers).
        for (dep, destroy_api, program) in plan_destroy_dependency(catalog, sm) {
            cases.push(TestCase {
                sm: dep.clone(),
                api: destroy_api,
                class: format!("destroy-dep-of-{}", sm.name),
                kind: ProbeKind::DestroyDependency {
                    dependent: sm.name.clone(),
                },
                program,
            });
        }
        // Child-blocks-destroy probe.
        if let Some((parent, _)) = &sm.parent {
            if let Some(program) = plan_child_blocks_destroy(catalog, sm, parent) {
                let destroy_api = catalog
                    .get(parent)
                    .and_then(|p| {
                        p.transitions
                            .iter()
                            .find(|t| t.kind == TransitionKind::Destroy)
                    })
                    .map(|t| t.name.as_str().to_string())
                    .unwrap_or_default();
                cases.push(TestCase {
                    sm: parent.clone(),
                    api: destroy_api,
                    class: format!("destroy-with-live-{}", sm.name),
                    kind: ProbeKind::ChildBlocksDestroy,
                    program,
                });
            }
        }
    }
    stats.cases = cases.len();
    (cases, stats)
}

/// Subsample a suite down to `budget` cases, round-robin by state machine.
///
/// [`generate_suite`] emits cases machine-by-machine, so any prefix- or
/// stride-based subsample is biased toward whichever machines the catalog
/// iterates first and can drop later machines entirely. Taking one case
/// per machine per round keeps every machine represented and preserves the
/// within-machine planning order (create probes before sweeps before pair
/// probes), which is the order the planner ranks them by expected yield.
pub fn subsample_suite(cases: Vec<TestCase>, budget: usize) -> Vec<TestCase> {
    use std::collections::{BTreeMap, VecDeque};
    let mut by_sm: BTreeMap<String, VecDeque<TestCase>> = BTreeMap::new();
    for c in cases {
        by_sm.entry(c.sm.to_string()).or_default().push_back(c);
    }
    let mut out = Vec::new();
    while out.len() < budget {
        let mut any = false;
        for q in by_sm.values_mut() {
            if out.len() >= budget {
                break;
            }
            if let Some(c) = q.pop_front() {
                out.push(c);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    out
}

/// Plan one symbolic test case.
pub fn plan_test(
    catalog: &Catalog,
    sm: &SmSpec,
    t: &Transition,
    _path: &SymPath,
    witness: &Witness,
) -> Option<Program> {
    let mut planner = Planner::new(catalog, format!("sym-{}-{}", sm.name, t.name));
    if t.kind == TransitionKind::Create {
        let args = planner.resolve_args(t, &witness.args)?;
        planner.push_call(None, t.name.as_str(), args);
    } else {
        let target = planner.instantiate_with(&sm.name, &witness.state_reqs)?;
        let mut args = planner.resolve_args(t, &witness.args)?;
        args.push((sm.id_param.clone(), Arg::field(&target, &sm.id_param)));
        planner.push_call(None, t.name.as_str(), args);
    }
    Some(planner.finish())
}

/// Plan a repeat-call probe: run the transition's success witness twice.
fn plan_repeat_call(catalog: &Catalog, sm: &SmSpec, t: &Transition) -> Option<Program> {
    let paths = symbolic_paths_in(sm, t, 64);
    let success = paths.iter().find(|p| p.outcome == PathOutcome::Success)?;
    let witness = solve_path(sm, t, success)?;
    let mut planner = Planner::new(catalog, format!("repeat-{}-{}", sm.name, t.name));
    let target = planner.instantiate_with(&sm.name, &witness.state_reqs)?;
    for _ in 0..2 {
        let mut args = planner.resolve_args(t, &witness.args)?;
        args.push((sm.id_param.clone(), Arg::field(&target, &sm.id_param)));
        planner.push_call(None, t.name.as_str(), args);
    }
    Some(planner.finish())
}

/// Integer boundary candidates for sweeps. Without access to the cloud's
/// spec (it is a black box), probing uses a standard boundary ladder —
/// the "Alignment Completeness" caveat of §6 applies: sweeps harden common
/// boundaries, they do not prove the absence of exotic ones.
pub const INT_SWEEP: &[i64] = &[
    -1, 0, 1, 2, 3, 7, 8, 15, 16, 28, 29, 30, 100, 1000, 16384, 16385, 30000, 30001, 64511, 64512,
    65534, 65535,
];

/// Plan the sweep programs for one transition: the success-path witness
/// program, re-issued with each finite-domain value of each parameter.
/// Returns `(param, value-label, program)` triples.
pub fn plan_domain_sweeps(
    catalog: &Catalog,
    sm: &SmSpec,
    t: &Transition,
) -> Vec<(String, String, Program)> {
    let paths = symbolic_paths_in(sm, t, 64);
    let Some(success) = paths.iter().find(|p| p.outcome == PathOutcome::Success) else {
        return Vec::new();
    };
    let Some(witness) = solve_path(sm, t, success) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for p in &t.params {
        let sweep: Vec<Value> = match &p.ty {
            StateType::Bool => vec![Value::Bool(true), Value::Bool(false)],
            StateType::Enum(vs) => vs.iter().map(|v| Value::Enum(v.clone())).collect(),
            StateType::Int => INT_SWEEP.iter().map(|i| Value::Int(*i)).collect(),
            _ => continue,
        };
        for v in sweep {
            if witness.args.get(&p.name).is_some_and(|w| w.loose_eq(&v)) {
                continue; // the base witness already covers this value
            }
            let mut args = witness.args.clone();
            args.insert(p.name.clone(), v.clone());
            let mut planner = Planner::new(
                catalog,
                format!("sweep-{}-{}-{}={}", sm.name, t.name, p.name, v),
            );
            let plan = (|| {
                if t.kind == TransitionKind::Create {
                    let resolved = planner.resolve_args(t, &args)?;
                    planner.push_call(None, t.name.as_str(), resolved);
                } else {
                    let target = planner.instantiate_with(&sm.name, &witness.state_reqs)?;
                    let mut resolved = planner.resolve_args(t, &args)?;
                    resolved.push((sm.id_param.clone(), Arg::field(&target, &sm.id_param)));
                    planner.push_call(None, t.name.as_str(), resolved);
                }
                Some(())
            })();
            if plan.is_some() {
                out.push((p.name.clone(), v.to_string(), planner.finish()));
            }
        }
    }
    out
}

/// Plan pairwise interaction probes: the transition is called twice in
/// sequence, each call supplying a *single* small-domain parameter. The
/// first call establishes state, the second observes any coupling check.
/// Returns `(param1, value1-label, param2, value2-label, program)`.
pub fn plan_pair_probes(
    catalog: &Catalog,
    sm: &SmSpec,
    t: &Transition,
) -> Vec<(String, String, String, String, Program)> {
    // Only bool/enum parameters participate; others stay at defaults.
    let small: Vec<(&str, Vec<Value>)> = t
        .params
        .iter()
        .filter_map(|p| match &p.ty {
            StateType::Bool => Some((p.name.as_str(), vec![Value::Bool(true), Value::Bool(false)])),
            StateType::Enum(vs) if vs.len() <= 4 => Some((
                p.name.as_str(),
                vs.iter().map(|v| Value::Enum(v.clone())).collect(),
            )),
            _ => None,
        })
        .collect();
    if small.len() < 2 {
        return Vec::new();
    }
    // Require every non-optional parameter to be in the small set (we
    // cannot omit required parameters).
    if t.params
        .iter()
        .any(|p| !p.optional && !small.iter().any(|(n, _)| *n == p.name))
    {
        return Vec::new();
    }
    const MAX_COMBOS: usize = 32;
    let mut out = Vec::new();
    for (p1, d1) in &small {
        for (p2, d2) in &small {
            if p1 == p2 {
                continue;
            }
            for v1 in d1 {
                for v2 in d2 {
                    if out.len() >= MAX_COMBOS {
                        return out;
                    }
                    let mut planner = Planner::new(
                        catalog,
                        format!("pair-{}-{}-{}-{}", sm.name, t.name, p1, p2),
                    );
                    let plan = (|| {
                        let target = planner.instantiate(&sm.name)?;
                        for (p, v) in [(p1, v1), (p2, v2)] {
                            let mut args =
                                vec![(sm.id_param.clone(), Arg::field(&target, &sm.id_param))];
                            args.push((p.to_string(), Arg::Lit((*v).clone())));
                            // Required params beyond the probed one still
                            // need values.
                            for q in &t.params {
                                if !q.optional && q.name != **p {
                                    let (_, dq) = small
                                        .iter()
                                        .find(|(n, _)| *n == q.name)
                                        .expect("checked above");
                                    args.push((q.name.clone(), Arg::Lit(dq[0].clone())));
                                }
                            }
                            planner.push_call(None, t.name.as_str(), args);
                        }
                        Some(())
                    })();
                    if plan.is_some() {
                        out.push((
                            p1.to_string(),
                            v1.to_string(),
                            p2.to_string(),
                            v2.to_string(),
                            planner.finish(),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Plan a repeat-create probe: issue the same create twice with identical
/// arguments. Conflict checks (unique CIDR, unique name) fire on the
/// second call in the cloud; an emulator that lost them silently creates a
/// duplicate.
fn plan_repeat_create(catalog: &Catalog, sm: &SmSpec, t: &Transition) -> Option<Program> {
    let paths = symbolic_paths_in(sm, t, 64);
    let success = paths.iter().find(|p| p.outcome == PathOutcome::Success)?;
    let witness = solve_path(sm, t, success)?;
    let mut planner = Planner::new(catalog, format!("recreate-{}-{}", sm.name, t.name));
    let args = planner.resolve_args(t, &witness.args)?;
    planner.push_call(None, t.name.as_str(), args.clone());
    planner.push_call(None, t.name.as_str(), args);
    Some(planner.finish())
}

/// Plan destroy-dependency probes: create `sm` (binding its required
/// references), then attempt to destroy each bound reference. Returns
/// `(dependency machine, destroy API, program)` triples.
fn plan_destroy_dependency(catalog: &Catalog, sm: &SmSpec) -> Vec<(SmName, String, Program)> {
    let mut out = Vec::new();
    let Some(create) = sm.creates().next() else {
        return out;
    };
    let parent = sm.parent.as_ref().map(|(p, _)| p.clone());
    for p in &create.params {
        let StateType::Ref(dep) = &p.ty else { continue };
        if p.optional || Some(dep) == parent.as_ref() || dep == &sm.name {
            continue;
        }
        let Some(dep_spec) = catalog.get(dep) else {
            continue;
        };
        let Some(destroy) = dep_spec
            .transitions
            .iter()
            .find(|t| t.kind == TransitionKind::Destroy)
        else {
            continue;
        };
        let mut planner = Planner::new(catalog, format!("destroydep-{}-{}", sm.name, dep));
        let plan = (|| {
            planner.instantiate(&sm.name)?;
            let dep_binding = planner.shared.get(dep)?.clone();
            let args = vec![(
                dep_spec.id_param.clone(),
                Arg::field(&dep_binding, &dep_spec.id_param),
            )];
            planner.push_call(None, destroy.name.as_str(), args);
            Some(())
        })();
        if plan.is_some() {
            out.push((
                dep.clone(),
                destroy.name.as_str().to_string(),
                planner.finish(),
            ));
        }
    }
    out
}

/// Plan a child-blocks-destroy probe.
fn plan_child_blocks_destroy(
    catalog: &Catalog,
    child: &SmSpec,
    parent: &SmName,
) -> Option<Program> {
    let parent_spec = catalog.get(parent)?;
    let destroy = parent_spec
        .transitions
        .iter()
        .find(|t| t.kind == TransitionKind::Destroy)?;
    let mut planner = Planner::new(catalog, format!("contain-{}-{}", parent, child.name));
    // Creating the child pulls in (and memoizes) the shared parent.
    let _child = planner.instantiate(&child.name)?;
    let parent_binding = planner.shared.get(parent)?.clone();
    let args = vec![(
        parent_spec.id_param.clone(),
        Arg::field(&parent_binding, &parent_spec.id_param),
    )];
    planner.push_call(None, destroy.name.as_str(), args);
    Some(planner.finish())
}

/// The incremental program planner.
struct Planner<'a> {
    catalog: &'a Catalog,
    program: Program,
    /// Shared (memoized) instance binding per resource type.
    shared: BTreeMap<SmName, String>,
    /// Tracked abstract state per binding (defaults + decidable writes).
    tracked: BTreeMap<String, BTreeMap<String, Value>>,
    counter: usize,
    in_progress: BTreeSet<SmName>,
}

impl<'a> Planner<'a> {
    fn new(catalog: &'a Catalog, name: String) -> Self {
        Planner {
            catalog,
            program: Program::new(name),
            shared: BTreeMap::new(),
            tracked: BTreeMap::new(),
            counter: 0,
            in_progress: BTreeSet::new(),
        }
    }

    fn finish(self) -> Program {
        self.program
    }

    fn fresh_binding(&mut self) -> String {
        self.counter += 1;
        format!("r{}", self.counter)
    }

    fn push_call(&mut self, bind: Option<String>, api: &str, args: Vec<(String, Arg)>) {
        self.program.steps.push(lce_devops::Step {
            bind,
            api: api.to_string(),
            args,
        });
    }

    /// Get (or create) the shared instance of a type; returns its binding.
    fn instantiate(&mut self, sm: &SmName) -> Option<String> {
        if let Some(b) = self.shared.get(sm) {
            return Some(b.clone());
        }
        let b = self.create_instance(sm, &BTreeMap::new())?;
        self.shared.insert(sm.clone(), b.clone());
        Some(b)
    }

    /// Create the probed instance and drive it into the required
    /// pre-state. Requirements the create transition can satisfy directly
    /// (variables written from create arguments) are folded into the
    /// create call; the rest go through modify-transition planning.
    fn instantiate_with(
        &mut self,
        sm_name: &SmName,
        reqs: &BTreeMap<String, Value>,
    ) -> Option<String> {
        if reqs.is_empty() {
            return self.instantiate(sm_name);
        }
        let sm = self.catalog.get(sm_name)?.clone();
        let create = sm.creates().next()?.clone();
        // Split requirements into create-settable and post-create.
        let mut create_reqs = BTreeMap::new();
        let mut post_reqs = BTreeMap::new();
        for (var, value) in reqs {
            if arg_setter_param(&create, var).is_some()
                && !matches!(value, Value::Str(m) if m.starts_with("@ref:"))
            {
                create_reqs.insert(var.clone(), value.clone());
            } else {
                post_reqs.insert(var.clone(), value.clone());
            }
        }
        let binding = self.create_instance(sm_name, &create_reqs)?;
        self.reach_state(sm_name, &binding, &post_reqs)?;
        Some(binding)
    }

    /// Create a fresh (non-memoized) instance of a type, folding the given
    /// state requirements into the create arguments where possible.
    fn create_instance(
        &mut self,
        sm_name: &SmName,
        create_reqs: &BTreeMap<String, Value>,
    ) -> Option<String> {
        if self.in_progress.contains(sm_name) {
            return None; // dependency cycle
        }
        self.in_progress.insert(sm_name.clone());
        let result = self.create_instance_inner(sm_name, create_reqs);
        self.in_progress.remove(sm_name);
        result
    }

    fn create_instance_inner(
        &mut self,
        sm_name: &SmName,
        create_reqs: &BTreeMap<String, Value>,
    ) -> Option<String> {
        let sm = self.catalog.get(sm_name)?.clone();
        let create = sm.creates().next()?.clone();
        let paths = symbolic_paths_in(&sm, &create, 128);
        // Find a success path whose witness tolerates the pinned
        // requirement arguments.
        let mut witness = None;
        for path in paths.iter().filter(|p| p.outcome == PathOutcome::Success) {
            let Some(mut w) = solve_path(&sm, &create, path) else {
                continue;
            };
            // Pin requirement-driven arguments.
            for (var, value) in create_reqs {
                if let Some(p) = arg_setter_param(&create, var) {
                    w.args.insert(p, value.clone());
                }
            }
            // Re-validate the path constraints under the pinned arguments.
            let ok = path.constraints.iter().all(|c| {
                match eval_concrete(&c.pred, &w.args, &BTreeMap::new()) {
                    Some(Value::Bool(b)) => b == c.expected,
                    _ => true, // undecidable: optimistic, verified at runtime
                }
            });
            if ok {
                witness = Some(w);
                break;
            }
        }
        let mut witness = witness?;
        // Uniquify fallback strings so sibling instances are
        // distinguishable (peering CIDR overlap, duplicate names, …).
        let unique = format!("witness-{}", self.counter + 1);
        for v in witness.args.values_mut() {
            if let Value::Str(s) = v {
                if s == "witness" {
                    *s = unique.clone();
                }
            }
        }
        let resolved = self.resolve_args(&create, &witness.args)?;
        let binding = self.fresh_binding();
        self.push_call(Some(binding.clone()), create.name.as_str(), resolved);
        // Track the new instance's abstract state: defaults, then the
        // create body's decidable writes.
        let mut state: BTreeMap<String, Value> = sm
            .states
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    Value::default_for(&s.ty, s.nullable, &s.default),
                )
            })
            .collect();
        apply_writes(&create.body, &witness.args, &mut state);
        self.tracked.insert(binding.clone(), state);
        Some(binding)
    }

    /// Resolve witness argument values into program arguments, creating
    /// referenced resources as needed. `Null` values omit the parameter.
    fn resolve_args(
        &mut self,
        t: &Transition,
        args: &BTreeMap<String, Value>,
    ) -> Option<Vec<(String, Arg)>> {
        let mut out = Vec::new();
        for p in &t.params {
            let v = args.get(&p.name).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                continue;
            }
            let arg = match (&p.ty, &v) {
                (StateType::Ref(target), Value::Str(marker)) if marker.starts_with("@ref:") => {
                    if marker == REF_DANGLING {
                        Arg::Lit(Value::str(format!("{}-ffffff", dangling_prefix(target))))
                    } else {
                        let binding = if marker == REF_SHARED {
                            self.instantiate(target)?
                        } else if marker.starts_with(REF_FRESH) {
                            self.create_instance(target, &BTreeMap::new())?
                        } else {
                            self.instantiate(target)?
                        };
                        let id_param = self.catalog.get(target)?.id_param.clone();
                        Arg::field(&binding, &id_param)
                    }
                }
                _ => Arg::Lit(v.clone()),
            };
            out.push((p.name.clone(), arg));
        }
        Some(out)
    }

    /// Drive the target instance's state variables to the required values
    /// using documented modify transitions (direct argument setters first,
    /// then bounded chains of literal setters).
    fn reach_state(
        &mut self,
        sm_name: &SmName,
        binding: &String,
        reqs: &BTreeMap<String, Value>,
    ) -> Option<()> {
        let sm = self.catalog.get(sm_name)?.clone();
        for (var, value) in reqs {
            let current = self
                .tracked
                .get(binding)
                .and_then(|s| s.get(var))
                .cloned()
                .unwrap_or(Value::Null);
            if current.loose_eq(value) {
                continue;
            }
            // Reference-state requirements (e.g. "nic must be associated")
            // and list requirements are not plannable generically.
            if matches!(value, Value::Str(m) if m.starts_with("@ref:")) {
                return None;
            }
            if !self.set_var(&sm, binding, var, value) {
                return None;
            }
        }
        Some(())
    }

    /// Try to set one variable. Returns false if no documented setter
    /// reaches the value.
    fn set_var(&mut self, sm: &SmSpec, binding: &String, var: &str, value: &Value) -> bool {
        // 1. Direct argument setter: a modify with a (possibly
        //    optional-guarded) `write(var, arg(P))`, invoked with *minimal*
        //    arguments — only the pinned parameter plus required ones — so
        //    unrelated guarded branches stay untaken.
        for t in &sm.transitions {
            if t.kind != TransitionKind::Modify {
                continue;
            }
            if let Some(param) = arg_setter_param(t, var) {
                let mut args: BTreeMap<String, Value> = BTreeMap::new();
                for p in &t.params {
                    if p.name == param {
                        args.insert(p.name.clone(), value.clone());
                    } else if !p.optional {
                        args.insert(p.name.clone(), default_value_for(&p.ty));
                    } else {
                        args.insert(p.name.clone(), Value::Null);
                    }
                }
                // Verify the minimal call against the tracked state.
                let state = self.tracked.get(binding).cloned().unwrap_or_default();
                if !preconditions_hold(&t.body, &args, &state) {
                    continue;
                }
                let Some(mut resolved) = self.resolve_args(t, &args) else {
                    continue;
                };
                resolved.push((sm.id_param.clone(), Arg::field(binding, &sm.id_param)));
                self.push_call(None, t.name.as_str(), resolved);
                if let Some(state) = self.tracked.get_mut(binding) {
                    apply_writes(&t.body, &args, state);
                    state.insert(var.to_string(), value.clone());
                }
                return true;
            }
        }
        // 2. Literal-setter chains, breadth-first up to depth 3 (e.g.
        //    running → stopped via StopInstance).
        let start = match self.tracked.get(binding) {
            Some(s) => s.clone(),
            None => return false,
        };
        type Chain<'c> = Vec<(&'c Transition, BTreeMap<String, Value>)>;
        let mut frontier: Vec<(BTreeMap<String, Value>, Chain)> = vec![(start, vec![])];
        for _ in 0..3 {
            let mut next = Vec::new();
            for (state, chain) in &frontier {
                for t in &sm.transitions {
                    if t.kind != TransitionKind::Modify
                        || chain.iter().any(|(c, _)| std::ptr::eq(*c, t))
                    {
                        continue;
                    }
                    if !writes_any_literal(t) {
                        continue;
                    }
                    // Solve the setter's own success witness so required
                    // arguments are supplied.
                    let paths = symbolic_paths_in(sm, t, 32);
                    let Some(success) = paths.iter().find(|p| p.outcome == PathOutcome::Success)
                    else {
                        continue;
                    };
                    let Some(witness) = solve_path(sm, t, success) else {
                        continue;
                    };
                    if !preconditions_hold(&t.body, &witness.args, state) {
                        continue;
                    }
                    let mut new_state = state.clone();
                    apply_writes(&t.body, &witness.args, &mut new_state);
                    let mut new_chain = chain.clone();
                    new_chain.push((t, witness.args.clone()));
                    if new_state.get(var).is_some_and(|v| v.loose_eq(value)) {
                        // Emit the chain with full argument lists.
                        for (step, step_args) in &new_chain {
                            let Some(mut resolved) = self.resolve_args(step, step_args) else {
                                return false;
                            };
                            resolved.push((sm.id_param.clone(), Arg::field(binding, &sm.id_param)));
                            self.push_call(None, step.name.as_str(), resolved);
                        }
                        if let Some(s) = self.tracked.get_mut(binding) {
                            *s = new_state;
                        }
                        return true;
                    }
                    next.push((new_state, new_chain));
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        false
    }
}

/// The id prefix a dangling reference should imitate.
fn dangling_prefix(sm: &SmName) -> String {
    lce_emulator::value::id_prefix(sm)
}

/// A non-null default for a required setter parameter.
fn default_value_for(ty: &StateType) -> Value {
    match ty {
        StateType::Bool => Value::Bool(false),
        StateType::Int => Value::Int(1),
        StateType::Str => Value::str("witness"),
        StateType::Enum(vs) => Value::Enum(vs.first().cloned().unwrap_or_default()),
        StateType::Ref(_) => Value::str(crate::solver::REF_SHARED),
        StateType::List(_) => Value::List(Vec::new()),
    }
}

/// If the transition contains `write(var, arg(P))` (top-level or inside an
/// if), return `P`.
fn arg_setter_param(t: &Transition, var: &str) -> Option<String> {
    for s in t.all_stmts() {
        if let Stmt::Write {
            state,
            value: lce_spec::Expr::Arg(p),
            ..
        } = s
        {
            if state == var {
                return Some(p.clone());
            }
        }
    }
    None
}

/// `true` if the transition writes at least one literal value.
fn writes_any_literal(t: &Transition) -> bool {
    t.all_stmts().iter().any(|s| {
        matches!(
            s,
            Stmt::Write {
                value: lce_spec::Expr::Lit(_),
                ..
            }
        )
    })
}

/// Abstractly check that every decidable assert in the body passes.
fn preconditions_hold(
    body: &[Stmt],
    args: &BTreeMap<String, Value>,
    state: &BTreeMap<String, Value>,
) -> bool {
    for s in body {
        match s {
            Stmt::Assert { pred, .. } => {
                if let Some(Value::Bool(false)) = eval_concrete(pred, args, state) {
                    return false;
                }
            }
            Stmt::If {
                pred, then, els, ..
            } => match eval_concrete(pred, args, state) {
                Some(Value::Bool(true)) if !preconditions_hold(then, args, state) => {
                    return false;
                }
                Some(Value::Bool(false)) if !preconditions_hold(els, args, state) => {
                    return false;
                }
                _ => {}
            },
            _ => {}
        }
    }
    true
}

/// Apply the body's decidable writes to a tracked state (branches follow
/// decidable conditions; undecidable writes erase the variable).
fn apply_writes(
    body: &[Stmt],
    args: &BTreeMap<String, Value>,
    state: &mut BTreeMap<String, Value>,
) {
    for s in body {
        match s {
            Stmt::Write {
                state: var, value, ..
            } => match eval_concrete(value, args, state) {
                Some(v) => {
                    state.insert(var.clone(), v);
                }
                None => {
                    state.remove(var);
                }
            },
            Stmt::If {
                pred, then, els, ..
            } => match eval_concrete(pred, args, state) {
                Some(Value::Bool(true)) => apply_writes(then, args, state),
                Some(Value::Bool(false)) => apply_writes(els, args, state),
                _ => {
                    // Unknown branch: writes on either side become unknown.
                    let mut vars = Vec::new();
                    for branch in [then, els] {
                        for st in branch {
                            st.visit(&mut |s| {
                                if let Stmt::Write { state: var, .. } = s {
                                    vars.push(var.clone());
                                }
                            });
                        }
                    }
                    for v in vars {
                        state.remove(&v);
                    }
                }
            },
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_cloud::nimbus_provider;
    use lce_devops::run_program;

    fn catalog() -> Catalog {
        nimbus_provider().catalog
    }

    #[test]
    fn suite_covers_every_public_transition() {
        let c = catalog();
        let (cases, stats) = generate_suite(&c, 64);
        assert!(stats.classes > 400, "classes: {}", stats.classes);
        assert!(cases.len() > 300, "cases: {}", cases.len());
        // Every machine appears.
        let probed: BTreeSet<&SmName> = cases.iter().map(|c| &c.sm).collect();
        assert_eq!(probed.len(), c.len(), "all machines probed");
    }

    #[test]
    fn subsample_keeps_every_machine_represented() {
        let c = catalog();
        let (cases, _) = generate_suite(&c, 16);
        let machines: BTreeSet<&SmName> = cases.iter().map(|c| &c.sm).collect();
        let budget = 120;
        assert!(cases.len() > budget);
        let sampled = subsample_suite(cases.clone(), budget);
        assert_eq!(sampled.len(), budget);
        // Every machine survives the subsample (a stride sample drops
        // machines late in catalog order — the bias this helper fixes).
        let kept: BTreeSet<&SmName> = sampled.iter().map(|c| &c.sm).collect();
        assert_eq!(kept.len(), machines.len(), "all machines kept");
        // Deterministic: same input, same output.
        let again = subsample_suite(cases, budget);
        let key = |cs: &[TestCase]| {
            cs.iter()
                .map(|c| (c.sm.to_string(), c.class.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&sampled), key(&again));
        // Budget larger than the suite returns everything.
        let tiny = subsample_suite(sampled.clone(), budget * 10);
        assert_eq!(tiny.len(), budget);
    }

    #[test]
    fn planned_setups_execute_on_golden_cloud() {
        // Setup steps (everything before the probe) must succeed on the
        // golden cloud for symbolic cases planned from the golden catalog.
        let c = catalog();
        let (cases, _) = generate_suite(&c, 64);
        let mut setup_failures = 0usize;
        let mut total = 0usize;
        for case in &cases {
            if !matches!(case.kind, ProbeKind::Symbolic { exact: true }) {
                continue;
            }
            total += 1;
            let mut cloud = nimbus_provider().golden_cloud();
            let run = run_program(&case.program, &mut cloud);
            let setup = &run.steps[..run.steps.len().saturating_sub(1)];
            if setup.iter().any(|s| !s.response.is_ok()) {
                setup_failures += 1;
            }
        }
        assert!(total > 100);
        // Allow a small long tail (cross-machine constraints the planner
        // cannot see), but the overwhelming majority must work.
        assert!(
            (setup_failures as f64) < (total as f64) * 0.05,
            "{}/{} setups failed",
            setup_failures,
            total
        );
    }

    #[test]
    fn exact_probes_land_in_their_class_on_golden() {
        // For exact symbolic witnesses, the probed step's outcome on the
        // golden cloud must match the class outcome (success vs the
        // specific error code).
        let c = catalog();
        let (cases, _) = generate_suite(&c, 64);
        let mut mismatches = 0usize;
        let mut checked = 0usize;
        for case in &cases {
            let ProbeKind::Symbolic { exact: true } = case.kind else {
                continue;
            };
            let mut cloud = nimbus_provider().golden_cloud();
            let run = run_program(&case.program, &mut cloud);
            let setup_ok = run.steps[..run.steps.len() - 1]
                .iter()
                .all(|s| s.response.is_ok());
            if !setup_ok {
                continue;
            }
            checked += 1;
            let probe = run.steps.last().unwrap();
            let expected_err = case.class.split('[').next().unwrap();
            let matches = match probe.response.error_code() {
                None => expected_err == "ok",
                Some(code) => code == expected_err,
            };
            if !matches {
                mismatches += 1;
            }
        }
        assert!(checked > 100, "checked only {}", checked);
        assert!(
            (mismatches as f64) < (checked as f64) * 0.10,
            "{}/{} probes missed their class",
            mismatches,
            checked
        );
    }

    #[test]
    fn instance_state_reachable_via_literal_setters() {
        // StartInstance's success class needs state == stopped, reached
        // via StopInstance. The planner must find that chain.
        let c = catalog();
        let sm = c.get(&SmName::new("Instance")).unwrap();
        let t = sm.transition("StartInstance").unwrap();
        let paths = symbolic_paths_in(sm, t, 16);
        let success = paths
            .iter()
            .find(|p| p.outcome == PathOutcome::Success)
            .unwrap();
        let w = solve_path(sm, t, success).unwrap();
        let program = plan_test(&c, sm, t, success, &w).expect("plannable");
        let apis: Vec<&str> = program.steps.iter().map(|s| s.api.as_str()).collect();
        assert!(apis.contains(&"StopInstance"), "{:?}", apis);
        // And it actually works on the golden cloud.
        let mut cloud = nimbus_provider().golden_cloud();
        let run = run_program(&program, &mut cloud);
        assert!(run.all_ok(), "{:?}", run.error_codes());
    }

    #[test]
    fn child_blocks_destroy_probe_hits_dependency_violation() {
        let c = catalog();
        let (cases, _) = generate_suite(&c, 8);
        let case = cases
            .iter()
            .find(|c| c.kind == ProbeKind::ChildBlocksDestroy && c.sm.as_str() == "Vpc")
            .expect("vpc containment probe");
        let mut cloud = nimbus_provider().golden_cloud();
        let run = run_program(&case.program, &mut cloud);
        let last = run.steps.last().unwrap();
        assert_eq!(last.response.error_code(), Some("DependencyViolation"));
    }

    #[test]
    fn repeat_call_probe_catches_duplicate_checks() {
        let c = catalog();
        let (cases, _) = generate_suite(&c, 8);
        let case = cases
            .iter()
            .find(|c| c.api == "CreateRoute" && c.kind == ProbeKind::RepeatCall)
            .expect("route repeat probe");
        let mut cloud = nimbus_provider().golden_cloud();
        let run = run_program(&case.program, &mut cloud);
        let last = run.steps.last().unwrap();
        assert_eq!(last.response.error_code(), Some("RouteAlreadyExists"));
    }
}
