//! Alignment-suite checks against the second provider: the symbolic
//! machinery is provider-agnostic, so everything that holds for Nimbus
//! must hold for Stratus.

use lce_align::run_suite;
use lce_align::tracegen::generate_suite;
use lce_cloud::stratus_provider;
use std::collections::BTreeSet;

#[test]
fn stratus_suite_covers_every_machine() {
    let catalog = stratus_provider().catalog;
    let (cases, stats) = generate_suite(&catalog, 32);
    let probed: BTreeSet<&str> = cases.iter().map(|c| c.sm.as_str()).collect();
    for sm in catalog.iter() {
        assert!(
            probed.contains(sm.name.as_str()),
            "machine {} has no test case",
            sm.name
        );
    }
    assert!(stats.classes > 80, "classes: {}", stats.classes);
    // The planner reaches the overwhelming majority of classes.
    assert!(
        (stats.unplanned as f64) < 0.25 * stats.classes as f64,
        "unplanned {}/{}",
        stats.unplanned,
        stats.classes
    );
}

#[test]
fn stratus_golden_vs_golden_fully_aligned() {
    let provider = stratus_provider();
    let (cases, _) = generate_suite(&provider.catalog, 16);
    let mut a = provider.golden_cloud();
    let mut b = provider.golden_cloud();
    let outcome = run_suite(&cases, &mut a, &mut b);
    assert_eq!(
        outcome.aligned_cases,
        outcome.total_cases,
        "first divergence: {:#?}",
        outcome.divergences.first()
    );
}

#[test]
fn stratus_vm_power_lifecycle_classes_reachable() {
    // ResizeVirtualMachine requires a deallocated VM: the planner must
    // find the PowerOff → Deallocate chain.
    let provider = stratus_provider();
    let (cases, _) = generate_suite(&provider.catalog, 32);
    let resize_ok = cases
        .iter()
        .find(|c| c.api == "ResizeVirtualMachine" && c.class.starts_with("ok"))
        .expect("resize success class must be planned");
    let apis: Vec<&str> = resize_ok
        .program
        .steps
        .iter()
        .map(|s| s.api.as_str())
        .collect();
    assert!(
        apis.contains(&"DeallocateVirtualMachine"),
        "setup must deallocate: {:?}",
        apis
    );
    // And the plan executes on the golden cloud.
    let mut cloud = provider.golden_cloud();
    let run = lce_devops::run_program(&resize_ok.program, &mut cloud);
    assert!(run.all_ok(), "{:?}", run.error_codes());
}

#[test]
fn cross_machine_binding_probes_exist_for_stratus() {
    // The NIC in-use check (BindVm via CreateVirtualMachine) must have a
    // destroy-dependency probe.
    let provider = stratus_provider();
    let (cases, _) = generate_suite(&provider.catalog, 16);
    let probe = cases
        .iter()
        .find(|c| c.class == "destroy-dep-of-VirtualMachine")
        .expect("destroy-dependency probe for the VM's NIC");
    let mut cloud = provider.golden_cloud();
    let run = lce_devops::run_program(&probe.program, &mut cloud);
    let last = run.steps.last().unwrap();
    assert_eq!(last.response.error_code(), Some("NicInUse"));
}
