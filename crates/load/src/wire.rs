//! The generator's own wire encoding: raw HTTP/1.1 requests with
//! hand-rendered JSON bodies, and a minimal blocking response reader.
//!
//! Owning the encoding (instead of going through a serde serializer)
//! keeps the emitted workload a pure function of the schedule: the bytes
//! on the wire are the same no matter which serde backend the build
//! linked. Responses are *parsed* with `serde_json` where possible — to
//! resolve `FieldOf` references and classify API errors — but every
//! latency/throughput measurement needs only the HTTP framing.

use lce_emulator::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Escape a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a literal emulator [`Value`] as the JSON fragment the server's
/// argument decoder accepts: scalars and lists map to plain JSON,
/// enums/refs to their serde object forms.
pub fn render_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{}\"", json_escape(s)),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_string(),
        Value::List(items) => {
            let inner: Vec<String> = items.iter().map(render_literal).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Enum(name) => format!("{{\"Enum\":\"{}\"}}", json_escape(name)),
        Value::Ref(id) => format!("{{\"Ref\":\"{}\"}}", json_escape(id.as_str())),
    }
}

/// Render a parsed `serde_json` value back to JSON text. Used to re-embed
/// a response field into the next request; written by hand so it works
/// identically against any serde backend that exposes the `Value` enum.
pub fn render_json(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::Null => "null".to_string(),
        serde_json::Value::Bool(b) => b.to_string(),
        serde_json::Value::Number(n) => n.to_string(),
        serde_json::Value::String(s) => format!("\"{}\"", json_escape(s)),
        serde_json::Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", inner.join(","))
        }
        serde_json::Value::Object(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), render_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Build one `POST /<account>/<api>` request with the given JSON body.
pub fn request_bytes(account: &str, api: &str, body: &str) -> Vec<u8> {
    format!(
        "POST /{}/{} HTTP/1.1\r\nHost: lce-load\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        account,
        api,
        body.len(),
        body
    )
    .into_bytes()
}

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct RawResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
    /// `true` if the server advertised `Connection: close`.
    pub close: bool,
}

/// A blocking raw connection with a response reassembly buffer.
pub struct RawConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawConn {
    /// Connect with a bounded timeout and no delayed ACK coalescing.
    pub fn connect(addr: SocketAddr) -> io::Result<RawConn> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(RawConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Write one fully encoded request.
    pub fn send(&mut self, request: &[u8]) -> io::Result<()> {
        self.stream.write_all(request)
    }

    /// A clone of the underlying stream (open-loop sender/receiver pairs).
    pub fn try_clone(&self) -> io::Result<RawConn> {
        Ok(RawConn {
            stream: self.stream.try_clone()?,
            buf: Vec::new(),
        })
    }

    /// Read exactly one response (headers + `Content-Length` body).
    pub fn read_response(&mut self) -> io::Result<RawResponse> {
        // Reassemble until the blank line.
        let header_end = loop {
            if let Some(pos) = find_crlfcrlf(&self.buf) {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..header_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {:?}", status_line),
                )
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            }
        }
        let body_start = header_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(RawResponse {
            status,
            body,
            close,
        })
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        match self.stream.read(&mut chunk)? {
            0 => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            )),
            n => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
        }
    }
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_render_as_plain_json() {
        assert_eq!(render_literal(&Value::Str("a\"b".into())), "\"a\\\"b\"");
        assert_eq!(render_literal(&Value::Int(-3)), "-3");
        assert_eq!(render_literal(&Value::Bool(true)), "true");
        assert_eq!(render_literal(&Value::Null), "null");
        assert_eq!(
            render_literal(&Value::List(vec![Value::Int(1), Value::Str("x".into())])),
            "[1,\"x\"]"
        );
        assert_eq!(render_literal(&Value::enum_val("On")), "{\"Enum\":\"On\"}");
    }

    #[test]
    fn requests_carry_exact_content_length() {
        let req = request_bytes("acct-0", "CreateVpc", "{\"CidrBlock\":\"10.0.0.0/16\"}");
        let text = String::from_utf8(req).unwrap();
        assert!(text.starts_with("POST /acct-0/CreateVpc HTTP/1.1\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
    }

    #[test]
    fn json_rerender_round_trips_through_the_parser() {
        let text = "{\"a\":[1,true,null,\"s\"],\"b\":{\"c\":-2}}";
        let parsed: serde_json::Value = serde_json::from_str(text).unwrap();
        let re = render_json(&parsed);
        let reparsed: serde_json::Value = serde_json::from_str(&re).unwrap();
        assert_eq!(parsed, reparsed);
    }
}
