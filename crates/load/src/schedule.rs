//! Seeded workload schedules: which programs each connection runs, in
//! what order, and (open loop) when each request goes out.
//!
//! Generation is pure: the same [`LoadSpec`] always yields the same
//! [`Schedule`], byte for byte, on every platform — the RNG is a fixed
//! SplitMix64 and arrival jitter is integer-only. The digest over the
//! canonical schedule text is what the determinism suite (and the
//! deterministic section of a load report) pins.

use lce_devops::scenarios::nimbus::{basic_functionality, fig3_nimbus};
use lce_devops::scenarios::stratus::fig3_stratus;
use lce_devops::Program;

/// Loop discipline (see the crate docs for the distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Request → response → next request, per connection.
    Closed,
    /// Seeded arrival schedule per connection, independent of responses.
    Open,
}

impl LoadMode {
    /// Stable lowercase name (used in reports and digests).
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }
}

impl std::str::FromStr for LoadMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "closed" => Ok(LoadMode::Closed),
            "open" => Ok(LoadMode::Open),
            other => Err(format!("unknown load mode `{}` (closed|open)", other)),
        }
    }
}

/// What workload to generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSpec {
    /// Golden catalog provider: `nimbus` or `stratus`.
    pub provider: String,
    /// Master seed: drives program picks and open-loop arrivals.
    pub seed: u64,
    /// Concurrent connections; connection `i` speaks for account
    /// `acct-i`, so accounts never share a connection.
    pub conns: usize,
    /// API calls per connection (whole programs are appended until the
    /// budget is reached, then the last program is truncated — references
    /// only ever point backwards, so truncation is safe).
    pub ops_per_conn: usize,
    /// Loop discipline.
    pub mode: LoadMode,
    /// Open loop: target request rate per connection, ops/second.
    pub rate_per_conn: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            provider: "nimbus".to_string(),
            seed: 42,
            conns: 64,
            ops_per_conn: 100,
            mode: LoadMode::Closed,
            rate_per_conn: 200,
        }
    }
}

/// One connection's workload: the account it speaks for, the programs it
/// runs in order, and (open mode) the absolute send offset of every step.
#[derive(Debug, Clone)]
pub struct ConnSchedule {
    /// Account id (`acct-N` for connection `N`).
    pub account: String,
    /// Programs executed back to back; bindings are program-scoped.
    pub programs: Vec<Program>,
    /// Open mode: one µs-from-start send offset per step, nondecreasing.
    /// Empty in closed mode.
    pub send_offsets_us: Vec<u64>,
}

impl ConnSchedule {
    /// Total steps across this connection's programs.
    pub fn ops(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }
}

/// A fully generated workload: per-connection program sequences plus the
/// spec that produced them.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The generating spec.
    pub spec: LoadSpec,
    /// One entry per connection.
    pub conns: Vec<ConnSchedule>,
}

impl Schedule {
    /// Generate the schedule for `spec`. Fails only on an unknown
    /// provider name.
    pub fn generate(spec: &LoadSpec) -> Result<Schedule, String> {
        let pool = scenario_pool(&spec.provider)?;
        let mut conns = Vec::with_capacity(spec.conns);
        for c in 0..spec.conns {
            // Independent stream per connection: reordering connections
            // or changing the count never perturbs another connection's
            // picks.
            let mut rng =
                SplitMix64::new(spec.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut programs: Vec<Program> = Vec::new();
            let mut ops = 0;
            while ops < spec.ops_per_conn {
                let mut program = pool[(rng.next() % pool.len() as u64) as usize].clone();
                let budget = spec.ops_per_conn - ops;
                program.steps.truncate(budget);
                ops += program.len();
                programs.push(program);
            }
            let send_offsets_us = match spec.mode {
                LoadMode::Closed => Vec::new(),
                LoadMode::Open => {
                    // Uniformly jittered arrivals around the target mean
                    // gap, integer-only so the schedule is platform-exact.
                    let mean_us = 1_000_000 / spec.rate_per_conn.max(1);
                    let mut at = 0u64;
                    (0..ops)
                        .map(|_| {
                            at += mean_us / 2 + rng.next() % mean_us.max(1);
                            at
                        })
                        .collect()
                }
            };
            conns.push(ConnSchedule {
                account: format!("acct-{}", c),
                programs,
                send_offsets_us,
            });
        }
        Ok(Schedule {
            spec: spec.clone(),
            conns,
        })
    }

    /// Total steps across all connections.
    pub fn total_ops(&self) -> usize {
        self.conns.iter().map(ConnSchedule::ops).sum()
    }

    /// FNV-1a digest of the canonical schedule text: provider, seed,
    /// mode, every connection's program/step sequence, and (open mode)
    /// every arrival offset. Two schedules digest equal iff they describe
    /// the same workload.
    pub fn digest(&self) -> String {
        let mut h = Fnv64::new();
        h.write(b"lce-load");
        h.write(self.spec.provider.as_bytes());
        h.write(&self.spec.seed.to_le_bytes());
        h.write(self.spec.mode.name().as_bytes());
        h.write(&(self.spec.conns as u64).to_le_bytes());
        h.write(&(self.spec.ops_per_conn as u64).to_le_bytes());
        for conn in &self.conns {
            h.write(conn.account.as_bytes());
            for program in &conn.programs {
                h.write(program.name.as_bytes());
                for step in &program.steps {
                    h.write(step.api.as_bytes());
                    for (name, _) in &step.args {
                        h.write(name.as_bytes());
                    }
                }
            }
            for off in &conn.send_offsets_us {
                h.write(&off.to_le_bytes());
            }
        }
        format!("{:016x}", h.finish())
    }
}

/// The seeded program pool for a provider: the Fig. 3 evaluation matrix
/// (12 mixed read/write programs), plus the §5 basic-functionality
/// program for nimbus.
pub fn scenario_pool(provider: &str) -> Result<Vec<Program>, String> {
    match provider {
        "nimbus" => {
            let mut pool = vec![basic_functionality()];
            pool.extend(fig3_nimbus().into_iter().map(|s| s.program));
            Ok(pool)
        }
        "stratus" => Ok(fig3_stratus().into_iter().map(|s| s.program).collect()),
        other => Err(format!("unknown provider `{}` (nimbus|stratus)", other)),
    }
}

/// SplitMix64: tiny, seedable, platform-exact.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a, 64-bit.
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separate fields so ("ab","c") and ("a","bc") digest apart.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_digest() {
        let spec = LoadSpec {
            conns: 8,
            ops_per_conn: 25,
            ..LoadSpec::default()
        };
        let a = Schedule::generate(&spec).unwrap();
        let b = Schedule::generate(&spec).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.total_ops(), 8 * 25);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Schedule::generate(&LoadSpec::default()).unwrap();
        let b = Schedule::generate(&LoadSpec {
            seed: 43,
            ..LoadSpec::default()
        })
        .unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn ops_budget_is_exact_even_mid_program() {
        for ops in [1, 3, 7, 100] {
            let spec = LoadSpec {
                conns: 3,
                ops_per_conn: ops,
                ..LoadSpec::default()
            };
            let s = Schedule::generate(&spec).unwrap();
            for conn in &s.conns {
                assert_eq!(conn.ops(), ops);
            }
        }
    }

    #[test]
    fn open_mode_offsets_are_nondecreasing_and_seeded() {
        let spec = LoadSpec {
            mode: LoadMode::Open,
            conns: 2,
            ops_per_conn: 50,
            rate_per_conn: 1000,
            ..LoadSpec::default()
        };
        let s = Schedule::generate(&spec).unwrap();
        for conn in &s.conns {
            assert_eq!(conn.send_offsets_us.len(), conn.ops());
            assert!(conn.send_offsets_us.windows(2).all(|w| w[0] <= w[1]));
        }
        let again = Schedule::generate(&spec).unwrap();
        assert_eq!(s.digest(), again.digest());
        assert_eq!(s.conns[0].send_offsets_us, again.conns[0].send_offsets_us);
    }

    #[test]
    fn both_providers_have_pools() {
        assert!(scenario_pool("nimbus").unwrap().len() >= 13);
        assert!(scenario_pool("stratus").unwrap().len() >= 12);
        assert!(scenario_pool("cumulus").is_err());
    }
}
