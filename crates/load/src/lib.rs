#![deny(missing_docs)]

//! # lce-load — deterministic serving-load generation
//!
//! A traffic generator for [`lce-server`](lce_server): seeded, mixed
//! read/write DevOps workloads over the golden catalogs, driven **raw
//! over the wire** (the generator owns its HTTP/JSON encoding, so the
//! workload it emits is independent of any serde backend), with per-op
//! latency collected into [`lce_obs`] histograms and summarized as
//! p50/p90/p99 plus sustained request throughput.
//!
//! Two loop disciplines:
//!
//! * **Closed loop** — each connection sends a request, waits for the
//!   response, then sends the next. Response fields feed later steps'
//!   `FieldOf` references, so the traffic preserves DevOps workflow
//!   semantics (create → reference → mutate → read back) and the final
//!   per-account stores are schedule-determined. Throughput here measures
//!   the server's request turnaround under a fixed concurrency.
//! * **Open loop** — each connection emits requests on a seeded arrival
//!   schedule regardless of response progress (a sender/receiver thread
//!   pair per connection), and latency is measured from the *scheduled*
//!   send time, so queueing delay is charged to the server — the
//!   coordinated-omission-free discipline. Cross-step references are
//!   resolved to fixed placeholders at generation time (you cannot
//!   reference a response you have not waited for), so open-loop traffic
//!   is workflow-shaped but not workflow-coupled.
//!
//! Everything the generator decides — program picks, step order, open-loop
//! arrival offsets — is a pure function of the seed, captured in a
//! [`schedule::Schedule`] whose digest (and the whole deterministic
//! section of a [`run::LoadReport`]) is byte-identical across runs,
//! server thread counts, and execution engines.
//!
//! [`check`] gates a measured run against the committed
//! `BENCH_serve.json` floors (CI's serve-bench job).

pub mod check;
pub mod run;
pub mod schedule;
pub mod wire;

pub use check::check_bench;
pub use run::{run_load, LoadConfig, LoadReport};
pub use schedule::{LoadMode, LoadSpec, Schedule};
