//! Drive a generated [`Schedule`](crate::schedule::Schedule) against an
//! in-process `lce-server` and report latency, throughput, and the
//! deterministic outcome fingerprint.
//!
//! The server is spawned exactly the way `lce serve` spawns one (same
//! engine factory, same fault wiring), so what the generator measures is
//! the serving stack the CLI ships, not a test double.

use crate::schedule::{Fnv64, LoadMode, LoadSpec, Schedule};
use crate::wire::{render_json, render_literal, request_bytes, RawConn, RawResponse};
use lce_cloud::{nimbus_provider, stratus_provider};
use lce_devops::Arg;
use lce_emulator::{Backend, Emulator, EmulatorConfig};
use lce_faults::{no_sleep, store_digest, FaultPlan, FaultyBackend, RetryPolicy};
use lce_ir::{compile, CompiledCatalog, CompiledEmulator, DualBackend, Engine, OptLevel};
use lce_obs::{Class, ObsHub};
use lce_server::{serve, ServerConfig, ServerHandle, PROBE_ACCOUNT};
use lce_spec::Catalog;
use lce_trace::{assemble, catalog_digest, new_sink, RecordingBackend, TraceSink};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How to run a load generation session.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// What traffic to generate.
    pub spec: LoadSpec,
    /// Server shard (event loop) thread count.
    pub server_threads: usize,
    /// Execution engine serving the catalog.
    pub engine: Engine,
    /// Optimization level for compiled engines.
    pub opt_level: OptLevel,
    /// Fault plan preset name (`standard`, `aggressive`, ...); `None`
    /// serves fault-free.
    pub plan: Option<String>,
    /// Retry budget per op in closed mode (first try included). Open mode
    /// never retries — a retry would perturb the arrival schedule.
    pub max_attempts: u32,
    /// Observability hub the latency histogram lands in. `None` creates a
    /// private hub (the report still carries the percentiles).
    pub hub: Option<Arc<ObsHub>>,
    /// Record every account's dispatched call stream and write one
    /// canonical trace file per account (`<dir>/<account>.trace`) after
    /// the run. Each file is a self-contained repro (provider, catalog
    /// digest, plan, calls, store digests) that `lce trace replay`
    /// re-executes — the divergence-triage artifact the soak suite
    /// demands. The recorder mirrors (never perturbs) the fault schedule.
    pub trace_out: Option<String>,
    /// Goodput deadline, microseconds: an op counts toward goodput only if
    /// it was answered within this long of being (scheduled to be) sent.
    ///
    /// Raw completed-ops/elapsed flatters an architecture that starves
    /// connections and then answers their backlog in a burst after the
    /// senders give up the schedule — the burst pushes completion req/s
    /// up while every one of those answers arrived too late to matter.
    /// Goodput is the honest throughput at N *concurrent* connections:
    /// answers that arrived while the asker was still asking.
    pub slo_us: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            spec: LoadSpec::default(),
            server_threads: 4,
            engine: Engine::Interp,
            opt_level: OptLevel::default(),
            plan: None,
            max_attempts: 4,
            hub: None,
            trace_out: None,
            slo_us: 100_000,
        }
    }
}

/// Per-account outcome: op counts and the two fingerprints that must be
/// schedule-determined (closed loop, fault-free).
#[derive(Debug, Clone)]
pub struct AccountLoad {
    /// Account id (`acct-N`).
    pub account: String,
    /// Ops scheduled for this account.
    pub ops: usize,
    /// Ops that got an HTTP response with no transport failure.
    pub responses: usize,
    /// Ops that failed at the transport layer (all retries exhausted, or
    /// open-loop connection death).
    pub transport_errors: usize,
    /// FNV-1a over every response's status code and body bytes, in op
    /// order.
    pub response_digest: String,
    /// Canonical digest of the account's final resource store.
    pub store_digest: String,
}

/// What one load run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The generating spec.
    pub spec: LoadSpec,
    /// Engine that served the run (timing section only).
    pub engine: Engine,
    /// Server shard threads (timing section only).
    pub server_threads: usize,
    /// Fault plan name, or `"none"`.
    pub plan: String,
    /// Digest of the generated schedule.
    pub schedule_digest: String,
    /// One entry per connection/account, in account order.
    pub accounts: Vec<AccountLoad>,
    /// Wall-clock duration of the traffic phase.
    pub elapsed: Duration,
    /// Total ops driven.
    pub total_ops: usize,
    /// Closed-loop retries across all connections.
    pub retries: u64,
    /// Sustained throughput over the traffic phase.
    pub req_per_s: f64,
    /// The goodput deadline this run was measured against, microseconds.
    pub slo_us: u64,
    /// Ops answered within [`LoadConfig::slo_us`] of their (scheduled)
    /// send instant.
    pub goodput_ops: usize,
    /// On-time answers per second of the traffic phase: the throughput
    /// the server actually delivered to connections still waiting for it.
    pub goodput_per_s: f64,
    /// Latency percentiles, microseconds, from the raw per-op samples.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

impl LoadReport {
    /// The deterministic section: everything here is a pure function of
    /// (spec, plan) — independent of engine, server thread count, machine
    /// speed, and scheduling. This is what the determinism suite pins
    /// byte-for-byte. Fault plans inject by wire arrival order, which is
    /// racy under concurrency, so response digests are only listed when
    /// serving fault-free.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        out.push_str("lce-load deterministic report\n");
        out.push_str(&format!("provider: {}\n", self.spec.provider));
        out.push_str(&format!("mode:     {}\n", self.spec.mode.name()));
        out.push_str(&format!("seed:     {}\n", self.spec.seed));
        out.push_str(&format!(
            "conns:    {} x {} ops\n",
            self.spec.conns, self.spec.ops_per_conn
        ));
        out.push_str(&format!("plan:     {}\n", self.plan));
        out.push_str(&format!("schedule: {}\n", self.schedule_digest));
        let fault_free = self.plan == "none";
        for acct in &self.accounts {
            if fault_free && self.spec.mode == LoadMode::Closed {
                out.push_str(&format!(
                    "{}: ops={} responses={} errors={} resp={} store={}\n",
                    acct.account,
                    acct.ops,
                    acct.responses,
                    acct.transport_errors,
                    acct.response_digest,
                    acct.store_digest
                ));
            } else {
                out.push_str(&format!(
                    "{}: ops={} store={}\n",
                    acct.account, acct.ops, acct.store_digest
                ));
            }
        }
        out
    }

    /// The full report: deterministic section plus the timing section
    /// (which is honest about being machine- and run-specific).
    pub fn render(&self) -> String {
        let mut out = self.render_deterministic();
        out.push_str("--- timing (machine-specific) ---\n");
        out.push_str(&format!("engine:   {}\n", self.engine));
        out.push_str(&format!("threads:  {}\n", self.server_threads));
        out.push_str(&format!("elapsed:  {:.3}s\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!("ops:      {}\n", self.total_ops));
        out.push_str(&format!("retries:  {}\n", self.retries));
        out.push_str(&format!("req/s:    {:.0}\n", self.req_per_s));
        out.push_str(&format!(
            "goodput:  {:.0}/s ({}/{} ops within {}ms)\n",
            self.goodput_per_s,
            self.goodput_ops,
            self.total_ops,
            self.slo_us / 1000
        ));
        out.push_str(&format!(
            "latency:  p50={}us p90={}us p99={}us\n",
            self.p50_us, self.p90_us, self.p99_us
        ));
        out
    }
}

/// One connection's raw results, merged into the report after join.
struct ConnOutcome {
    responses: usize,
    transport_errors: usize,
    retries: u64,
    response_digest: String,
    latencies_us: Vec<u64>,
}

/// Generate the schedule for `config.spec` and drive it. Returns an error
/// only for infrastructure failures (unknown provider/plan, compile
/// failure, bind failure, thread panic); per-op transport failures are
/// counted in the report.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    let schedule = Schedule::generate(&config.spec)?;
    let catalog = catalog_of(&config.spec.provider)?;
    let plan: Option<Arc<FaultPlan>> = match &config.plan {
        None => None,
        Some(name) => Some(Arc::new(
            FaultPlan::named(name, config.spec.seed)
                .ok_or_else(|| format!("unknown fault plan `{}`", name))?,
        )),
    };
    let sinks: Option<Arc<Mutex<BTreeMap<String, TraceSink>>>> = config
        .trace_out
        .as_ref()
        .map(|_| Arc::new(Mutex::new(BTreeMap::new())));
    let handle = spawn_server(config, &catalog, plan.clone(), sinks.clone())?;
    let addr = handle.addr();

    let hub = config
        .hub
        .clone()
        .unwrap_or_else(|| Arc::new(ObsHub::new()));

    // All connections connect first, then release together: the measured
    // window contains only traffic, not connection ramp.
    let barrier = Arc::new(Barrier::new(schedule.conns.len() + 1));
    let policy = retry_policy(config);
    let mut workers = Vec::with_capacity(schedule.conns.len());
    for conn in schedule.conns.iter().cloned() {
        let barrier = Arc::clone(&barrier);
        let policy = policy.clone();
        let mode = config.spec.mode;
        workers.push(
            thread::Builder::new()
                .name(format!("lce-load-{}", conn.account))
                .spawn(move || match mode {
                    LoadMode::Closed => closed_loop(addr, &conn, &policy, &barrier),
                    LoadMode::Open => open_loop(addr, &conn, &barrier),
                })
                .map_err(|e| format!("spawn failed: {}", e))?,
        );
    }
    barrier.wait();
    let started = Instant::now();
    let mut outcomes = Vec::with_capacity(workers.len());
    for worker in workers {
        outcomes.push(
            worker
                .join()
                .map_err(|_| "load worker panicked".to_string())??,
        );
    }
    let elapsed = started.elapsed();

    // Fingerprint final stores while the server is still up, then stop it.
    let mut accounts = Vec::with_capacity(schedule.conns.len());
    let mut latencies: Vec<u64> = Vec::new();
    let mut retries = 0u64;
    let latency_hist = hub.global().histogram(
        "lce_load_latency_us",
        "Per-op load-generator latency in microseconds",
        Class::Timing,
        &[
            ("provider", &config.spec.provider),
            ("mode", config.spec.mode.name()),
        ],
    );
    for (conn, outcome) in schedule.conns.iter().zip(outcomes) {
        let store = handle
            .router()
            .snapshot(&conn.account)
            .unwrap_or_else(lce_emulator::ResourceStore::new);
        for &lat in &outcome.latencies_us {
            latency_hist.observe(lat);
        }
        retries += outcome.retries;
        latencies.extend(outcome.latencies_us);
        accounts.push(AccountLoad {
            account: conn.account.clone(),
            ops: conn.ops(),
            responses: outcome.responses,
            transport_errors: outcome.transport_errors,
            response_digest: outcome.response_digest,
            store_digest: store_digest(&store),
        });
    }
    if let (Some(dir), Some(sinks)) = (&config.trace_out, &sinks) {
        let digest = catalog_digest(&catalog);
        let trace_plan = plan
            .as_ref()
            .map(|p| (**p).clone())
            .unwrap_or_else(|| FaultPlan::none(config.spec.seed));
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {}", dir, e))?;
        let sinks = sinks.lock().unwrap();
        for (account, sink) in sinks.iter() {
            let calls = sink.lock().unwrap().clone();
            let trace = assemble(
                config.spec.provider.clone(),
                digest.clone(),
                account,
                &trace_plan,
                calls,
            );
            let file = format!("{}/{}.trace", dir, account);
            std::fs::write(&file, trace.encode())
                .map_err(|e| format!("failed to write trace {}: {}", file, e))?;
        }
    }
    handle.shutdown();

    latencies.sort_unstable();
    let total_ops = schedule.total_ops();
    let goodput_ops = latencies.partition_point(|&l| l <= config.slo_us);
    Ok(LoadReport {
        spec: config.spec.clone(),
        engine: config.engine,
        server_threads: config.server_threads,
        plan: config.plan.clone().unwrap_or_else(|| "none".to_string()),
        schedule_digest: schedule.digest(),
        accounts,
        elapsed,
        total_ops,
        retries,
        req_per_s: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        slo_us: config.slo_us,
        goodput_ops,
        goodput_per_s: goodput_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 50),
        p90_us: percentile(&latencies, 90),
        p99_us: percentile(&latencies, 99),
    })
}

/// The golden catalog for a provider name.
pub fn catalog_of(provider: &str) -> Result<Catalog, String> {
    match provider {
        "nimbus" => Ok(nimbus_provider().catalog),
        "stratus" => Ok(stratus_provider().catalog),
        other => Err(format!("unknown provider `{}` (nimbus|stratus)", other)),
    }
}

/// Spawn the serving stack exactly like `lce serve` / `lce chaos` do:
/// per-account engine from a shared compiled catalog, wrapped in a
/// `FaultyBackend` (no-op sleeper) when a plan is loaded, wire faults
/// from the same plan.
fn spawn_server(
    config: &LoadConfig,
    catalog: &Catalog,
    plan: Option<Arc<FaultPlan>>,
    sinks: Option<Arc<Mutex<BTreeMap<String, TraceSink>>>>,
) -> Result<ServerHandle, String> {
    let compiled: Option<Arc<CompiledCatalog>> = match config.engine {
        Engine::Interp => None,
        Engine::Ir | Engine::Dual => {
            let mut cc =
                compile(catalog).map_err(|e| format!("catalog failed to compile: {}", e))?;
            lce_ir::optimize(&mut cc, config.opt_level)
                .map_err(|e| format!("optimizer broke the catalog: {}", e))?;
            Some(Arc::new(cc))
        }
    };
    let mut server_config = ServerConfig {
        threads: config.server_threads.max(1),
        ..ServerConfig::default()
    };
    if let Some(plan) = &plan {
        server_config = server_config.with_faults(Arc::clone(plan));
    }
    let engine = config.engine;
    let seed = config.spec.seed;
    let factory_catalog = catalog.clone();
    let factory_plan = plan;
    let factory_sinks = sinks;
    serve(server_config, move |account| {
        let golden: Box<dyn Backend + Send + Sync> = match engine {
            Engine::Interp => Box::new(Emulator::new(factory_catalog.clone()).named("loaded")),
            Engine::Ir => Box::new(
                CompiledEmulator::from_compiled(
                    compiled.clone().expect("compiled for ir engine"),
                    EmulatorConfig::framework(),
                )
                .named("loaded"),
            ),
            Engine::Dual => Box::new(
                DualBackend::from_engines(
                    Emulator::new(factory_catalog.clone()),
                    CompiledEmulator::from_compiled(
                        compiled.clone().expect("compiled for dual engine"),
                        EmulatorConfig::framework(),
                    ),
                )
                .named("loaded"),
            ),
        };
        let backend: Box<dyn Backend + Send + Sync> = match &factory_plan {
            None => golden,
            Some(plan) => Box::new(
                FaultyBackend::new(golden, Arc::clone(plan), account).with_sleeper(no_sleep()),
            ),
        };
        match factory_sinks.as_ref().filter(|_| account != PROBE_ACCOUNT) {
            None => backend,
            Some(sinks) => {
                let sink = new_sink();
                sinks
                    .lock()
                    .unwrap()
                    .insert(account.to_string(), sink.clone());
                let record_plan = factory_plan
                    .clone()
                    .unwrap_or_else(|| Arc::new(FaultPlan::none(seed)));
                Box::new(RecordingBackend::new(backend, record_plan, account, sink))
            }
        }
    })
    .map_err(|e| e.to_string())
}

/// The closed-loop retry policy: the standard transient-code set with the
/// configured attempt budget, never wall-sleeping (load generation
/// measures the server, not the backoff curve).
fn retry_policy(config: &LoadConfig) -> RetryPolicy {
    RetryPolicy::new(config.spec.seed)
        .with_max_attempts(config.max_attempts)
        .with_sleep(no_sleep())
}

/// Render one step's body against the binding environment.
fn render_body(step_args: &[(String, Arg)], env: &BTreeMap<String, serde_json::Value>) -> String {
    let mut parts = Vec::with_capacity(step_args.len());
    for (name, arg) in step_args {
        let value = match arg {
            Arg::Lit(v) => render_literal(v),
            Arg::FieldOf(binding, field) => env
                .get(binding)
                .and_then(|fields| fields.get(field))
                .map(render_json)
                // Unresolvable reference (response unparseable, or open
                // loop): a fixed placeholder keeps the request well-formed
                // and schedule-determined.
                .unwrap_or_else(|| "\"unresolved\"".to_string()),
        };
        parts.push(format!("\"{}\":{}", crate::wire::json_escape(name), value));
    }
    format!("{{{}}}", parts.join(","))
}

/// Pull the `fields` object and error code (if any) out of a response
/// body. Best-effort: a backend whose serializer emits non-JSON yields
/// `(None, None)` and reference resolution falls back to placeholders.
fn parse_response(body: &[u8]) -> (Option<serde_json::Value>, Option<String>) {
    let Ok(value) = serde_json::from_slice::<serde_json::Value>(body) else {
        return (None, None);
    };
    let code = value
        .get("error")
        .filter(|e| !e.is_null())
        .and_then(|e| e.get("code"))
        .and_then(|c| c.as_str())
        .map(|s| s.to_string());
    (value.get("fields").cloned(), code)
}

/// Closed loop: send, wait, resolve references, send the next. Transport
/// errors reconnect and (within budget) resend; transient API error codes
/// resend on the same connection.
fn closed_loop(
    addr: SocketAddr,
    conn: &crate::schedule::ConnSchedule,
    policy: &RetryPolicy,
    barrier: &Barrier,
) -> Result<ConnOutcome, String> {
    let mut raw = RawConn::connect(addr).map_err(|e| format!("connect failed: {}", e))?;
    barrier.wait();
    let mut outcome = ConnOutcome {
        responses: 0,
        transport_errors: 0,
        retries: 0,
        response_digest: String::new(),
        latencies_us: Vec::new(),
    };
    let mut digest = Fnv64::new();
    for program in &conn.programs {
        let mut env: BTreeMap<String, serde_json::Value> = BTreeMap::new();
        for step in &program.steps {
            let body = render_body(&step.args, &env);
            let request = request_bytes(&conn.account, &step.api, &body);
            let started = Instant::now();
            let mut response: Option<RawResponse> = None;
            for attempt in 1..=policy.max_attempts {
                let sent = raw.send(&request).and_then(|_| raw.read_response());
                match sent {
                    Ok(resp) => {
                        if resp.close {
                            raw = RawConn::connect(addr)
                                .map_err(|e| format!("reconnect failed: {}", e))?;
                        }
                        let (_, code) = parse_response(&resp.body);
                        let transient =
                            code.as_deref().is_some_and(|c| policy.should_retry_code(c));
                        if transient && attempt < policy.max_attempts {
                            outcome.retries += 1;
                            continue;
                        }
                        response = Some(resp);
                        break;
                    }
                    Err(_) => {
                        // Transport death mid-exchange. Reconnect either
                        // way; resend only if the policy retries transport
                        // errors and budget remains.
                        raw = RawConn::connect(addr)
                            .map_err(|e| format!("reconnect failed: {}", e))?;
                        if policy.retry_transport && attempt < policy.max_attempts {
                            outcome.retries += 1;
                            continue;
                        }
                        break;
                    }
                }
            }
            outcome
                .latencies_us
                .push(started.elapsed().as_micros() as u64);
            match response {
                Some(resp) => {
                    outcome.responses += 1;
                    digest.write(&(resp.status as u64).to_le_bytes());
                    digest.write(&resp.body);
                    if let Some(bind) = &step.bind {
                        let (fields, _) = parse_response(&resp.body);
                        if let Some(fields) = fields {
                            env.insert(bind.clone(), fields);
                        }
                    }
                }
                None => outcome.transport_errors += 1,
            }
        }
    }
    outcome.response_digest = format!("{:016x}", digest.finish());
    Ok(outcome)
}

/// Open loop: a sender thread fires on the seeded arrival schedule while
/// this thread reaps responses; latency is charged from the *scheduled*
/// send instant, so server-side queueing counts (no coordinated
/// omission). References resolve to placeholders — nothing waits for a
/// response.
fn open_loop(
    addr: SocketAddr,
    conn: &crate::schedule::ConnSchedule,
    barrier: &Barrier,
) -> Result<ConnOutcome, String> {
    let mut reader = RawConn::connect(addr).map_err(|e| format!("connect failed: {}", e))?;
    let mut writer = reader
        .try_clone()
        .map_err(|e| format!("clone failed: {}", e))?;

    // Pre-render every request: open-loop bodies are fully determined at
    // generation time (the empty env maps every FieldOf to a placeholder).
    let env = BTreeMap::new();
    let mut requests = Vec::with_capacity(conn.ops());
    for program in &conn.programs {
        for step in &program.steps {
            requests.push(request_bytes(
                &conn.account,
                &step.api,
                &render_body(&step.args, &env),
            ));
        }
    }
    let offsets = conn.send_offsets_us.clone();
    let total = requests.len();

    barrier.wait();
    let start = Instant::now();
    let sender = thread::spawn(move || -> std::io::Result<()> {
        for (request, &offset) in requests.iter().zip(&offsets) {
            let due = Duration::from_micros(offset);
            let now = start.elapsed();
            if due > now {
                thread::sleep(due - now);
            }
            writer.send(request)?;
        }
        Ok(())
    });

    let mut outcome = ConnOutcome {
        responses: 0,
        transport_errors: 0,
        retries: 0,
        response_digest: String::new(),
        latencies_us: Vec::new(),
    };
    let mut digest = Fnv64::new();
    for i in 0..total {
        match reader.read_response() {
            Ok(resp) => {
                outcome.responses += 1;
                // Charged from the scheduled send time, not the actual
                // write: queueing delay lands on the server's bill.
                let scheduled = conn.send_offsets_us[i];
                let lat = (start.elapsed().as_micros() as u64).saturating_sub(scheduled);
                outcome.latencies_us.push(lat);
                digest.write(&(resp.status as u64).to_le_bytes());
                digest.write(&resp.body);
                if resp.close {
                    outcome.transport_errors += total - i - 1;
                    break;
                }
            }
            Err(_) => {
                outcome.transport_errors += total - i;
                break;
            }
        }
    }
    let _ = sender.join().map_err(|_| "sender panicked".to_string())?;
    outcome.response_digest = format!("{:016x}", digest.finish());
    Ok(outcome)
}

/// Nearest-rank percentile over an ascending sample vector.
fn percentile(sorted_us: &[u64], q: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[(sorted_us.len() - 1) * q / 100]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50), 50);
        assert_eq!(percentile(&samples, 90), 90);
        assert_eq!(percentile(&samples, 99), 99);
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn body_rendering_resolves_and_falls_back() {
        let env: BTreeMap<String, serde_json::Value> = [(
            "vpc".to_string(),
            serde_json::from_str("{\"VpcId\":\"vpc-1\"}").unwrap(),
        )]
        .into_iter()
        .collect();
        let args = vec![
            ("A".to_string(), Arg::str("x")),
            ("B".to_string(), Arg::field("vpc", "VpcId")),
            ("C".to_string(), Arg::field("vpc", "Missing")),
            ("D".to_string(), Arg::field("nope", "F")),
        ];
        assert_eq!(
            render_body(&args, &env),
            "{\"A\":\"x\",\"B\":\"vpc-1\",\"C\":\"unresolved\",\"D\":\"unresolved\"}"
        );
    }

    #[test]
    fn unknown_provider_and_plan_are_reported() {
        assert!(catalog_of("cumulus").is_err());
        let config = LoadConfig {
            plan: Some("bogus".to_string()),
            ..LoadConfig::default()
        };
        assert!(run_load(&config).unwrap_err().contains("bogus"));
    }
}
