//! The serve-bench regression gate: re-measure closed-loop throughput
//! (and, when committed, open-loop SLO goodput) and fail if either drops
//! below 2/3 of its committed `BENCH_serve.json` floor.
//!
//! The committed file proves the acceptance numbers (absolute req/s and
//! tail latency per catalog, plus the event-core-vs-blocking-pool
//! goodput speedup); the live gate only enforces the 2/3 floors, so a
//! noisy CI neighbour cannot fail the build while a real regression
//! still does. The pool-side numbers are a committed historical baseline
//! — the blocking pool no longer exists in the tree to re-measure.

use crate::run::{run_load, LoadConfig};
use crate::schedule::{LoadMode, LoadSpec};
use lce_ir::{Engine, OptLevel};

/// A committed open-loop goodput floor: the offered schedule and the
/// on-time throughput the event core must still deliver against it.
#[derive(Debug, Clone)]
struct CommittedOpen {
    rate_per_conn: u64,
    slo_ms: u64,
    goodput_per_s: u64,
}

/// One provider's committed floors, as read from `BENCH_serve.json`.
#[derive(Debug, Clone)]
struct CommittedSuite {
    provider: String,
    conns: usize,
    ops_per_conn: usize,
    threads: usize,
    req_per_s: u64,
    open: Option<CommittedOpen>,
}

/// Parse the committed bench file. Uses `serde_json::Value` accessors
/// only, so it works against any backend that can parse real JSON.
fn parse_committed(text: &str) -> Result<Vec<CommittedSuite>, String> {
    let root: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("bench file is not JSON: {:?}", e))?;
    let suites = root
        .get("suites")
        .and_then(|s| s.as_array())
        .ok_or("bench file has no `suites` array")?;
    let mut out = Vec::with_capacity(suites.len());
    for suite in suites {
        let provider = suite
            .get("provider")
            .and_then(|p| p.as_str())
            .ok_or("suite missing `provider`")?
            .to_string();
        let num = |key: &str| -> Result<u64, String> {
            suite
                .get("event")
                .and_then(|e| e.get(key))
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("suite `{}` missing event.{}", provider, key))
        };
        let open = match suite.get("open") {
            None => None,
            Some(open) => {
                let onum = |key: &str| -> Result<u64, String> {
                    open.get(key)
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| format!("suite `{}` missing open.{}", provider, key))
                };
                Some(CommittedOpen {
                    rate_per_conn: onum("rate_per_conn")?,
                    slo_ms: onum("slo_ms")?,
                    goodput_per_s: open
                        .get("event")
                        .and_then(|e| e.get("goodput_per_s"))
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| {
                            format!("suite `{}` missing open.event.goodput_per_s", provider)
                        })?,
                })
            }
        };
        out.push(CommittedSuite {
            open,
            conns: suite
                .get("conns")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("suite `{}` missing conns", provider))?
                as usize,
            ops_per_conn: suite
                .get("ops_per_conn")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("suite `{}` missing ops_per_conn", provider))?
                as usize,
            threads: num("threads")? as usize,
            req_per_s: num("req_per_s")?,
            provider,
        });
    }
    if out.is_empty() {
        return Err("bench file has no suites".to_string());
    }
    Ok(out)
}

/// Re-run every committed suite's closed-loop workload and gate each
/// measured throughput at 2/3 of its committed floor. Returns a
/// human-readable verdict on success; the error carries every failing
/// suite.
pub fn check_bench(path: &str, engine: Engine, opt_level: OptLevel) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    let committed = parse_committed(&text)?;
    let mut report = String::new();
    let mut failures = Vec::new();
    for suite in &committed {
        let config = LoadConfig {
            spec: LoadSpec {
                provider: suite.provider.clone(),
                conns: suite.conns,
                ops_per_conn: suite.ops_per_conn,
                ..LoadSpec::default()
            },
            server_threads: suite.threads,
            engine,
            opt_level,
            ..LoadConfig::default()
        };
        let measured = run_load(&config)?;
        let floor = suite.req_per_s * 2 / 3;
        let live = measured.req_per_s as u64;
        let verdict = if live >= floor { "ok" } else { "FAIL" };
        report.push_str(&format!(
            "{}: {} req/s vs committed {} (floor {}) p99={}us ... {}\n",
            suite.provider, live, suite.req_per_s, floor, measured.p99_us, verdict
        ));
        if live < floor {
            failures.push(format!(
                "{}: {} req/s is below 2/3 of committed {} ({})",
                suite.provider, live, suite.req_per_s, floor
            ));
        }
        let Some(open) = &suite.open else {
            continue;
        };
        let open_config = LoadConfig {
            spec: LoadSpec {
                mode: LoadMode::Open,
                rate_per_conn: open.rate_per_conn,
                ..config.spec.clone()
            },
            slo_us: open.slo_ms * 1000,
            ..config
        };
        let measured = run_load(&open_config)?;
        let floor = open.goodput_per_s * 2 / 3;
        let live = measured.goodput_per_s as u64;
        let verdict = if live >= floor { "ok" } else { "FAIL" };
        report.push_str(&format!(
            "{} open: {}/s goodput ({}ms SLO) vs committed {} (floor {}) p50={}us ... {}\n",
            suite.provider, live, open.slo_ms, open.goodput_per_s, floor, measured.p50_us, verdict
        ));
        if live < floor {
            failures.push(format!(
                "{} open: {}/s goodput is below 2/3 of committed {} ({})",
                suite.provider, live, open.goodput_per_s, floor
            ));
        }
    }
    if failures.is_empty() {
        report.push_str(&format!("check: throughput within 2/3 of {}\n", path));
        Ok(report)
    } else {
        Err(format!(
            "{}check FAIL:\n  {}",
            report,
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_works() -> bool {
        serde_json::from_str::<serde_json::Value>("{\"a\":1}").is_ok()
    }

    #[test]
    fn committed_file_parses() {
        if !wire_works() {
            eprintln!("skipping: serde_json cannot parse JSON");
            return;
        }
        let text = r#"{
            "bench": "serve-load",
            "suites": [
                {
                    "provider": "nimbus",
                    "conns": 64,
                    "ops_per_conn": 100,
                    "event": { "threads": 4, "req_per_s": 12345, "p50_us": 10, "p90_us": 20, "p99_us": 30 },
                    "open": {
                        "rate_per_conn": 50,
                        "slo_ms": 100,
                        "event": { "goodput_per_s": 3100 },
                        "pool": { "goodput_per_s": 176 }
                    }
                }
            ]
        }"#;
        let suites = parse_committed(text).unwrap();
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0].provider, "nimbus");
        assert_eq!(suites[0].conns, 64);
        assert_eq!(suites[0].threads, 4);
        assert_eq!(suites[0].req_per_s, 12345);
        let open = suites[0].open.as_ref().expect("open section parsed");
        assert_eq!(open.rate_per_conn, 50);
        assert_eq!(open.slo_ms, 100);
        assert_eq!(open.goodput_per_s, 3100);
    }

    #[test]
    fn open_section_is_optional_but_strict() {
        if !wire_works() {
            eprintln!("skipping: serde_json cannot parse JSON");
            return;
        }
        let no_open = r#"{"suites": [{"provider": "nimbus", "conns": 1, "ops_per_conn": 1,
            "event": {"threads": 1, "req_per_s": 1}}]}"#;
        assert!(parse_committed(no_open).unwrap()[0].open.is_none());
        let bad_open = r#"{"suites": [{"provider": "nimbus", "conns": 1, "ops_per_conn": 1,
            "event": {"threads": 1, "req_per_s": 1},
            "open": {"rate_per_conn": 50}}]}"#;
        let err = parse_committed(bad_open).unwrap_err();
        assert!(err.contains("open.slo_ms"), "got: {}", err);
    }

    #[test]
    fn malformed_files_are_rejected() {
        assert!(parse_committed("not json").is_err());
        assert!(parse_committed("{\"suites\": []}").is_err());
        assert!(parse_committed("{\"suites\": [{\"provider\": \"nimbus\"}]}").is_err());
    }

    #[test]
    fn missing_file_is_reported() {
        let err = check_bench(
            "/nonexistent/BENCH_serve.json",
            Engine::Interp,
            OptLevel::O0,
        )
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
