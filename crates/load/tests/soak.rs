//! Chaos-under-load soak: drive the chaos fault plans through lce-load's
//! closed-loop traffic at high concurrency and assert the retry stack
//! converges every account to its fault-free store digest — and that the
//! run leaves replayable trace dumps behind for divergence triage.
//!
//! These tests cross the wire with real retry classification (transient
//! error codes must be readable out of response bodies), so they skip on
//! builds whose serde backend cannot round-trip the wire protocol.

use lce_ir::{Engine, OptLevel};
use lce_load::{run_load, LoadConfig, LoadMode, LoadSpec};
use lce_trace::{replay, ReplayOptions, Trace};
use std::collections::BTreeMap;

/// Whether this build's serde_json can round-trip the wire protocol;
/// offline stub builds cannot, and wire-crossing tests skip.
fn wire_works() -> bool {
    let probe = lce_emulator::ApiResponse::ok(BTreeMap::new());
    serde_json::to_vec(&probe)
        .map_err(|e| e.to_string())
        .and_then(|b| {
            serde_json::from_slice::<lce_emulator::ApiResponse>(&b).map_err(|e| e.to_string())
        })
        .is_ok()
}

fn soak_spec() -> LoadSpec {
    LoadSpec {
        provider: "nimbus".to_string(),
        seed: 7,
        conns: 16,
        ops_per_conn: 30,
        mode: LoadMode::Closed,
        rate_per_conn: 0,
    }
}

fn config(plan: Option<&str>, max_attempts: u32) -> LoadConfig {
    LoadConfig {
        spec: soak_spec(),
        server_threads: 4,
        engine: Engine::Interp,
        opt_level: OptLevel::O0,
        plan: plan.map(str::to_string),
        max_attempts,
        hub: None,
        trace_out: None,
        ..LoadConfig::default()
    }
}

#[test]
fn standard_chaos_converges_to_the_fault_free_stores() {
    if !wire_works() {
        eprintln!("skipping: serde_json cannot round-trip the wire protocol");
        return;
    }
    let baseline = run_load(&config(None, 1)).expect("fault-free run");
    // The chaos retry budget: transient codes and transport faults are
    // retried until the plan runs out of scheduled failures for the op.
    let chaotic = run_load(&config(Some("standard"), 25)).expect("chaos run");
    assert_eq!(baseline.accounts.len(), chaotic.accounts.len());
    for (clean, faulted) in baseline.accounts.iter().zip(&chaotic.accounts) {
        assert_eq!(clean.account, faulted.account);
        assert_eq!(
            faulted.transport_errors, 0,
            "{}: retries must absorb every injected transport fault",
            faulted.account
        );
        assert_eq!(
            clean.store_digest, faulted.store_digest,
            "{}: chaos-under-load failed to converge to the fault-free store",
            faulted.account
        );
    }
    assert!(
        chaotic.retries > 0,
        "the standard plan at 16 conns x 30 ops must actually inject"
    );
}

#[test]
fn backend_only_chaos_converges_on_the_ir_engine() {
    if !wire_works() {
        eprintln!("skipping: serde_json cannot round-trip the wire protocol");
        return;
    }
    let baseline = run_load(&config(None, 1)).expect("fault-free run");
    let mut chaos = config(Some("backend-only"), 25);
    chaos.engine = Engine::Ir;
    chaos.opt_level = OptLevel::MAX;
    let chaotic = run_load(&chaos).expect("chaos run");
    for (clean, faulted) in baseline.accounts.iter().zip(&chaotic.accounts) {
        assert_eq!(
            clean.store_digest, faulted.store_digest,
            "{}: compiled engine diverged under backend faults",
            faulted.account
        );
    }
}

#[test]
fn soak_trace_dumps_are_replayable() {
    // No wire_works guard: the canonical trace format and the replay
    // engine never cross serde, so the dump/replay loop must hold even on
    // builds where retry classification is blind.
    let dir = std::env::temp_dir().join(format!("lce-load-soak-{}", std::process::id()));
    let mut chaos = config(Some("standard"), 25);
    chaos.spec.conns = 4;
    chaos.spec.ops_per_conn = 15;
    chaos.trace_out = Some(dir.to_str().unwrap().to_string());
    let report = run_load(&chaos).expect("chaos run with trace-out");

    for acct in &report.accounts {
        let path = dir.join(format!("{}.trace", acct.account));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing trace dump {}: {}", path.display(), e));
        let trace = Trace::parse(&text).expect("dump parses as a canonical trace");
        assert_eq!(trace.header.scope, acct.account);
        assert!(
            !trace.calls.is_empty(),
            "{}: a loaded account must have recorded calls",
            acct.account
        );
        // The dump is a self-contained repro: replaying it against a
        // fresh faulted engine reproduces every response, fault decision,
        // and store digest byte-for-byte.
        let replayed = replay(&trace, None, ReplayOptions::default())
            .expect("replay sets up from the dump alone");
        assert!(
            replayed.ok(),
            "{}: trace dump failed to replay:\n{}",
            acct.account,
            replayed.render()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
