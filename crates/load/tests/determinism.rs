//! The lce-load determinism suite: the same seed must yield a
//! byte-identical workload schedule and a byte-identical deterministic
//! report, no matter how many shard threads serve it or which execution
//! engine answers the calls.
//!
//! Everything here drives the server raw over the wire — the generator
//! owns its request encoding — so the suite runs identically whether or
//! not the linked serde backend can serialize the server's response
//! types.

use lce_ir::{Engine, OptLevel};
use lce_load::{run_load, LoadConfig, LoadMode, LoadSpec, Schedule};

fn small_spec(mode: LoadMode) -> LoadSpec {
    LoadSpec {
        provider: "nimbus".to_string(),
        seed: 1234,
        conns: 4,
        ops_per_conn: 12,
        mode,
        rate_per_conn: 2000,
    }
}

fn run_with(spec: &LoadSpec, server_threads: usize, engine: Engine) -> lce_load::LoadReport {
    run_load(&LoadConfig {
        spec: spec.clone(),
        server_threads,
        engine,
        opt_level: OptLevel::MAX,
        plan: None,
        max_attempts: 4,
        hub: None,
        ..LoadConfig::default()
    })
    .expect("load run is infrastructure-clean")
}

#[test]
fn same_seed_same_schedule_bytes() {
    for mode in [LoadMode::Closed, LoadMode::Open] {
        let spec = small_spec(mode);
        let a = Schedule::generate(&spec).unwrap();
        let b = Schedule::generate(&spec).unwrap();
        assert_eq!(a.digest(), b.digest());
        // The digest covers the whole canonical text, but pin the raw
        // fields too so a digest-collision bug can't mask a drift.
        for (ca, cb) in a.conns.iter().zip(&b.conns) {
            assert_eq!(ca.account, cb.account);
            assert_eq!(ca.send_offsets_us, cb.send_offsets_us);
            let names_a: Vec<&str> = ca.programs.iter().map(|p| p.name.as_str()).collect();
            let names_b: Vec<&str> = cb.programs.iter().map(|p| p.name.as_str()).collect();
            assert_eq!(names_a, names_b);
        }
    }
}

#[test]
fn closed_loop_report_is_identical_across_thread_counts() {
    let spec = small_spec(LoadMode::Closed);
    let one = run_with(&spec, 1, Engine::Interp);
    let four = run_with(&spec, 4, Engine::Interp);
    assert_eq!(
        one.render_deterministic(),
        four.render_deterministic(),
        "shard count leaked into the deterministic report"
    );
    assert_eq!(one.retries, 0, "fault-free runs never retry");
}

#[test]
fn closed_loop_report_is_identical_across_engines() {
    let spec = small_spec(LoadMode::Closed);
    let interp = run_with(&spec, 2, Engine::Interp);
    let ir = run_with(&spec, 2, Engine::Ir);
    assert_eq!(
        interp.render_deterministic(),
        ir.render_deterministic(),
        "engine choice leaked into the deterministic report"
    );
}

#[test]
fn closed_loop_report_repeats_byte_for_byte() {
    let spec = small_spec(LoadMode::Closed);
    let a = run_with(&spec, 2, Engine::Interp);
    let b = run_with(&spec, 2, Engine::Interp);
    assert_eq!(a.render_deterministic(), b.render_deterministic());
    // Ops were all served: every connection got a response per op.
    for acct in &a.accounts {
        assert_eq!(acct.responses, acct.ops);
        assert_eq!(acct.transport_errors, 0);
    }
}

#[test]
fn open_loop_stores_are_schedule_determined() {
    // Open mode resolves references to placeholders at generation time
    // and pipelines on one connection per account, so the final stores —
    // though not the latencies — are still a pure function of the seed.
    let spec = small_spec(LoadMode::Open);
    let a = run_with(&spec, 1, Engine::Interp);
    let b = run_with(&spec, 4, Engine::Interp);
    assert_eq!(a.render_deterministic(), b.render_deterministic());
    assert_eq!(a.total_ops, 4 * 12);
}

#[test]
fn different_seeds_change_the_deterministic_report() {
    let spec = small_spec(LoadMode::Closed);
    let other = LoadSpec {
        seed: 4321,
        ..spec.clone()
    };
    let a = run_with(&spec, 2, Engine::Interp);
    let b = run_with(&other, 2, Engine::Interp);
    assert_ne!(a.schedule_digest, b.schedule_digest);
    assert_ne!(a.render_deterministic(), b.render_deterministic());
}

#[test]
fn timing_section_is_separate_from_the_deterministic_section() {
    let spec = small_spec(LoadMode::Closed);
    let report = run_with(&spec, 2, Engine::Interp);
    let det = report.render_deterministic();
    let full = report.render();
    assert!(full.starts_with(&det), "full report embeds the det section");
    assert!(
        !det.contains("req/s"),
        "timings stay out of the det section"
    );
    assert!(
        !det.contains("engine"),
        "engine stays out of the det section"
    );
    assert!(full.contains("req/s"));
    assert!(full.contains("p99"));
}
