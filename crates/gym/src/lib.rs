#![deny(missing_docs)]

//! # lce-gym — a playground for cloud-management agents
//!
//! §4.4 of the paper: *"This emulation framework can also act as a
//! playground for learning and testing cloud services for AI agents. […]
//! To train these agents, we need a high-fidelity gym with a no-cost and
//! zero-risk environment."*
//!
//! [`CloudGym`] wraps any emulator in an episodic environment: an agent
//! issues API calls as actions, observes responses plus a summarized view
//! of live resources, and earns reward when the episode's [`Task`] goal
//! predicate is satisfied over the resource store. Tasks carry step
//! budgets, so an episode always terminates.
//!
//! ```
//! use lce_gym::{CloudGym, Task, tasks};
//! use lce_emulator::{ApiCall, Value};
//!
//! let mut gym = CloudGym::new(
//!     lce_cloud::nimbus_provider().golden_cloud(),
//!     tasks::public_subnet(),
//! );
//! let obs = gym.reset();
//! assert_eq!(obs.live_resources, 0);
//! let step = gym.step(
//!     &ApiCall::new("CreateVpc")
//!         .arg_str("CidrBlock", "10.0.0.0/16")
//!         .arg_str("Region", "us-east"),
//! );
//! assert!(step.response.is_ok());
//! assert!(!step.done);
//! ```

use lce_emulator::{ApiCall, ApiResponse, Emulator, Instance, ResourceStore, Value};
use lce_spec::SmName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A goal predicate over the resource store.
pub type Goal = Arc<dyn Fn(&ResourceStore) -> bool + Send + Sync>;

/// An episodic task.
#[derive(Clone)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Natural-language instruction shown to the agent.
    pub instruction: String,
    /// Goal predicate.
    pub goal: Goal,
    /// Maximum steps per episode.
    pub max_steps: usize,
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

/// What the agent observes after each step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Live resource count.
    pub live_resources: usize,
    /// (type, id) of every live resource, sorted.
    pub resources: Vec<(String, String)>,
    /// Steps taken this episode.
    pub steps_taken: usize,
    /// Steps remaining.
    pub steps_remaining: usize,
}

/// The result of one action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResult {
    /// The emulator's response to the action.
    pub response: ApiResponse,
    /// Updated observation.
    pub observation: Observation,
    /// Reward: 1.0 on reaching the goal, small negative step cost
    /// otherwise (−0.01), −0.05 extra for failed calls.
    pub reward: f64,
    /// Episode over (goal reached or budget exhausted).
    pub done: bool,
    /// Goal reached.
    pub success: bool,
}

/// The episodic environment.
pub struct CloudGym {
    emulator: Emulator,
    task: Task,
    steps: usize,
    finished: bool,
}

impl CloudGym {
    /// Create a gym over an emulator backend with a task.
    pub fn new(emulator: Emulator, task: Task) -> Self {
        CloudGym {
            emulator,
            task,
            steps: 0,
            finished: false,
        }
    }

    /// The active task.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// Start a fresh episode.
    pub fn reset(&mut self) -> Observation {
        use lce_emulator::Backend;
        self.emulator.reset();
        self.steps = 0;
        self.finished = false;
        self.observe()
    }

    /// Current observation.
    pub fn observe(&self) -> Observation {
        let store = self.emulator.store();
        let mut resources: Vec<(String, String)> = store
            .iter()
            .map(|i| (i.sm.to_string(), i.id.to_string()))
            .collect();
        resources.sort();
        Observation {
            live_resources: store.len(),
            resources,
            steps_taken: self.steps,
            steps_remaining: self.task.max_steps.saturating_sub(self.steps),
        }
    }

    /// Take one action.
    pub fn step(&mut self, action: &ApiCall) -> StepResult {
        use lce_emulator::Backend;
        assert!(!self.finished, "episode is over; call reset()");
        self.steps += 1;
        let response = self.emulator.invoke(action);
        let success = (self.task.goal)(self.emulator.store());
        let done = success || self.steps >= self.task.max_steps;
        self.finished = done;
        let mut reward = if success { 1.0 } else { -0.01 };
        if !response.is_ok() && !success {
            reward -= 0.05;
        }
        StepResult {
            response,
            observation: self.observe(),
            reward,
            done,
            success,
        }
    }
}

/// Helper predicates for building goals.
pub mod predicates {
    use super::*;

    /// At least `n` live instances of the given type.
    pub fn at_least(ty: &str, n: usize) -> Goal {
        let ty = SmName::new(ty);
        Arc::new(move |store: &ResourceStore| store.of_type(&ty).len() >= n)
    }

    /// Some live instance of the type satisfies the field predicate.
    pub fn some_with(ty: &str, f: impl Fn(&Instance) -> bool + Send + Sync + 'static) -> Goal {
        let ty = SmName::new(ty);
        Arc::new(move |store: &ResourceStore| store.of_type(&ty).iter().any(|i| f(i)))
    }

    /// Conjunction of goals.
    pub fn all(goals: Vec<Goal>) -> Goal {
        Arc::new(move |store: &ResourceStore| goals.iter().all(|g| g(store)))
    }
}

/// The built-in task library.
pub mod tasks {
    use super::*;

    /// Create a VPC with a subnet whose `MapPublicIpOnLaunch` is enabled —
    /// the paper's §5 basic-functionality flow as an agent task.
    pub fn public_subnet() -> Task {
        Task {
            name: "public-subnet".into(),
            instruction: "Create a VPC containing a subnet that automatically assigns \
                          public IPs to launched instances."
                .into(),
            goal: predicates::some_with("Subnet", |i| {
                i.get("map_public_ip_on_launch") == Some(&Value::Bool(true))
            }),
            max_steps: 12,
        }
    }

    /// Stand up a running instance (VPC → subnet → image → instance).
    pub fn running_instance() -> Task {
        Task {
            name: "running-instance".into(),
            instruction: "Launch a virtual machine instance and ensure it is running.".into(),
            goal: predicates::some_with("Instance", |i| {
                i.get("state") == Some(&Value::enum_val("running"))
            }),
            max_steps: 16,
        }
    }

    /// Deploy a firewall guarding a VPC.
    pub fn guarded_vpc() -> Task {
        Task {
            name: "guarded-vpc".into(),
            instruction: "Deploy a network firewall (with a policy) into a VPC.".into(),
            goal: predicates::all(vec![
                predicates::at_least("Firewall", 1),
                predicates::at_least("FirewallPolicy", 1),
            ]),
            max_steps: 20,
        }
    }

    /// All built-in tasks.
    pub fn all_tasks() -> Vec<Task> {
        vec![public_subnet(), running_instance(), guarded_vpc()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_cloud::nimbus_provider;

    fn gym(task: Task) -> CloudGym {
        CloudGym::new(nimbus_provider().golden_cloud(), task)
    }

    #[test]
    fn scripted_agent_solves_public_subnet() {
        let mut g = gym(tasks::public_subnet());
        g.reset();
        let r = g.step(
            &ApiCall::new("CreateVpc")
                .arg_str("CidrBlock", "10.0.0.0/16")
                .arg_str("Region", "us-east"),
        );
        let vpc = r.response.field("VpcId").unwrap().clone();
        let r = g.step(
            &ApiCall::new("CreateSubnet")
                .arg("VpcId", vpc)
                .arg_str("CidrBlock", "10.0.1.0/24")
                .arg("PrefixLength", Value::Int(24))
                .arg_str("Zone", "us-east-1a"),
        );
        let subnet = r.response.field("SubnetId").unwrap().clone();
        assert!(!r.done);
        let r = g.step(
            &ApiCall::new("ModifySubnetAttribute")
                .arg("SubnetId", subnet)
                .arg_bool("MapPublicIpOnLaunch", true),
        );
        assert!(r.success && r.done);
        assert!((r.reward - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_exhaustion_ends_episode() {
        let mut g = gym(Task {
            max_steps: 2,
            ..tasks::public_subnet()
        });
        g.reset();
        let r = g.step(&ApiCall::new("DescribeVpc").arg_str("VpcId", "vpc-x"));
        assert!(!r.done);
        assert!(r.reward < 0.0, "failed call is penalized: {}", r.reward);
        let r = g.step(&ApiCall::new("DescribeVpc").arg_str("VpcId", "vpc-x"));
        assert!(r.done && !r.success);
    }

    #[test]
    fn reset_clears_world() {
        let mut g = gym(tasks::running_instance());
        g.reset();
        g.step(
            &ApiCall::new("CreateVpc")
                .arg_str("CidrBlock", "10.0.0.0/16")
                .arg_str("Region", "us-east"),
        );
        assert_eq!(g.observe().live_resources, 1);
        let obs = g.reset();
        assert_eq!(obs.live_resources, 0);
    }

    #[test]
    #[should_panic(expected = "episode is over")]
    fn step_after_done_panics() {
        let mut g = gym(Task {
            max_steps: 1,
            ..tasks::public_subnet()
        });
        g.reset();
        g.step(&ApiCall::new("CreateInternetGateway"));
        g.step(&ApiCall::new("CreateInternetGateway"));
    }
}
