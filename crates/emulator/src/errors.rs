//! The error model: machine-checkable codes, human messages, and structured
//! failure context from which richer explanations are decoded (§4.3).

use crate::value::ResourceId;
use lce_spec::{ApiName, ErrorCode, SmName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Well-known framework-level error codes. Spec-level `assert` statements
/// carry their own codes; these are the ones the framework itself raises.
pub mod codes {
    /// The API name is not recognised by the emulator.
    pub const INVALID_ACTION: &str = "InvalidAction";
    /// A required parameter is missing.
    pub const MISSING_PARAMETER: &str = "MissingParameter";
    /// A parameter has the wrong type or an out-of-domain value.
    pub const INVALID_PARAMETER_VALUE: &str = "InvalidParameterValue";
    /// A parameter not declared by the API was supplied.
    pub const UNKNOWN_PARAMETER: &str = "UnknownParameter";
    /// The referenced resource does not exist.
    pub const NOT_FOUND: &str = "NotFound";
    /// A resource still has live dependents.
    pub const DEPENDENCY_VIOLATION: &str = "DependencyViolation";
    /// Internal interpreter limit exceeded (call depth).
    pub const LIMIT_EXCEEDED: &str = "LimitExceeded";
    /// A spec-level runtime fault (e.g. reading an undeclared variable) —
    /// indicates a bad specification rather than a bad request.
    pub const INTERNAL_FAILURE: &str = "InternalFailure";
}

/// Structured context attached to every failure. The paper proposes using
/// this context to "decode" failures into root-cause suggestions richer than
/// the cloud's own messages.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorContext {
    /// The API whose invocation failed.
    pub api: Option<ApiName>,
    /// Resource type involved.
    pub resource_type: Option<SmName>,
    /// Resource instance involved, when resolved.
    pub resource_id: Option<ResourceId>,
    /// For assert failures: the index of the failing statement within the
    /// transition body (pre-order), enabling root-cause localization.
    pub assert_index: Option<usize>,
    /// The call chain (`Api` names) for failures inside nested `call`s.
    pub call_chain: Vec<ApiName>,
}

/// An API-level error: what the cloud (and the emulator) returns to the
/// DevOps program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiError {
    /// Machine-checkable code; alignment requires codes to match the cloud
    /// exactly.
    pub code: ErrorCode,
    /// Human-oriented message; may deviate from the cloud's wording.
    pub message: String,
    /// Structured failure context.
    pub context: ErrorContext,
}

impl ApiError {
    /// Create an error with empty context.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        ApiError {
            code: ErrorCode::new(code),
            message: message.into(),
            context: ErrorContext::default(),
        }
    }

    /// Attach the failing API to the context.
    pub fn with_api(mut self, api: &ApiName) -> Self {
        self.context.api = Some(api.clone());
        self
    }

    /// Attach the resource type to the context.
    pub fn with_resource_type(mut self, sm: &SmName) -> Self {
        self.context.resource_type = Some(sm.clone());
        self
    }

    /// Attach the resource instance to the context.
    pub fn with_resource_id(mut self, id: &ResourceId) -> Self {
        self.context.resource_id = Some(id.clone());
        self
    }

    /// Attach the failing assert's statement index.
    pub fn with_assert_index(mut self, idx: usize) -> Self {
        self.context.assert_index = Some(idx);
        self
    }

    /// Render a decoded, developer-friendly explanation from the structured
    /// context. This stands in for the paper's LLM-generated "informative
    /// response": deterministic templates keyed on code and context, which
    /// is the behaviour the LLM is prompted to produce.
    pub fn explain(&self) -> String {
        let mut out = format!("{}: {}", self.code, self.message);
        if let (Some(api), Some(ty)) = (&self.context.api, &self.context.resource_type) {
            out.push_str(&format!(
                "\n  while calling {} on resource type {}",
                api, ty
            ));
        } else if let Some(api) = &self.context.api {
            out.push_str(&format!("\n  while calling {}", api));
        }
        if let Some(id) = &self.context.resource_id {
            out.push_str(&format!("\n  on instance {}", id));
        }
        if !self.context.call_chain.is_empty() {
            let chain: Vec<&str> = self.context.call_chain.iter().map(|a| a.as_str()).collect();
            out.push_str(&format!("\n  via call chain {}", chain.join(" -> ")));
        }
        let hint = match self.code.as_str() {
            codes::NOT_FOUND => {
                "Hint: the referenced resource may not exist yet or was already deleted; \
                 check creation ordering in your DevOps program."
            }
            codes::DEPENDENCY_VIOLATION => {
                "Hint: delete or detach all dependent child resources before retrying."
            }
            codes::MISSING_PARAMETER => {
                "Hint: consult the API reference for the full list of required parameters."
            }
            codes::INVALID_PARAMETER_VALUE => {
                "Hint: one of the supplied values is outside the documented domain."
            }
            codes::INVALID_ACTION => {
                "Hint: the API name may be misspelled or not supported by this service."
            }
            "IncorrectInstanceState" => {
                "Hint: the resource is not in a state that allows this operation; \
                 describe it first and branch on its current status."
            }
            _ => "",
        };
        if !hint.is_empty() {
            out.push('\n');
            out.push_str("  ");
            out.push_str(hint);
        }
        out
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_includes_context() {
        let e = ApiError::new(codes::NOT_FOUND, "no such subnet")
            .with_api(&ApiName::new("DeleteSubnet"))
            .with_resource_type(&SmName::new("Subnet"))
            .with_resource_id(&ResourceId::new("subnet-000001"));
        let text = e.explain();
        assert!(text.contains("DeleteSubnet"));
        assert!(text.contains("subnet-000001"));
        assert!(text.contains("Hint:"));
    }

    #[test]
    fn explain_dependency_hint() {
        let e = ApiError::new(codes::DEPENDENCY_VIOLATION, "vpc has children");
        assert!(e.explain().contains("detach all dependent"));
    }

    #[test]
    fn display_is_code_and_message() {
        let e = ApiError::new("X", "boom");
        assert_eq!(e.to_string(), "X: boom");
    }

    #[test]
    fn call_chain_rendered() {
        let mut e = ApiError::new("E", "m");
        e.context.call_chain = vec![ApiName::new("A"), ApiName::new("B")];
        assert!(e.explain().contains("A -> B"));
    }
}
