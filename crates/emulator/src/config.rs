//! Interpreter configuration: which framework-level guarantees are active.
//!
//! The learned-emulator pipeline runs with all guarantees on; the
//! direct-to-code baseline is modelled by switching them off, since code
//! generated without the SM abstraction has no framework to enforce them
//! (§5, "critical logic and state manipulation errors that our system
//! prevents by design").

use serde::{Deserialize, Serialize};

/// Framework behaviour switches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Enforce containment rules derived from the SM hierarchy: children
    /// need live parents, parents with live children cannot be destroyed,
    /// and `create` transitions may not destroy resources.
    pub enforce_hierarchy: bool,
    /// Discard any state changes made by `describe`-kinded transitions.
    pub enforce_describe_readonly: bool,
    /// Reject calls carrying parameters the API does not declare.
    pub strict_params: bool,
    /// Coerce written values to the declared state type, failing loudly on
    /// mismatch (off = sloppy direct-to-code style writes).
    pub strict_writes: bool,
    /// Maximum nested `call` depth before aborting.
    pub max_call_depth: usize,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            enforce_hierarchy: true,
            enforce_describe_readonly: true,
            strict_params: true,
            strict_writes: true,
            max_call_depth: 16,
        }
    }
}

impl EmulatorConfig {
    /// The configuration used for learned emulators (all guarantees on).
    pub fn framework() -> Self {
        EmulatorConfig::default()
    }

    /// The configuration modelling the direct-to-code baseline: no
    /// framework guarantees, silent sloppiness.
    pub fn direct_to_code() -> Self {
        EmulatorConfig {
            enforce_hierarchy: false,
            enforce_describe_readonly: false,
            strict_params: false,
            strict_writes: false,
            max_call_depth: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_is_strict() {
        let c = EmulatorConfig::framework();
        assert!(c.enforce_hierarchy && c.enforce_describe_readonly && c.strict_params);
    }

    #[test]
    fn d2c_is_lax() {
        let c = EmulatorConfig::direct_to_code();
        assert!(!c.enforce_hierarchy && !c.enforce_describe_readonly && !c.strict_params);
    }
}
