#![deny(missing_docs)]
// `ApiError` deliberately carries rich structured context (api, resource,
// call chain) and is returned by value throughout the interpreter; boxing
// it everywhere would obscure the eval code for a cold error path.
#![allow(clippy::result_large_err)]

//! # lce-emulator — the emulator framework
//!
//! The interpreter that turns SM specifications into a running mock cloud.
//! In the paper's terms this is the *one-time manual engineering effort*
//! (§4.2): an "executable specification" runner that maps grammar constructs
//! to behaviour, so that everything resource-specific can be *learned* from
//! documentation instead of handcoded.
//!
//! Design highlights:
//!
//! * **One interpreter, many behaviour models.** The golden cloud, the
//!   learned emulator and the direct-to-code baseline all run here; they
//!   differ only in the [`lce_spec::Catalog`] loaded and in the
//!   [`EmulatorConfig`] (framework-level correctness enforcement on/off).
//! * **Atomic transitions.** Every API call executes against a scratch copy
//!   of the resource store and commits only on success, so a failed
//!   `assert` rolls back all effects — including nested `call`s.
//! * **Hierarchy enforcement.** With [`EmulatorConfig::enforce_hierarchy`],
//!   the framework guarantees the containment rules the paper derives from
//!   the SM hierarchy: children cannot be created under missing parents and
//!   parents cannot be destroyed while children are alive — regardless of
//!   what the (possibly mis-generated) spec says.
//! * **Rich, aligned errors.** Failures carry a machine-checkable
//!   [`ErrorCode`](lce_spec::ErrorCode) (aligned with the cloud) plus a
//!   human-oriented message and a structured [`ErrorContext`] from which
//!   richer explanations can be decoded.
//!
//! ```
//! use lce_emulator::{Emulator, ApiCall, Value, Backend};
//! use lce_spec::{parse_catalog, Catalog};
//!
//! let catalog = Catalog::from_specs(parse_catalog(r#"
//!   sm Bucket {
//!     service "storage";
//!     states { name: str; versioning: bool = false; }
//!     transition CreateBucket(Name: str) kind create {
//!       write(name, arg(Name));
//!     }
//!     transition DeleteBucket() kind destroy { }
//!   }
//! "#).unwrap());
//! let mut emu = Emulator::new(catalog);
//! let resp = emu.invoke(&ApiCall::new("CreateBucket").arg("Name", Value::str("logs")));
//! assert!(resp.is_ok());
//! let id = resp.fields.get("BucketId").unwrap().clone();
//! let resp = emu.invoke(&ApiCall::new("DeleteBucket").arg("BucketId", id));
//! assert!(resp.is_ok());
//! ```

pub mod backend;
pub mod call;
pub mod config;
pub mod emulator;
pub mod errors;
pub mod eval;
pub mod store;
pub mod value;

pub use backend::Backend;
pub use call::{ApiCall, ApiResponse};
pub use config::EmulatorConfig;
pub use emulator::Emulator;
pub use errors::{codes, ApiError, ErrorContext};
pub use store::{Instance, ResourceStore};
pub use value::{ResourceId, Value};
