//! The [`Backend`] trait: anything that can stand in for a cloud.
//!
//! Implemented by the interpreter ([`crate::Emulator`]) for golden, learned
//! and direct-to-code behaviour models, and by the handcrafted Moto-like
//! baseline in `lce-baselines`. The DevOps program runner and the alignment
//! engine are generic over this trait, which is what lets every experiment
//! compare emulators on identical traces.

use crate::call::{ApiCall, ApiResponse};

/// A mock cloud endpoint.
pub trait Backend {
    /// Display name used in reports (e.g. `"golden"`, `"learned"`).
    fn name(&self) -> &str;

    /// Invoke one API call, mutating internal state.
    fn invoke(&mut self, call: &ApiCall) -> ApiResponse;

    /// Serve one API call through a shared reference, if this backend can
    /// *prove* the call leaves its state untouched.
    ///
    /// `None` means "not provably read-only here — use [`Self::invoke`]";
    /// it is a routing decision, not an error. `Some(resp)` must be
    /// byte-identical to what `invoke` would have returned, with no
    /// observable state change. The default declines everything; the
    /// compiled engine overrides it for transitions its effect analysis
    /// stamped `ReadOnly`, which lets the serving router dispatch reads
    /// under a shared lock.
    fn invoke_read(&self, call: &ApiCall) -> Option<ApiResponse> {
        let _ = call;
        None
    }

    /// Drop all resources, returning to a fresh account.
    fn reset(&mut self);

    /// All API names this backend claims to support (used for coverage
    /// accounting).
    fn api_names(&self) -> Vec<String>;

    /// `true` if the backend claims to support the API.
    ///
    /// The default walks [`Self::api_names`], which allocates a fresh
    /// `Vec` per query; backends with a catalog or an index
    /// ([`crate::Emulator`], the Moto-like baseline) override it with a
    /// direct lookup.
    fn supports(&self, api: &str) -> bool {
        self.api_names().iter().any(|a| a == api)
    }

    /// A copy of the backend's resource store, if it has one to expose.
    ///
    /// The chaos harness uses this to compare final states between faulted
    /// and fault-free runs. The default is `None`: backends without a
    /// local store (e.g. the remote client, which would need a network
    /// round-trip) simply opt out, and callers must treat `None` as
    /// "unavailable", not "empty".
    fn snapshot(&self) -> Option<crate::ResourceStore> {
        None
    }
}

/// Boxed trait objects are backends themselves, so the serving router and
/// remote client can store `Box<dyn Backend>` (or `Box<dyn Backend +
/// Send>`) and still hand it to everything generic over `B: Backend`
/// without ad-hoc shims.
impl<B: Backend + ?Sized> Backend for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
        (**self).invoke(call)
    }
    fn invoke_read(&self, call: &ApiCall) -> Option<ApiResponse> {
        (**self).invoke_read(call)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn api_names(&self) -> Vec<String> {
        (**self).api_names()
    }
    fn supports(&self, api: &str) -> bool {
        (**self).supports(api)
    }
    fn snapshot(&self) -> Option<crate::ResourceStore> {
        (**self).snapshot()
    }
}

/// Run a sequence of calls, collecting responses.
pub fn run_trace<B: Backend + ?Sized>(backend: &mut B, calls: &[ApiCall]) -> Vec<ApiResponse> {
    calls.iter().map(|c| backend.invoke(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::collections::BTreeMap;

    /// A trivial backend for trait-level tests.
    struct Echo {
        count: usize,
    }

    impl Backend for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
            self.count += 1;
            let mut fields = BTreeMap::new();
            fields.insert("Api".to_string(), Value::str(call.api.clone()));
            ApiResponse::ok(fields)
        }
        fn reset(&mut self) {
            self.count = 0;
        }
        fn api_names(&self) -> Vec<String> {
            vec!["Echo".into()]
        }
    }

    #[test]
    fn run_trace_preserves_order() {
        let mut b = Echo { count: 0 };
        let calls = vec![ApiCall::new("A"), ApiCall::new("B")];
        let resps = run_trace(&mut b, &calls);
        assert_eq!(resps.len(), 2);
        assert_eq!(resps[1].field("Api"), Some(&Value::str("B")));
        assert_eq!(b.count, 2);
    }

    #[test]
    fn supports_uses_api_names() {
        let b = Echo { count: 0 };
        assert!(b.supports("Echo"));
        assert!(!b.supports("Other"));
    }

    /// Compile-time proof that `Backend` stays object-safe: if a change
    /// ever breaks `dyn Backend`, this stops compiling.
    #[allow(dead_code)]
    fn backend_is_object_safe(b: &dyn Backend) -> &dyn Backend {
        b
    }

    #[test]
    fn snapshot_defaults_to_none_and_forwards_through_box() {
        let plain = Echo { count: 0 };
        assert!(plain.snapshot().is_none(), "default snapshot is None");
        let boxed: Box<dyn Backend> = Box::new(Echo { count: 0 });
        assert!(boxed.snapshot().is_none(), "Box forwards the default");
    }

    #[test]
    fn invoke_read_defaults_to_none_and_forwards_through_box() {
        let plain = Echo { count: 0 };
        assert!(plain.invoke_read(&ApiCall::new("Echo")).is_none());
        let boxed: Box<dyn Backend> = Box::new(Echo { count: 0 });
        assert!(boxed.invoke_read(&ApiCall::new("Echo")).is_none());
    }

    #[test]
    fn boxed_trait_objects_are_backends() {
        let mut boxed: Box<dyn Backend> = Box::new(Echo { count: 0 });
        // The box is usable directly as a trait object…
        assert_eq!(boxed.name(), "echo");
        // …and, via the blanket impl, wherever a `B: Backend` is expected.
        let resps = run_trace(&mut boxed, &[ApiCall::new("Ping")]);
        assert_eq!(resps.len(), 1);
        assert!(boxed.supports("Echo"));
        boxed.reset();

        let mut sendable: Box<dyn Backend + Send> = Box::new(Echo { count: 0 });
        let resps = run_trace(&mut sendable, &[ApiCall::new("Ping")]);
        assert_eq!(resps.len(), 1);
    }
}
