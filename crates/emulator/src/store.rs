//! The resource store: live instances, containment links, id generation.

use crate::value::{id_prefix, ResourceId, Value};
use lce_spec::{SmName, SmSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A live resource instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Unique id.
    pub id: ResourceId,
    /// Resource type (SM name).
    pub sm: SmName,
    /// State-variable values.
    pub state: BTreeMap<String, Value>,
    /// Containment parent, if the SM declares one.
    pub parent: Option<ResourceId>,
}

impl Instance {
    /// Read a state variable.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.state.get(var)
    }

    /// Write a state variable (must already be declared/initialised).
    pub fn set(&mut self, var: &str, value: Value) {
        self.state.insert(var.to_string(), value);
    }
}

/// The mock cloud's resource store. Cloning is cheap enough at emulation
/// scale that atomic transitions are implemented by executing against a
/// clone and committing on success.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceStore {
    instances: BTreeMap<ResourceId, Instance>,
    /// Monotonic per-type counters for id generation; never reset on
    /// rollback so ids are not reused (matching cloud behaviour).
    counters: BTreeMap<SmName, u64>,
}

impl ResourceStore {
    /// An empty store.
    pub fn new() -> Self {
        ResourceStore::default()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` if no instances are live.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Generate a fresh id for the given resource type, e.g. `vpc-000001`.
    pub fn fresh_id(&mut self, sm: &SmName) -> ResourceId {
        let counter = self.counters.entry(sm.clone()).or_insert(0);
        *counter += 1;
        ResourceId::new(format!("{}-{:06x}", id_prefix(sm), counter))
    }

    /// Copy id counters from another store. Used to keep counters monotonic
    /// when a failed transition's scratch store is discarded, so ids are
    /// never reused even across failed creates.
    pub fn adopt_counters(&mut self, other: &ResourceStore) {
        for (sm, n) in &other.counters {
            let e = self.counters.entry(sm.clone()).or_insert(0);
            *e = (*e).max(*n);
        }
    }

    /// Iterate the monotonic id counters, in `SmName` order. Together with
    /// [`ResourceStore::iter`] this is the complete observable content of a
    /// store, which canonical store serialization depends on.
    pub fn counters(&self) -> impl Iterator<Item = (&SmName, u64)> {
        self.counters.iter().map(|(sm, n)| (sm, *n))
    }

    /// Restore one id counter (the inverse of [`ResourceStore::counters`],
    /// used by store deserialization). Counters stay monotonic: a value
    /// lower than the current one is ignored.
    pub fn set_counter(&mut self, sm: SmName, value: u64) {
        let e = self.counters.entry(sm).or_insert(0);
        *e = (*e).max(value);
    }

    /// Create an instance with default state for every declared variable.
    /// The caller runs the `create` transition body afterwards.
    pub fn instantiate(&mut self, spec: &SmSpec, id: ResourceId) -> &mut Instance {
        let state: BTreeMap<String, Value> = spec
            .states
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    Value::default_for(&s.ty, s.nullable, &s.default),
                )
            })
            .collect();
        let inst = Instance {
            id: id.clone(),
            sm: spec.name.clone(),
            state,
            parent: None,
        };
        self.instances.insert(id.clone(), inst);
        self.instances.get_mut(&id).expect("just inserted")
    }

    /// Insert a fully-formed instance, replacing (and returning) any
    /// existing one with the same id. Used by engines that build instances
    /// from precomputed templates (the compiled IR executor) and by
    /// journal-based rollback, which must reinstate removed instances
    /// verbatim. Id prefixes are not unique across SM types, so a caller
    /// minting fresh ids must inspect the displaced instance to keep
    /// rollback faithful.
    pub fn put(&mut self, inst: Instance) -> Option<Instance> {
        self.instances.insert(inst.id.clone(), inst)
    }

    /// Look up a live instance.
    pub fn get(&self, id: &ResourceId) -> Option<&Instance> {
        self.instances.get(id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: &ResourceId) -> Option<&mut Instance> {
        self.instances.get_mut(id)
    }

    /// `true` if the id refers to a live instance.
    pub fn exists(&self, id: &ResourceId) -> bool {
        self.instances.contains_key(id)
    }

    /// Remove an instance (destroy).
    pub fn remove(&mut self, id: &ResourceId) -> Option<Instance> {
        self.instances.remove(id)
    }

    /// Set the containment parent of an instance.
    pub fn set_parent(&mut self, child: &ResourceId, parent: ResourceId) {
        if let Some(inst) = self.instances.get_mut(child) {
            inst.parent = Some(parent);
        }
    }

    /// Count live children of `parent` having the given resource type.
    pub fn child_count(&self, parent: &ResourceId, child_type: &SmName) -> usize {
        self.instances
            .values()
            .filter(|i| i.sm == *child_type && i.parent.as_ref() == Some(parent))
            .count()
    }

    /// Count all live children of `parent` regardless of type.
    pub fn total_children(&self, parent: &ResourceId) -> usize {
        self.instances
            .values()
            .filter(|i| i.parent.as_ref() == Some(parent))
            .count()
    }

    /// All live instances of a type, in id order.
    pub fn of_type(&self, sm: &SmName) -> Vec<&Instance> {
        self.instances.values().filter(|i| i.sm == *sm).collect()
    }

    /// Iterate over all live instances in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::parse_sm;

    fn vpc_spec() -> SmSpec {
        parse_sm(
            r#"sm Vpc { service "compute";
                states { cidr: str; enable_dns: bool = true; }
                transition CreateVpc(CidrBlock: str) kind create { write(cidr, arg(CidrBlock)); } }"#,
        )
        .unwrap()
    }

    #[test]
    fn fresh_ids_unique_and_prefixed() {
        let mut store = ResourceStore::new();
        let a = store.fresh_id(&SmName::new("Vpc"));
        let b = store.fresh_id(&SmName::new("Vpc"));
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("vpc-"));
    }

    #[test]
    fn instantiate_sets_defaults() {
        let mut store = ResourceStore::new();
        let spec = vpc_spec();
        let id = store.fresh_id(&spec.name);
        store.instantiate(&spec, id.clone());
        let inst = store.get(&id).unwrap();
        assert_eq!(inst.get("enable_dns"), Some(&Value::Bool(true)));
        assert_eq!(inst.get("cidr"), Some(&Value::Str(String::new())));
    }

    #[test]
    fn child_count_tracks_parent_links() {
        let mut store = ResourceStore::new();
        let spec = vpc_spec();
        let vpc = store.fresh_id(&spec.name);
        store.instantiate(&spec, vpc.clone());

        let subnet_spec = parse_sm(r#"sm Subnet { service "compute"; states { } }"#).unwrap();
        let s1 = store.fresh_id(&subnet_spec.name);
        store.instantiate(&subnet_spec, s1.clone());
        store.set_parent(&s1, vpc.clone());

        assert_eq!(store.child_count(&vpc, &SmName::new("Subnet")), 1);
        assert_eq!(store.child_count(&vpc, &SmName::new("Instance")), 0);
        assert_eq!(store.total_children(&vpc), 1);

        store.remove(&s1);
        assert_eq!(store.child_count(&vpc, &SmName::new("Subnet")), 0);
    }

    #[test]
    fn counters_survive_instance_removal() {
        let mut store = ResourceStore::new();
        let sm = SmName::new("Vpc");
        let a = store.fresh_id(&sm);
        store.remove(&a);
        let b = store.fresh_id(&sm);
        assert_ne!(a, b, "ids must never be reused");
    }

    #[test]
    fn counters_are_observable_and_restorable() {
        let mut store = ResourceStore::new();
        let vpc = SmName::new("Vpc");
        let sub = SmName::new("Subnet");
        store.fresh_id(&vpc);
        store.fresh_id(&vpc);
        store.fresh_id(&sub);
        let observed: Vec<(SmName, u64)> =
            store.counters().map(|(sm, n)| (sm.clone(), n)).collect();
        assert_eq!(
            observed,
            vec![(sub.clone(), 1), (vpc.clone(), 2)],
            "BTreeMap order, exact values"
        );

        let mut restored = ResourceStore::new();
        for (sm, n) in &observed {
            restored.set_counter(sm.clone(), *n);
        }
        let next = restored.fresh_id(&vpc);
        assert_eq!(
            next,
            store.fresh_id(&vpc),
            "restored counters continue the sequence"
        );

        // set_counter never moves a counter backwards.
        restored.set_counter(vpc.clone(), 0);
        assert_eq!(restored.fresh_id(&vpc), store.fresh_id(&vpc));
    }
}
