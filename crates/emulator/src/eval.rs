//! Expression evaluation and transition execution.
//!
//! Transitions run against a *scratch* store owned by the caller
//! ([`crate::Emulator`] clones the live store first), so any error —
//! assert violation, framework-rule violation, interpreter fault — simply
//! abandons the scratch and the transition is atomic.

use crate::config::EmulatorConfig;
use crate::errors::{codes, ApiError};
use crate::store::ResourceStore;
use crate::value::{ResourceId, Value};
use lce_spec::{ApiName, BinOp, Catalog, Expr, Stmt, Transition, TransitionKind, UnOp};
use std::collections::BTreeMap;

/// Everything constant across one top-level API invocation.
pub struct ExecEnv<'a> {
    /// The behaviour model being interpreted.
    pub catalog: &'a Catalog,
    /// Active framework guarantees.
    pub config: &'a EmulatorConfig,
    /// Whether destroy-kinded transitions are permitted in this invocation
    /// (false inside `create` when hierarchy enforcement is on).
    pub allow_destroy: bool,
}

/// One activation record: a transition running on an instance.
pub struct Frame<'a> {
    /// The spec of the SM being executed.
    pub sm: &'a lce_spec::SmSpec,
    /// The running transition.
    pub transition: &'a Transition,
    /// The instance the transition runs on.
    pub self_id: ResourceId,
    /// Coerced argument values (absent optional params are `Null`).
    pub args: BTreeMap<String, Value>,
}

/// Outcome of a successful transition: emitted response fields.
pub type Emits = BTreeMap<String, Value>;

/// Run a transition body against `store`. On error the caller must discard
/// `store`. `chain` is the API call chain for error context; `depth` guards
/// recursion.
pub fn run_transition(
    env: &ExecEnv<'_>,
    store: &mut ResourceStore,
    frame: &Frame<'_>,
    depth: usize,
    chain: &mut Vec<ApiName>,
) -> Result<Emits, ApiError> {
    if depth > env.config.max_call_depth {
        return Err(fault(
            env,
            frame,
            chain,
            codes::LIMIT_EXCEEDED,
            format!("call depth exceeded {}", env.config.max_call_depth),
        ));
    }
    chain.push(frame.transition.name.clone());
    let mut emits = Emits::new();
    let mut stmt_index = 0usize;
    let result = run_stmts(
        env,
        store,
        frame,
        &frame.transition.body,
        depth,
        chain,
        &mut emits,
        &mut stmt_index,
    );
    chain.pop();
    result.map(|_| emits)
}

#[allow(clippy::too_many_arguments)]
fn run_stmts(
    env: &ExecEnv<'_>,
    store: &mut ResourceStore,
    frame: &Frame<'_>,
    stmts: &[Stmt],
    depth: usize,
    chain: &mut Vec<ApiName>,
    emits: &mut Emits,
    stmt_index: &mut usize,
) -> Result<(), ApiError> {
    for stmt in stmts {
        let this_index = *stmt_index;
        *stmt_index += 1;
        match stmt {
            Stmt::Write { state, value, .. } => {
                let v = eval(env, store, frame, value, chain)?;
                let decl = frame.sm.state(state).ok_or_else(|| {
                    fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        format!("write to undeclared state variable `{}`", state),
                    )
                })?;
                let stored = if env.config.strict_writes {
                    match v.coerce(&decl.ty) {
                        Some(cv) => cv,
                        None if v.is_null() && decl.nullable => Value::Null,
                        None => {
                            return Err(fault(
                                env,
                                frame,
                                chain,
                                codes::INTERNAL_FAILURE,
                                format!(
                                    "write of {} value to `{}: {}`",
                                    v.type_name(),
                                    state,
                                    decl.ty
                                ),
                            ))
                        }
                    }
                } else {
                    v
                };
                let inst = store.get_mut(&frame.self_id).ok_or_else(|| {
                    fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        "self instance vanished mid-transition",
                    )
                })?;
                inst.set(state, stored);
            }
            Stmt::Assert {
                pred,
                error,
                message,
                ..
            } => {
                let v = eval(env, store, frame, pred, chain)?;
                let ok = v.as_bool().ok_or_else(|| {
                    fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        "assert predicate did not evaluate to a boolean",
                    )
                })?;
                if !ok {
                    let mut e = ApiError::new(error.as_str(), message.clone())
                        .with_api(&frame.transition.name)
                        .with_resource_type(&frame.sm.name)
                        .with_resource_id(&frame.self_id)
                        .with_assert_index(this_index);
                    e.context.call_chain = chain.clone();
                    return Err(e);
                }
            }
            Stmt::Emit { field, value, .. } => {
                let v = eval(env, store, frame, value, chain)?;
                emits.insert(field.clone(), v);
            }
            Stmt::If {
                pred, then, els, ..
            } => {
                let v = eval(env, store, frame, pred, chain)?;
                let cond = v.as_bool().ok_or_else(|| {
                    fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        "if condition did not evaluate to a boolean",
                    )
                })?;
                let branch = if cond { then } else { els };
                run_stmts(env, store, frame, branch, depth, chain, emits, stmt_index)?;
            }
            Stmt::Call {
                target, api, args, ..
            } => {
                let tv = eval(env, store, frame, target, chain)?;
                let target_id = match tv {
                    Value::Ref(id) => id,
                    Value::Str(s) => ResourceId::new(s),
                    other => {
                        return Err(fault(
                            env,
                            frame,
                            chain,
                            codes::INTERNAL_FAILURE,
                            format!("call target is not a reference ({})", other.type_name()),
                        ))
                    }
                };
                let target_inst = store.get(&target_id).ok_or_else(|| {
                    let mut e = ApiError::new(
                        codes::NOT_FOUND,
                        format!("resource {} does not exist", target_id),
                    )
                    .with_api(api)
                    .with_resource_id(&target_id);
                    e.context.call_chain = chain.clone();
                    e
                })?;
                let target_sm_name = target_inst.sm.clone();
                let target_sm = env.catalog.get(&target_sm_name).ok_or_else(|| {
                    fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        format!("no specification for resource type `{}`", target_sm_name),
                    )
                })?;
                let callee = target_sm.transition(api.as_str()).ok_or_else(|| {
                    fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        format!("`{}` declares no transition `{}`", target_sm_name, api),
                    )
                })?;
                if callee.kind == TransitionKind::Create {
                    return Err(fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        "calls may not target create transitions",
                    ));
                }
                if callee.kind == TransitionKind::Destroy && !env.allow_destroy {
                    return Err(fault(
                        env,
                        frame,
                        chain,
                        codes::INTERNAL_FAILURE,
                        "create transitions may not destroy resources",
                    ));
                }
                // Bind positional args to the callee's parameters.
                let mut bound = BTreeMap::new();
                for (i, param) in callee.params.iter().enumerate() {
                    let raw = match args.get(i) {
                        Some(a) => eval(env, store, frame, a, chain)?,
                        None if param.optional => Value::Null,
                        None => {
                            return Err(fault(
                                env,
                                frame,
                                chain,
                                codes::INTERNAL_FAILURE,
                                format!(
                                    "call to `{}::{}` missing argument `{}`",
                                    target_sm_name, api, param.name
                                ),
                            ))
                        }
                    };
                    let v = if env.config.strict_writes {
                        raw.coerce(&param.ty).unwrap_or(raw)
                    } else {
                        raw
                    };
                    bound.insert(param.name.clone(), v);
                }
                let callee_frame = Frame {
                    sm: target_sm,
                    transition: callee,
                    self_id: target_id.clone(),
                    args: bound,
                };
                // Callee emits are internal and discarded.
                run_transition(env, store, &callee_frame, depth + 1, chain)?;
                if callee.kind == TransitionKind::Destroy {
                    finish_destroy(env, store, frame, &target_id, chain)?;
                }
            }
        }
    }
    Ok(())
}

/// Framework-level completion of a destroy: hierarchy check, then removal.
pub fn finish_destroy(
    env: &ExecEnv<'_>,
    store: &mut ResourceStore,
    frame: &Frame<'_>,
    id: &ResourceId,
    chain: &[ApiName],
) -> Result<(), ApiError> {
    if env.config.enforce_hierarchy {
        let children = store.total_children(id);
        if children > 0 {
            let mut e = ApiError::new(
                codes::DEPENDENCY_VIOLATION,
                format!(
                    "resource {} still contains {} live child resource(s)",
                    id, children
                ),
            )
            .with_api(&frame.transition.name)
            .with_resource_id(id);
            e.context.call_chain = chain.to_vec();
            return Err(e);
        }
    }
    store.remove(id);
    Ok(())
}

fn fault(
    _env: &ExecEnv<'_>,
    frame: &Frame<'_>,
    chain: &[ApiName],
    code: &str,
    message: impl Into<String>,
) -> ApiError {
    let mut e = ApiError::new(code, message)
        .with_api(&frame.transition.name)
        .with_resource_type(&frame.sm.name)
        .with_resource_id(&frame.self_id);
    e.context.call_chain = chain.to_vec();
    e
}

/// Evaluate a side-effect-free expression.
#[allow(clippy::only_used_in_recursion)]
pub fn eval(
    env: &ExecEnv<'_>,
    store: &ResourceStore,
    frame: &Frame<'_>,
    expr: &Expr,
    chain: &[ApiName],
) -> Result<Value, ApiError> {
    let fault = |code: &str, msg: String| -> ApiError {
        let mut e = ApiError::new(code, msg)
            .with_api(&frame.transition.name)
            .with_resource_type(&frame.sm.name)
            .with_resource_id(&frame.self_id);
        e.context.call_chain = chain.to_vec();
        e
    };
    match expr {
        Expr::Lit(lit) => Ok(Value::from_literal(lit)),
        Expr::Null => Ok(Value::Null),
        Expr::SelfId => Ok(Value::Ref(frame.self_id.clone())),
        Expr::Read(var) => {
            let inst = store
                .get(&frame.self_id)
                .ok_or_else(|| fault(codes::INTERNAL_FAILURE, "self instance vanished".into()))?;
            inst.get(var).cloned().ok_or_else(|| {
                fault(
                    codes::INTERNAL_FAILURE,
                    format!("read of undeclared state variable `{}`", var),
                )
            })
        }
        Expr::Arg(name) => Ok(frame.args.get(name).cloned().unwrap_or(Value::Null)),
        Expr::Field(inner, var) => {
            let v = eval(env, store, frame, inner, chain)?;
            let id = match v {
                Value::Ref(id) => id,
                Value::Str(s) => ResourceId::new(s),
                Value::Null => {
                    return Err(fault(
                        codes::INTERNAL_FAILURE,
                        format!("field access `{}` on null reference", var),
                    ))
                }
                other => {
                    return Err(fault(
                        codes::INTERNAL_FAILURE,
                        format!("field access on {} value", other.type_name()),
                    ))
                }
            };
            let inst = store.get(&id).ok_or_else(|| {
                fault(codes::NOT_FOUND, format!("resource {} does not exist", id))
            })?;
            inst.get(var).cloned().ok_or_else(|| {
                fault(
                    codes::INTERNAL_FAILURE,
                    format!("`{}` has no state variable `{}`", inst.sm, var),
                )
            })
        }
        Expr::ChildCount(child_ty) => Ok(Value::Int(
            store.child_count(&frame.self_id, child_ty) as i64
        )),
        Expr::Unary(op, inner) => {
            let v = eval(env, store, frame, inner, chain)?;
            match op {
                UnOp::Not => v
                    .as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| fault(codes::INTERNAL_FAILURE, "`!` on non-boolean".into())),
                UnOp::IsNull => Ok(Value::Bool(v.is_null())),
                UnOp::Exists => match v {
                    Value::Ref(id) => Ok(Value::Bool(store.exists(&id))),
                    Value::Str(s) => Ok(Value::Bool(store.exists(&ResourceId::new(s)))),
                    Value::Null => Ok(Value::Bool(false)),
                    _ => Ok(Value::Bool(false)),
                },
                UnOp::Len => match &v {
                    Value::List(items) => Ok(Value::Int(items.len() as i64)),
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    other => Err(fault(
                        codes::INTERNAL_FAILURE,
                        format!("`len` on {} value", other.type_name()),
                    )),
                },
            }
        }
        Expr::Binary(op, a, b) => {
            // Short-circuit boolean operators.
            if matches!(op, BinOp::And | BinOp::Or) {
                let va = eval(env, store, frame, a, chain)?;
                let ba = va.as_bool().ok_or_else(|| {
                    fault(
                        codes::INTERNAL_FAILURE,
                        "boolean operator on non-boolean".into(),
                    )
                })?;
                return match (op, ba) {
                    (BinOp::And, false) => Ok(Value::Bool(false)),
                    (BinOp::Or, true) => Ok(Value::Bool(true)),
                    _ => {
                        let vb = eval(env, store, frame, b, chain)?;
                        vb.as_bool().map(Value::Bool).ok_or_else(|| {
                            fault(
                                codes::INTERNAL_FAILURE,
                                "boolean operator on non-boolean".into(),
                            )
                        })
                    }
                };
            }
            let va = eval(env, store, frame, a, chain)?;
            let vb = eval(env, store, frame, b, chain)?;
            match op {
                BinOp::Eq => Ok(Value::Bool(va.loose_eq(&vb))),
                BinOp::Ne => Ok(Value::Bool(!va.loose_eq(&vb))),
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let (x, y) = match (va.as_int(), vb.as_int()) {
                        (Some(x), Some(y)) => (x, y),
                        _ => {
                            return Err(fault(
                                codes::INTERNAL_FAILURE,
                                "ordered comparison on non-integers".into(),
                            ))
                        }
                    };
                    Ok(Value::Bool(match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        _ => unreachable!(),
                    }))
                }
                BinOp::In => match vb {
                    Value::List(items) => Ok(Value::Bool(items.iter().any(|i| va.loose_eq(i)))),
                    other => Err(fault(
                        codes::INTERNAL_FAILURE,
                        format!("`in` on {} value", other.type_name()),
                    )),
                },
                BinOp::Add | BinOp::Sub => {
                    let (x, y) = match (va.as_int(), vb.as_int()) {
                        (Some(x), Some(y)) => (x, y),
                        _ => {
                            return Err(fault(
                                codes::INTERNAL_FAILURE,
                                "arithmetic on non-integers".into(),
                            ))
                        }
                    };
                    Ok(Value::Int(if *op == BinOp::Add { x + y } else { x - y }))
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::ListOf(items) => {
            let vals: Result<Vec<Value>, ApiError> = items
                .iter()
                .map(|e| eval(env, store, frame, e, chain))
                .collect();
            Ok(Value::List(vals?))
        }
        Expr::Append(list, item) => {
            let lv = eval(env, store, frame, list, chain)?;
            let iv = eval(env, store, frame, item, chain)?;
            match lv {
                Value::List(mut items) => {
                    items.push(iv);
                    Ok(Value::List(items))
                }
                other => Err(fault(
                    codes::INTERNAL_FAILURE,
                    format!("`append` on {} value", other.type_name()),
                )),
            }
        }
        Expr::Remove(list, item) => {
            let lv = eval(env, store, frame, list, chain)?;
            let iv = eval(env, store, frame, item, chain)?;
            match lv {
                Value::List(items) => Ok(Value::List(
                    items.into_iter().filter(|x| !x.loose_eq(&iv)).collect(),
                )),
                other => Err(fault(
                    codes::INTERNAL_FAILURE,
                    format!("`remove` on {} value", other.type_name()),
                )),
            }
        }
    }
}
