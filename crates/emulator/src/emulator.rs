//! Top-level API dispatch: the [`Emulator`] owns a catalog, a store and a
//! configuration, and turns [`ApiCall`]s into [`ApiResponse`]s.

use crate::backend::Backend;
use crate::call::{ApiCall, ApiResponse};
use crate::config::EmulatorConfig;
use crate::errors::{codes, ApiError};
use crate::eval::{finish_destroy, run_transition, ExecEnv, Frame};
use crate::store::ResourceStore;
use crate::value::{ResourceId, Value};
use lce_spec::{Catalog, SmSpec, Transition, TransitionKind};
use std::collections::BTreeMap;

/// An interpreter-backed emulator: a catalog of SM specs executed over a
/// resource store.
#[derive(Debug, Clone)]
pub struct Emulator {
    name: String,
    catalog: Catalog,
    config: EmulatorConfig,
    store: ResourceStore,
}

impl Emulator {
    /// Create an emulator with the default (framework) configuration.
    pub fn new(catalog: Catalog) -> Self {
        Emulator::with_config(catalog, EmulatorConfig::framework())
    }

    /// Create an emulator with an explicit configuration.
    pub fn with_config(catalog: Catalog, config: EmulatorConfig) -> Self {
        Emulator {
            name: "emulator".into(),
            catalog,
            config,
            store: ResourceStore::new(),
        }
    }

    /// Set a display name (used in experiment reports).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The loaded catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The live resource store (read-only).
    pub fn store(&self) -> &ResourceStore {
        &self.store
    }

    /// Replace the live store (used by alignment test drivers to start from
    /// a prepared state).
    pub fn set_store(&mut self, store: ResourceStore) {
        self.store = store;
    }

    /// The active configuration.
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    fn respond_err(&self, e: ApiError) -> ApiResponse {
        ApiResponse::err(e)
    }

    /// Validate and coerce the caller's arguments against the transition's
    /// declared parameters.
    fn bind_args(
        &self,
        sm: &SmSpec,
        t: &Transition,
        call: &ApiCall,
    ) -> Result<BTreeMap<String, Value>, ApiError> {
        let mut bound = BTreeMap::new();
        for p in &t.params {
            match call.args.get(&p.name) {
                None | Some(Value::Null) => {
                    if p.optional {
                        bound.insert(p.name.clone(), Value::Null);
                    } else {
                        return Err(ApiError::new(
                            codes::MISSING_PARAMETER,
                            format!("required parameter `{}` is missing", p.name),
                        )
                        .with_api(&t.name)
                        .with_resource_type(&sm.name));
                    }
                }
                Some(v) => match v.coerce(&p.ty) {
                    Some(cv) => {
                        bound.insert(p.name.clone(), cv);
                    }
                    None => {
                        return Err(ApiError::new(
                            codes::INVALID_PARAMETER_VALUE,
                            format!(
                                "parameter `{}` has invalid value {} (expected {})",
                                p.name, v, p.ty
                            ),
                        )
                        .with_api(&t.name)
                        .with_resource_type(&sm.name));
                    }
                },
            }
        }
        if self.config.strict_params {
            for k in call.args.keys() {
                if t.param(k).is_none() && k != &sm.id_param {
                    return Err(ApiError::new(
                        codes::UNKNOWN_PARAMETER,
                        format!("parameter `{}` is not accepted by {}", k, t.name),
                    )
                    .with_api(&t.name)
                    .with_resource_type(&sm.name));
                }
            }
        }
        Ok(bound)
    }

    fn invoke_inner(&mut self, call: &ApiCall) -> ApiResponse {
        let sm = match self.catalog.sm_for_api(&call.api) {
            Some(sm) => sm.clone(),
            None => {
                return self.respond_err(ApiError::new(
                    codes::INVALID_ACTION,
                    format!("the API `{}` is not supported by this emulator", call.api),
                ));
            }
        };
        let t = sm.transition(&call.api).expect("sm_for_api").clone();
        let args = match self.bind_args(&sm, &t, call) {
            Ok(a) => a,
            Err(e) => return self.respond_err(e),
        };

        let mut scratch = self.store.clone();
        let env = ExecEnv {
            catalog: &self.catalog,
            config: &self.config,
            allow_destroy: !(self.config.enforce_hierarchy && t.kind == TransitionKind::Create),
        };

        let result = match t.kind {
            TransitionKind::Create => self.run_create(&env, &mut scratch, &sm, &t, args),
            _ => self.run_on_instance(&env, &mut scratch, &sm, &t, call, args),
        };

        match result {
            Ok(fields) => {
                if t.kind == TransitionKind::Describe && self.config.enforce_describe_readonly {
                    // Discard all state changes a describe may have made
                    // (but keep id counters monotonic — none are allocated
                    // by describe anyway).
                } else {
                    self.store = scratch;
                }
                ApiResponse::ok(fields)
            }
            Err(e) => {
                // Keep id counters monotonic across failed creates so ids
                // are never reused.
                self.store.adopt_counters(&scratch);
                self.respond_err(e)
            }
        }
    }

    fn run_create(
        &self,
        env: &ExecEnv<'_>,
        scratch: &mut ResourceStore,
        sm: &SmSpec,
        t: &Transition,
        args: BTreeMap<String, Value>,
    ) -> Result<BTreeMap<String, Value>, ApiError> {
        let id = scratch.fresh_id(&sm.name);
        scratch.instantiate(sm, id.clone());
        let frame = Frame {
            sm,
            transition: t,
            self_id: id.clone(),
            args,
        };
        let mut chain = Vec::new();
        let mut emits = run_transition(env, scratch, &frame, 0, &mut chain)?;

        // Containment: resolve the declared parent link.
        if let Some((parent_ty, via)) = &sm.parent {
            let link = scratch
                .get(&id)
                .and_then(|inst| inst.get(via))
                .cloned()
                .unwrap_or(Value::Null);
            match link {
                Value::Ref(pid) => {
                    let ok = scratch.get(&pid).is_some_and(|p| &p.sm == parent_ty);
                    if !ok && env.config.enforce_hierarchy {
                        return Err(ApiError::new(
                            codes::NOT_FOUND,
                            format!("parent {} {} does not exist", parent_ty, pid),
                        )
                        .with_api(&t.name)
                        .with_resource_type(&sm.name));
                    }
                    scratch.set_parent(&id, pid);
                }
                Value::Null if env.config.enforce_hierarchy => {
                    return Err(ApiError::new(
                        codes::MISSING_PARAMETER,
                        format!(
                            "resource type {} requires a parent {} but `{}` was not set",
                            sm.name, parent_ty, via
                        ),
                    )
                    .with_api(&t.name)
                    .with_resource_type(&sm.name));
                }
                _ => {}
            }
        }

        emits.insert(sm.id_param.clone(), Value::Ref(id));
        Ok(emits)
    }

    fn run_on_instance(
        &self,
        env: &ExecEnv<'_>,
        scratch: &mut ResourceStore,
        sm: &SmSpec,
        t: &Transition,
        call: &ApiCall,
        args: BTreeMap<String, Value>,
    ) -> Result<BTreeMap<String, Value>, ApiError> {
        let id = match call.args.get(&sm.id_param) {
            Some(Value::Ref(id)) => id.clone(),
            Some(Value::Str(s)) => ResourceId::new(s.clone()),
            _ => {
                return Err(ApiError::new(
                    codes::MISSING_PARAMETER,
                    format!("required parameter `{}` is missing", sm.id_param),
                )
                .with_api(&t.name)
                .with_resource_type(&sm.name));
            }
        };
        let found = scratch.get(&id).map(|i| i.sm.clone());
        match found {
            Some(ty) if ty == sm.name => {}
            _ => {
                return Err(ApiError::new(
                    codes::NOT_FOUND,
                    format!("the {} `{}` does not exist", sm.name, id),
                )
                .with_api(&t.name)
                .with_resource_type(&sm.name)
                .with_resource_id(&id));
            }
        }
        let frame = Frame {
            sm,
            transition: t,
            self_id: id.clone(),
            args,
        };
        let mut chain = Vec::new();
        let emits = run_transition(env, scratch, &frame, 0, &mut chain)?;
        if t.kind == TransitionKind::Destroy {
            finish_destroy(env, scratch, &frame, &id, &chain)?;
        }
        Ok(emits)
    }
}

impl Backend for Emulator {
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&mut self, call: &ApiCall) -> ApiResponse {
        self.invoke_inner(call)
    }

    fn reset(&mut self) {
        self.store = ResourceStore::new();
    }

    fn api_names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .catalog
            .iter()
            .flat_map(|sm| sm.transitions.iter().map(|t| t.name.as_str().to_string()))
            .collect();
        out.sort();
        out
    }

    /// Direct catalog lookup — avoids materializing the full API list
    /// (which the default impl does) on a hot path queried per call by
    /// coverage accounting and the serving layer.
    fn supports(&self, api: &str) -> bool {
        self.catalog.sm_for_api(api).is_some()
    }

    fn snapshot(&self) -> Option<ResourceStore> {
        Some(self.store.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::parse_catalog;

    fn vpc_world() -> Emulator {
        let catalog = Catalog::from_specs(
            parse_catalog(
                r#"
        sm Vpc {
          service "compute";
          states {
            cidr: str;
            state: enum(pending, available) = available;
            enable_dns_support: bool = true;
            enable_dns_hostnames: bool = false;
          }
          transition CreateVpc(CidrBlock: str) kind create {
            write(cidr, arg(CidrBlock));
            emit(State, read(state));
          }
          transition DescribeVpc() kind describe {
            emit(CidrBlock, read(cidr));
            emit(State, read(state));
          }
          transition ModifyVpcAttribute(EnableDnsHostnames: bool?) kind modify {
            if !is_null(arg(EnableDnsHostnames)) {
              assert(read(enable_dns_support) || !arg(EnableDnsHostnames))
                else InvalidParameterValue "cannot enable DNS hostnames while DNS support is disabled";
              write(enable_dns_hostnames, arg(EnableDnsHostnames));
            }
          }
          transition DeleteVpc() kind destroy {
            assert(child_count(Subnet) == 0) else DependencyViolation "vpc has subnets";
          }
        }
        sm Subnet {
          service "compute";
          parent Vpc via vpc;
          states {
            vpc: ref(Vpc);
            cidr: str;
            map_public_ip_on_launch: bool = false;
          }
          transition CreateSubnet(VpcId: ref(Vpc), CidrBlock: str) kind create {
            assert(exists(arg(VpcId))) else NotFound "no such vpc";
            write(vpc, arg(VpcId));
            write(cidr, arg(CidrBlock));
          }
          transition ModifySubnetAttribute(MapPublicIpOnLaunch: bool?) kind modify {
            if !is_null(arg(MapPublicIpOnLaunch)) {
              write(map_public_ip_on_launch, arg(MapPublicIpOnLaunch));
            }
          }
          transition DeleteSubnet() kind destroy { }
        }
        "#,
            )
            .unwrap(),
        );
        Emulator::new(catalog)
    }

    fn create_vpc(emu: &mut Emulator) -> Value {
        let resp = emu.invoke(&ApiCall::new("CreateVpc").arg_str("CidrBlock", "10.0.0.0/16"));
        assert!(resp.is_ok(), "{:?}", resp.error);
        resp.field("VpcId").unwrap().clone()
    }

    #[test]
    fn create_and_describe() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        let resp = emu.invoke(&ApiCall::new("DescribeVpc").arg("VpcId", vpc));
        assert!(resp.is_ok());
        assert_eq!(resp.field("CidrBlock"), Some(&Value::str("10.0.0.0/16")));
        assert_eq!(resp.field("State"), Some(&Value::enum_val("available")));
    }

    #[test]
    fn unknown_api_is_invalid_action() {
        let mut emu = vpc_world();
        let resp = emu.invoke(&ApiCall::new("LaunchRocket"));
        assert_eq!(resp.error_code(), Some(codes::INVALID_ACTION));
    }

    #[test]
    fn missing_required_param() {
        let mut emu = vpc_world();
        let resp = emu.invoke(&ApiCall::new("CreateVpc"));
        assert_eq!(resp.error_code(), Some(codes::MISSING_PARAMETER));
    }

    #[test]
    fn unknown_param_rejected_when_strict() {
        let mut emu = vpc_world();
        let resp = emu.invoke(
            &ApiCall::new("CreateVpc")
                .arg_str("CidrBlock", "10.0.0.0/16")
                .arg_str("Color", "red"),
        );
        assert_eq!(resp.error_code(), Some(codes::UNKNOWN_PARAMETER));
    }

    #[test]
    fn not_found_for_missing_instance() {
        let mut emu = vpc_world();
        let resp = emu.invoke(&ApiCall::new("DescribeVpc").arg_str("VpcId", "vpc-dead"));
        assert_eq!(resp.error_code(), Some(codes::NOT_FOUND));
    }

    #[test]
    fn delete_vpc_with_subnet_is_dependency_violation() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        let resp = emu.invoke(
            &ApiCall::new("CreateSubnet")
                .arg("VpcId", vpc.clone())
                .arg_str("CidrBlock", "10.0.1.0/24"),
        );
        assert!(resp.is_ok(), "{:?}", resp.error);
        let resp = emu.invoke(&ApiCall::new("DeleteVpc").arg("VpcId", vpc.clone()));
        assert_eq!(resp.error_code(), Some("DependencyViolation"));
        // After deleting the subnet, the VPC can go.
        let subnet = {
            let resp = emu.invoke(
                &ApiCall::new("CreateSubnet")
                    .arg("VpcId", vpc.clone())
                    .arg_str("CidrBlock", "10.0.2.0/24"),
            );
            resp.field("SubnetId").unwrap().clone()
        };
        // Two subnets now; delete both.
        for inst in emu.store().of_type(&lce_spec::SmName::new("Subnet")) {
            let _ = inst;
        }
        let all: Vec<_> = emu
            .store()
            .of_type(&lce_spec::SmName::new("Subnet"))
            .iter()
            .map(|i| i.id.clone())
            .collect();
        for id in all {
            let resp = emu.invoke(&ApiCall::new("DeleteSubnet").arg("SubnetId", Value::Ref(id)));
            assert!(resp.is_ok(), "{:?}", resp.error);
        }
        let _ = subnet;
        let resp = emu.invoke(&ApiCall::new("DeleteVpc").arg("VpcId", vpc));
        assert!(resp.is_ok(), "{:?}", resp.error);
    }

    #[test]
    fn assert_rolls_back_all_effects() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        // Disable DNS support is not modelled; instead check the guarded
        // modify: enabling hostnames while support is on works…
        let resp = emu.invoke(
            &ApiCall::new("ModifySubnetAttribute")
                .arg_str("SubnetId", "subnet-dead")
                .arg_bool("MapPublicIpOnLaunch", true),
        );
        assert_eq!(resp.error_code(), Some(codes::NOT_FOUND));
        let _ = vpc;
    }

    #[test]
    fn modify_subnet_attribute_round_trip() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        let subnet = emu
            .invoke(
                &ApiCall::new("CreateSubnet")
                    .arg("VpcId", vpc)
                    .arg_str("CidrBlock", "10.0.1.0/24"),
            )
            .field("SubnetId")
            .unwrap()
            .clone();
        let resp = emu.invoke(
            &ApiCall::new("ModifySubnetAttribute")
                .arg("SubnetId", subnet.clone())
                .arg_bool("MapPublicIpOnLaunch", true),
        );
        assert!(resp.is_ok(), "{:?}", resp.error);
        let id = subnet.as_ref_id().unwrap();
        let inst = emu.store().get(id).unwrap();
        assert_eq!(
            inst.get("map_public_ip_on_launch"),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn create_subnet_under_missing_vpc_fails() {
        let mut emu = vpc_world();
        let resp = emu.invoke(
            &ApiCall::new("CreateSubnet")
                .arg_str("VpcId", "vpc-ghost")
                .arg_str("CidrBlock", "10.0.1.0/24"),
        );
        assert_eq!(resp.error_code(), Some("NotFound"));
        assert!(emu.store().is_empty(), "failed create must roll back");
    }

    #[test]
    fn reset_clears_state() {
        let mut emu = vpc_world();
        create_vpc(&mut emu);
        assert_eq!(emu.store().len(), 1);
        emu.reset();
        assert!(emu.store().is_empty());
    }

    #[test]
    fn api_names_sorted_and_complete() {
        let emu = vpc_world();
        let names = emu.api_names();
        assert_eq!(names.len(), 7);
        assert!(names.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn supports_matches_catalog_lookup() {
        let emu = vpc_world();
        for api in emu.api_names() {
            assert!(emu.supports(&api), "{}", api);
        }
        assert!(!emu.supports("LaunchRocket"));
    }

    #[test]
    fn optional_param_defaults_to_null() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        // ModifyVpcAttribute with no optional args is a no-op success.
        let resp = emu.invoke(&ApiCall::new("ModifyVpcAttribute").arg("VpcId", vpc));
        assert!(resp.is_ok(), "{:?}", resp.error);
    }

    #[test]
    fn guarded_modify_enforces_cross_attribute_check() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        let resp = emu.invoke(
            &ApiCall::new("ModifyVpcAttribute")
                .arg("VpcId", vpc)
                .arg_bool("EnableDnsHostnames", true),
        );
        assert!(resp.is_ok());
    }

    #[test]
    fn bool_params_coerce_from_strings() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        let resp = emu.invoke(
            &ApiCall::new("ModifyVpcAttribute")
                .arg("VpcId", vpc)
                .arg_str("EnableDnsHostnames", "true"),
        );
        assert!(resp.is_ok(), "{:?}", resp.error);
    }

    #[test]
    fn invalid_param_value_rejected() {
        let mut emu = vpc_world();
        let vpc = create_vpc(&mut emu);
        let resp = emu.invoke(
            &ApiCall::new("ModifyVpcAttribute")
                .arg("VpcId", vpc)
                .arg_str("EnableDnsHostnames", "maybe"),
        );
        assert_eq!(resp.error_code(), Some(codes::INVALID_PARAMETER_VALUE));
    }

    #[test]
    fn failed_create_does_not_reuse_ids() {
        let mut emu = vpc_world();
        // This create fails (missing parent), burning an id.
        let _ = emu.invoke(
            &ApiCall::new("CreateSubnet")
                .arg_str("VpcId", "vpc-ghost")
                .arg_str("CidrBlock", "x"),
        );
        let vpc = create_vpc(&mut emu);
        let resp = emu.invoke(
            &ApiCall::new("CreateSubnet")
                .arg("VpcId", vpc)
                .arg_str("CidrBlock", "10.0.1.0/24"),
        );
        let id = resp.field("SubnetId").unwrap();
        assert_eq!(id, &Value::reference("subnet-000002"));
    }
}
