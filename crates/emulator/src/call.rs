//! API calls and responses: the wire-level interface DevOps programs see.

use crate::errors::ApiError;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An API invocation: name plus named arguments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiCall {
    /// API name (e.g. `CreateVpc`).
    pub api: String,
    /// Named arguments.
    pub args: BTreeMap<String, Value>,
}

impl ApiCall {
    /// Start building a call to the given API.
    pub fn new(api: impl Into<String>) -> Self {
        ApiCall {
            api: api.into(),
            args: BTreeMap::new(),
        }
    }

    /// Add an argument.
    pub fn arg(mut self, name: impl Into<String>, value: Value) -> Self {
        self.args.insert(name.into(), value);
        self
    }

    /// Add a string argument.
    pub fn arg_str(self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.arg(name, Value::Str(value.into()))
    }

    /// Add an integer argument.
    pub fn arg_int(self, name: impl Into<String>, value: i64) -> Self {
        self.arg(name, Value::Int(value))
    }

    /// Add a boolean argument.
    pub fn arg_bool(self, name: impl Into<String>, value: bool) -> Self {
        self.arg(name, Value::Bool(value))
    }
}

impl fmt::Display for ApiCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.api)?;
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", k, v)?;
        }
        write!(f, ")")
    }
}

/// The result of an API invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiResponse {
    /// Response fields emitted by the transition (plus the auto-emitted
    /// resource id on `create`).
    pub fields: BTreeMap<String, Value>,
    /// The error, if the call failed.
    pub error: Option<ApiError>,
}

impl ApiResponse {
    /// A successful response with the given fields.
    pub fn ok(fields: BTreeMap<String, Value>) -> Self {
        ApiResponse {
            fields,
            error: None,
        }
    }

    /// A failed response.
    pub fn err(error: ApiError) -> Self {
        ApiResponse {
            fields: BTreeMap::new(),
            error: Some(error),
        }
    }

    /// `true` if the call succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The error code, if the call failed.
    pub fn error_code(&self) -> Option<&str> {
        self.error.as_ref().map(|e| e.code.as_str())
    }

    /// Look up a response field.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.get(name)
    }

    /// Alignment comparison per §4.3: *"error codes need to be identically
    /// aligned with the cloud response, the messages are for developer
    /// consumption and can deviate."* Two responses align iff they agree on
    /// success/failure, successful responses expose the same fields with
    /// [`Value::loose_eq`] values (modulo generated ids, see
    /// [`Self::aligned_with_ids_masked`]), and failed responses carry the
    /// same error code.
    pub fn aligned_with(&self, other: &ApiResponse) -> bool {
        match (&self.error, &other.error) {
            (None, None) => {
                if self.fields.len() != other.fields.len() {
                    return false;
                }
                self.fields
                    .iter()
                    .all(|(k, v)| other.fields.get(k).is_some_and(|ov| v.loose_eq(ov)))
            }
            (Some(a), Some(b)) => a.code == b.code,
            _ => false,
        }
    }

    /// Like [`Self::aligned_with`], but treats any two [`Value::Ref`] (or
    /// ref-shaped string) values in the same field as equal: two independent
    /// emulators generate ids from independent counters, so concrete ids
    /// must be masked when diffing traces.
    pub fn aligned_with_ids_masked(&self, other: &ApiResponse) -> bool {
        match (&self.error, &other.error) {
            (None, None) => {
                if self.fields.len() != other.fields.len() {
                    return false;
                }
                self.fields.iter().all(|(k, v)| match other.fields.get(k) {
                    None => false,
                    Some(ov) => ids_masked_eq(v, ov),
                })
            }
            (Some(a), Some(b)) => a.code == b.code,
            _ => false,
        }
    }
}

fn looks_like_id(s: &str) -> bool {
    s.rsplit_once('-')
        .is_some_and(|(_, tail)| !tail.is_empty() && tail.chars().all(|c| c.is_ascii_hexdigit()))
}

fn ids_masked_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Ref(_), Value::Ref(_)) => true,
        (Value::Ref(_), Value::Str(s)) | (Value::Str(s), Value::Ref(_)) => looks_like_id(s),
        (Value::Str(x), Value::Str(y)) if looks_like_id(x) && looks_like_id(y) => true,
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| ids_masked_eq(x, y))
        }
        (x, y) => x.loose_eq(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::ApiError;

    fn ok(fields: &[(&str, Value)]) -> ApiResponse {
        ApiResponse::ok(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn aligned_same_fields() {
        let a = ok(&[("State", Value::str("available"))]);
        let b = ok(&[("State", Value::enum_val("available"))]);
        assert!(a.aligned_with(&b));
    }

    #[test]
    fn not_aligned_missing_field() {
        let a = ok(&[("State", Value::str("available"))]);
        let b = ok(&[]);
        assert!(!a.aligned_with(&b));
        assert!(!b.aligned_with(&a));
    }

    #[test]
    fn aligned_errors_compare_codes_only() {
        let a = ApiResponse::err(ApiError::new("DependencyViolation", "vpc busy"));
        let b = ApiResponse::err(ApiError::new("DependencyViolation", "different words"));
        let c = ApiResponse::err(ApiError::new("NotFound", "vpc busy"));
        assert!(a.aligned_with(&b));
        assert!(!a.aligned_with(&c));
    }

    #[test]
    fn success_vs_error_never_aligned() {
        let a = ok(&[]);
        let b = ApiResponse::err(ApiError::new("X", "m"));
        assert!(!a.aligned_with(&b));
    }

    #[test]
    fn ids_masked_alignment() {
        let a = ok(&[("VpcId", Value::reference("vpc-000001"))]);
        let b = ok(&[("VpcId", Value::reference("vpc-00000a"))]);
        assert!(!a.aligned_with(&b) || a.fields == b.fields);
        assert!(a.aligned_with_ids_masked(&b));
    }

    #[test]
    fn ids_masked_ref_vs_str() {
        let a = ok(&[("VpcId", Value::reference("vpc-000001"))]);
        let b = ok(&[("VpcId", Value::str("vpc-00000f"))]);
        assert!(a.aligned_with_ids_masked(&b));
        let c = ok(&[("VpcId", Value::str("not an id"))]);
        assert!(!a.aligned_with_ids_masked(&c));
    }

    #[test]
    fn call_display() {
        let c = ApiCall::new("CreateVpc").arg_str("CidrBlock", "10.0.0.0/16");
        assert_eq!(c.to_string(), "CreateVpc(CidrBlock=\"10.0.0.0/16\")");
    }
}
