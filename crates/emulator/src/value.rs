//! Runtime values manipulated by the interpreter.

use lce_spec::{Literal, SmName, StateType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque resource identifier, e.g. `vpc-000001`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub String);

impl ResourceId {
    /// Create an id from a raw string.
    pub fn new(id: impl Into<String>) -> Self {
        ResourceId(id.into())
    }
    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A runtime value: the dynamic counterpart of [`StateType`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// String.
    Str(String),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Enum variant (stored by name).
    Enum(String),
    /// Reference to a resource instance.
    Ref(ResourceId),
    /// Homogeneous list.
    List(Vec<Value>),
    /// Absent / null.
    Null,
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }
    /// Convenience enum constructor.
    pub fn enum_val(s: impl Into<String>) -> Value {
        Value::Enum(s.into())
    }
    /// Convenience reference constructor.
    pub fn reference(id: impl Into<String>) -> Value {
        Value::Ref(ResourceId::new(id))
    }

    /// `true` if this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The resource id, if this is a reference.
    pub fn as_ref_id(&self) -> Option<&ResourceId> {
        match self {
            Value::Ref(id) => Some(id),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The list payload, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Build the default runtime value for a state declaration: the declared
    /// default if present, `null` for nullable variables, otherwise a
    /// type-appropriate zero value.
    pub fn default_for(ty: &StateType, nullable: bool, default: &Option<Literal>) -> Value {
        if let Some(lit) = default {
            return Value::from_literal(lit);
        }
        if nullable {
            return Value::Null;
        }
        match ty {
            StateType::Str => Value::Str(String::new()),
            StateType::Int => Value::Int(0),
            StateType::Bool => Value::Bool(false),
            StateType::Enum(vs) => Value::Enum(vs.first().cloned().unwrap_or_default()),
            StateType::Ref(_) => Value::Null,
            StateType::List(_) => Value::List(Vec::new()),
        }
    }

    /// Convert a spec literal to a runtime value.
    pub fn from_literal(lit: &Literal) -> Value {
        match lit {
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Int(i) => Value::Int(*i),
            Literal::Bool(b) => Value::Bool(*b),
            Literal::EnumVal(v) => Value::Enum(v.clone()),
        }
    }

    /// Loose structural equality as used by the spec language: enum variants
    /// compare equal to strings with the same name (DevOps programs pass
    /// enum values as strings).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Enum(a), Value::Str(b)) | (Value::Str(a), Value::Enum(b)) => a == b,
            (Value::Ref(a), Value::Str(b)) | (Value::Str(b), Value::Ref(a)) => a.as_str() == b,
            (a, b) => a == b,
        }
    }

    /// Coerce an externally supplied value (e.g. from a DevOps program,
    /// where everything tends to be a string) to the given spec type.
    /// Returns `None` if the value cannot represent the type.
    pub fn coerce(&self, ty: &StateType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Str(s), StateType::Str) => Some(Value::Str(s.clone())),
            (Value::Str(s), StateType::Enum(vs)) if vs.contains(s) => Some(Value::Enum(s.clone())),
            (Value::Enum(v), StateType::Enum(vs)) if vs.contains(v) => Some(Value::Enum(v.clone())),
            (Value::Enum(v), StateType::Str) => Some(Value::Str(v.clone())),
            (Value::Str(s), StateType::Ref(_)) => Some(Value::Ref(ResourceId::new(s.clone()))),
            (Value::Ref(r), StateType::Ref(_)) => Some(Value::Ref(r.clone())),
            (Value::Ref(r), StateType::Str) => Some(Value::Str(r.as_str().to_string())),
            (Value::Int(i), StateType::Int) => Some(Value::Int(*i)),
            (Value::Bool(b), StateType::Bool) => Some(Value::Bool(*b)),
            (Value::Str(s), StateType::Bool) => match s.as_str() {
                "true" => Some(Value::Bool(true)),
                "false" => Some(Value::Bool(false)),
                _ => None,
            },
            (Value::Str(s), StateType::Int) => s.parse().ok().map(Value::Int),
            (Value::List(items), StateType::List(inner)) => {
                let coerced: Option<Vec<Value>> = items.iter().map(|v| v.coerce(inner)).collect();
                coerced.map(Value::List)
            }
            _ => None,
        }
    }

    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "str",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Enum(_) => "enum",
            Value::Ref(_) => "ref",
            Value::List(_) => "list",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{:?}", s),
            Value::Int(i) => write!(f, "{}", i),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Enum(v) => write!(f, "{}", v),
            Value::Ref(r) => write!(f, "{}", r),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "]")
            }
            Value::Null => write!(f, "null"),
        }
    }
}

/// Generate the id prefix for a resource type, e.g. `Vpc` → `vpc`,
/// `RouteTable` → `rtb` (initial letters of camel-case words for multi-word
/// names, mimicking real cloud id conventions).
pub fn id_prefix(name: &SmName) -> String {
    let words: Vec<String> = split_camel(name.as_str());
    if words.len() == 1 {
        words[0].to_lowercase()
    } else {
        words
            .iter()
            .map(|w| w.chars().next().unwrap_or('x').to_lowercase().to_string())
            .collect::<Vec<_>>()
            .join("")
    }
}

fn split_camel(s: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_uppercase() && !cur.is_empty() {
            words.push(cur.clone());
            cur.clear();
        }
        cur.push(c);
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coerce_str_to_enum() {
        let ty = StateType::Enum(vec!["On".into(), "Off".into()]);
        assert_eq!(Value::str("On").coerce(&ty), Some(Value::enum_val("On")));
        assert_eq!(Value::str("Meh").coerce(&ty), None);
    }

    #[test]
    fn coerce_str_to_ref() {
        let ty = StateType::Ref(SmName::new("Vpc"));
        assert_eq!(
            Value::str("vpc-1").coerce(&ty),
            Some(Value::reference("vpc-1"))
        );
    }

    #[test]
    fn coerce_str_to_bool_and_int() {
        assert_eq!(
            Value::str("true").coerce(&StateType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Value::str("17").coerce(&StateType::Int),
            Some(Value::Int(17))
        );
        assert_eq!(Value::str("x").coerce(&StateType::Int), None);
    }

    #[test]
    fn coerce_list_elementwise() {
        let ty = StateType::List(Box::new(StateType::Int));
        let v = Value::List(vec![Value::str("1"), Value::Int(2)]);
        assert_eq!(
            v.coerce(&ty),
            Some(Value::List(vec![Value::Int(1), Value::Int(2)]))
        );
    }

    #[test]
    fn loose_eq_enum_vs_str() {
        assert!(Value::enum_val("Running").loose_eq(&Value::str("Running")));
        assert!(!Value::enum_val("Running").loose_eq(&Value::str("Stopped")));
    }

    #[test]
    fn default_for_nullable_is_null() {
        assert_eq!(
            Value::default_for(&StateType::Str, true, &None),
            Value::Null
        );
    }

    #[test]
    fn default_for_enum_is_first_variant() {
        let ty = StateType::Enum(vec!["Pending".into(), "Ready".into()]);
        assert_eq!(
            Value::default_for(&ty, false, &None),
            Value::enum_val("Pending")
        );
    }

    #[test]
    fn default_honours_declared_literal() {
        assert_eq!(
            Value::default_for(&StateType::Int, false, &Some(Literal::Int(9))),
            Value::Int(9)
        );
    }

    #[test]
    fn id_prefix_single_word() {
        assert_eq!(id_prefix(&SmName::new("Vpc")), "vpc");
        assert_eq!(id_prefix(&SmName::new("Subnet")), "subnet");
    }

    #[test]
    fn id_prefix_multi_word() {
        assert_eq!(id_prefix(&SmName::new("RouteTable")), "rt");
        assert_eq!(id_prefix(&SmName::new("InternetGateway")), "ig");
        assert_eq!(id_prefix(&SmName::new("NetworkInterface")), "ni");
    }
}
