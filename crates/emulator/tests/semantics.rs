//! Deep semantics tests for the interpreter: atomicity, nesting,
//! hierarchy enforcement, describe purity, configuration switches,
//! expression corner cases.

use lce_emulator::{codes, ApiCall, Backend, Emulator, EmulatorConfig, Value};
use lce_spec::{parse_catalog, Catalog};

fn emulator(src: &str) -> Emulator {
    Emulator::new(Catalog::from_specs(parse_catalog(src).unwrap()))
}

fn emulator_with(src: &str, config: EmulatorConfig) -> Emulator {
    Emulator::with_config(Catalog::from_specs(parse_catalog(src).unwrap()), config)
}

#[test]
fn nested_call_effects_roll_back_on_later_assert() {
    // The callee's write must be undone when the caller fails afterwards.
    let mut emu = emulator(
        r#"
        sm Counter { service "s";
          states { n: int = 0; }
          transition CreateCounter() kind create { }
          transition DeleteCounter() kind destroy { }
          transition DescribeCounter() kind describe { emit(N, read(n)); }
          transition Bump() kind modify { write(n, read(n) + 1); }
        }
        sm Driver { service "s";
          states { target: ref(Counter)?; }
          transition CreateDriver() kind create { }
          transition DeleteDriver() kind destroy { }
          transition DescribeDriver() kind describe { emit(T, read(target)); }
          transition SetTarget(CounterId: ref(Counter)) kind modify {
            write(target, arg(CounterId));
          }
          transition BumpThenFail() kind modify {
            call(read(target), Bump, []);
            assert(false) else Boom "always fails after the call";
          }
        }
        "#,
    );
    let counter = emu
        .invoke(&ApiCall::new("CreateCounter"))
        .field("CounterId")
        .unwrap()
        .clone();
    let driver = emu
        .invoke(&ApiCall::new("CreateDriver"))
        .field("DriverId")
        .unwrap()
        .clone();
    assert!(emu
        .invoke(
            &ApiCall::new("SetTarget")
                .arg("DriverId", driver.clone())
                .arg("CounterId", counter.clone())
        )
        .is_ok());

    let resp = emu.invoke(&ApiCall::new("BumpThenFail").arg("DriverId", driver));
    assert_eq!(resp.error_code(), Some("Boom"));
    // The nested Bump was rolled back.
    let resp = emu.invoke(&ApiCall::new("DescribeCounter").arg("CounterId", counter));
    assert_eq!(resp.field("N"), Some(&Value::Int(0)));
}

#[test]
fn call_depth_limit_enforced() {
    // Two machines calling each other forever must hit the depth guard,
    // not the stack.
    let mut emu = emulator(
        r#"
        sm Ping { service "s";
          states { peer: ref(Pong)?; }
          transition CreatePing() kind create { }
          transition DeletePing() kind destroy { }
          transition DescribePing() kind describe { }
          transition SetPeer(PongId: ref(Pong)) kind modify { write(peer, arg(PongId)); }
          transition Echo() kind modify { call(read(peer), EchoBack, []); }
        }
        sm Pong { service "s";
          states { peer: ref(Ping)?; }
          transition CreatePong() kind create { }
          transition DeletePong() kind destroy { }
          transition DescribePong() kind describe { }
          transition SetPeerBack(PingId: ref(Ping)) kind modify { write(peer, arg(PingId)); }
          transition EchoBack() kind modify { call(read(peer), Echo, []); }
        }
        "#,
    );
    let ping = emu
        .invoke(&ApiCall::new("CreatePing"))
        .field("PingId")
        .unwrap()
        .clone();
    let pong = emu
        .invoke(&ApiCall::new("CreatePong"))
        .field("PongId")
        .unwrap()
        .clone();
    emu.invoke(
        &ApiCall::new("SetPeer")
            .arg("PingId", ping.clone())
            .arg("PongId", pong.clone()),
    );
    emu.invoke(
        &ApiCall::new("SetPeerBack")
            .arg("PongId", pong)
            .arg("PingId", ping.clone()),
    );
    let resp = emu.invoke(&ApiCall::new("Echo").arg("PingId", ping));
    assert_eq!(resp.error_code(), Some(codes::LIMIT_EXCEEDED));
}

#[test]
fn describe_side_effects_discarded_in_framework_mode_applied_in_d2c() {
    let src = r#"
        sm Leaky { service "s";
          states { n: int = 0; }
          transition CreateLeaky() kind create { }
          transition DeleteLeaky() kind destroy { }
          transition DescribeLeaky() kind describe {
            write(n, read(n) + 1);
            emit(N, read(n));
          }
        }
    "#;
    // Framework: the write is discarded (read-only describes).
    let mut framework = emulator(src);
    let id = framework
        .invoke(&ApiCall::new("CreateLeaky"))
        .field("LeakyId")
        .unwrap()
        .clone();
    for _ in 0..3 {
        let r = framework.invoke(&ApiCall::new("DescribeLeaky").arg("LeakyId", id.clone()));
        assert_eq!(
            r.field("N"),
            Some(&Value::Int(1)),
            "describe must not accumulate"
        );
    }

    // D2C configuration: the leak persists — the divergence the paper's
    // consistency checks exist to prevent.
    let mut d2c = emulator_with(src, EmulatorConfig::direct_to_code());
    let id = d2c
        .invoke(&ApiCall::new("CreateLeaky"))
        .field("LeakyId")
        .unwrap()
        .clone();
    let mut last = 0;
    for _ in 0..3 {
        let r = d2c.invoke(&ApiCall::new("DescribeLeaky").arg("LeakyId", id.clone()));
        last = r.field("N").unwrap().as_int().unwrap();
    }
    assert_eq!(last, 3, "d2c mode keeps describe mutations");
}

#[test]
fn hierarchy_off_allows_orphan_children_and_parent_deletion() {
    let src = r#"
        sm P { service "s";
          states { }
          transition CreateP() kind create { }
          transition DeleteP() kind destroy { }
          transition DescribeP() kind describe { }
        }
        sm C { service "s";
          parent P via p;
          states { p: ref(P); }
          transition CreateC(PId: ref(P)) kind create { write(p, arg(PId)); }
          transition DeleteC() kind destroy { }
          transition DescribeC() kind describe { }
        }
    "#;
    // Framework: deleting P with a live C is a DependencyViolation even
    // though the spec declares no explicit check.
    let mut strict = emulator(src);
    let p = strict
        .invoke(&ApiCall::new("CreateP"))
        .field("PId")
        .unwrap()
        .clone();
    assert!(strict
        .invoke(&ApiCall::new("CreateC").arg("PId", p.clone()))
        .is_ok());
    let resp = strict.invoke(&ApiCall::new("DeleteP").arg("PId", p));
    assert_eq!(resp.error_code(), Some(codes::DEPENDENCY_VIOLATION));

    // D2C: the framework guarantee is off; the delete silently succeeds.
    let mut lax = emulator_with(src, EmulatorConfig::direct_to_code());
    let p = lax
        .invoke(&ApiCall::new("CreateP"))
        .field("PId")
        .unwrap()
        .clone();
    assert!(lax
        .invoke(&ApiCall::new("CreateC").arg("PId", p.clone()))
        .is_ok());
    let resp = lax.invoke(&ApiCall::new("DeleteP").arg("PId", p));
    assert!(resp.is_ok(), "d2c mode misses the containment check");
}

#[test]
fn create_transitions_may_not_destroy() {
    // The framework rule from §1: "resource creation APIs should not be
    // allowed to delete their parent resources."
    let src = r#"
        sm Victim { service "s";
          states { }
          transition CreateVictim() kind create { }
          transition DeleteVictim() kind destroy { }
          transition DescribeVictim() kind describe { }
        }
        sm Aggressor { service "s";
          states { }
          transition CreateAggressor(VictimId: ref(Victim)) kind create {
            call(arg(VictimId), DeleteVictim, []);
          }
          transition DeleteAggressor() kind destroy { }
          transition DescribeAggressor() kind describe { }
        }
    "#;
    let mut strict = emulator(src);
    let v = strict
        .invoke(&ApiCall::new("CreateVictim"))
        .field("VictimId")
        .unwrap()
        .clone();
    let resp = strict.invoke(&ApiCall::new("CreateAggressor").arg("VictimId", v.clone()));
    assert_eq!(resp.error_code(), Some(codes::INTERNAL_FAILURE));
    // And the victim survives.
    assert!(strict
        .invoke(&ApiCall::new("DescribeVictim").arg("VictimId", v))
        .is_ok());
}

#[test]
fn short_circuit_avoids_evaluating_poisoned_operands() {
    // `||` must not evaluate a failing right operand when the left decides.
    let mut emu = emulator(
        r#"
        sm S { service "s";
          states { r: ref(S)?; ok: bool = true; }
          transition CreateS() kind create { }
          transition DeleteS() kind destroy { }
          transition DescribeS() kind describe { }
          transition Guarded() kind modify {
            assert(read(ok) || field(read(r), ok)) else Bad "m";
          }
        }
        "#,
    );
    let id = emu
        .invoke(&ApiCall::new("CreateS"))
        .field("SId")
        .unwrap()
        .clone();
    // read(r) is null; field() on it would fault — but `ok` short-circuits.
    let resp = emu.invoke(&ApiCall::new("Guarded").arg("SId", id));
    assert!(resp.is_ok(), "{:?}", resp.error);
}

#[test]
fn list_append_remove_and_membership() {
    let mut emu = emulator(
        r#"
        sm L { service "s";
          states { items: list(str); }
          transition CreateL() kind create { }
          transition DeleteL() kind destroy { }
          transition DescribeL() kind describe { emit(Items, read(items)); emit(Len, len(read(items))); }
          transition Add(X: str) kind modify {
            assert(!(arg(X) in read(items))) else Dup "m";
            write(items, append(read(items), arg(X)));
          }
          transition Del(X: str) kind modify {
            assert(arg(X) in read(items)) else Missing "m";
            write(items, remove(read(items), arg(X)));
          }
        }
        "#,
    );
    let id = emu
        .invoke(&ApiCall::new("CreateL"))
        .field("LId")
        .unwrap()
        .clone();
    let call = |emu: &mut Emulator, api: &str, x: &str| {
        emu.invoke(&ApiCall::new(api).arg("LId", id.clone()).arg_str("X", x))
    };
    assert!(call(&mut emu, "Add", "a").is_ok());
    assert!(call(&mut emu, "Add", "b").is_ok());
    assert_eq!(call(&mut emu, "Add", "a").error_code(), Some("Dup"));
    assert_eq!(call(&mut emu, "Del", "z").error_code(), Some("Missing"));
    assert!(call(&mut emu, "Del", "a").is_ok());
    let resp = emu.invoke(&ApiCall::new("DescribeL").arg("LId", id));
    assert_eq!(resp.field("Len"), Some(&Value::Int(1)));
    assert_eq!(
        resp.field("Items"),
        Some(&Value::List(vec![Value::str("b")]))
    );
}

#[test]
fn id_param_can_reference_wrong_resource_type() {
    // Passing a live id of the wrong type must be NotFound, not a type
    // confusion.
    let mut emu = emulator(
        r#"
        sm A { service "s"; states { }
          transition CreateA() kind create { }
          transition DeleteA() kind destroy { }
          transition DescribeA() kind describe { } }
        sm B { service "s"; states { }
          transition CreateB() kind create { }
          transition DeleteB() kind destroy { }
          transition DescribeB() kind describe { } }
        "#,
    );
    let a = emu
        .invoke(&ApiCall::new("CreateA"))
        .field("AId")
        .unwrap()
        .clone();
    let resp = emu.invoke(&ApiCall::new("DescribeB").arg("BId", a));
    assert_eq!(resp.error_code(), Some(codes::NOT_FOUND));
}

#[test]
fn lax_params_mode_ignores_unknown_arguments() {
    let src = r#"
        sm A { service "s"; states { }
          transition CreateA() kind create { }
          transition DeleteA() kind destroy { }
          transition DescribeA() kind describe { } }
    "#;
    let mut lax = emulator_with(src, EmulatorConfig::direct_to_code());
    let resp = lax.invoke(&ApiCall::new("CreateA").arg_str("Color", "red"));
    assert!(resp.is_ok(), "lax mode ignores unknown params");

    let mut strict = emulator(src);
    let resp = strict.invoke(&ApiCall::new("CreateA").arg_str("Color", "red"));
    assert_eq!(resp.error_code(), Some(codes::UNKNOWN_PARAMETER));
}

#[test]
fn emits_inside_branches_follow_the_taken_path() {
    let mut emu = emulator(
        r#"
        sm F { service "s";
          states { flag: bool = false; }
          transition CreateF() kind create { }
          transition DeleteF() kind destroy { }
          transition DescribeF() kind describe { }
          transition Check(On: bool) kind modify {
            write(flag, arg(On));
            if read(flag) {
              emit(Which, "then");
            } else {
              emit(Which, "else");
            }
          }
        }
        "#,
    );
    let id = emu
        .invoke(&ApiCall::new("CreateF"))
        .field("FId")
        .unwrap()
        .clone();
    let resp = emu.invoke(
        &ApiCall::new("Check")
            .arg("FId", id.clone())
            .arg_bool("On", true),
    );
    assert_eq!(resp.field("Which"), Some(&Value::str("then")));
    let resp = emu.invoke(&ApiCall::new("Check").arg("FId", id).arg_bool("On", false));
    assert_eq!(resp.field("Which"), Some(&Value::str("else")));
}

#[test]
fn store_round_trips_through_json() {
    // CLI state persistence depends on this.
    let mut emu = emulator(
        r#"
        sm A { service "s"; states { n: int = 0; }
          transition CreateA() kind create { write(n, 7); }
          transition DeleteA() kind destroy { }
          transition DescribeA() kind describe { emit(N, read(n)); } }
        "#,
    );
    let id = emu
        .invoke(&ApiCall::new("CreateA"))
        .field("AId")
        .unwrap()
        .clone();
    let json = serde_json::to_string(emu.store()).unwrap();
    let restored: lce_emulator::ResourceStore = serde_json::from_str(&json).unwrap();

    let mut emu2 = emulator(
        r#"
        sm A { service "s"; states { n: int = 0; }
          transition CreateA() kind create { write(n, 7); }
          transition DeleteA() kind destroy { }
          transition DescribeA() kind describe { emit(N, read(n)); } }
        "#,
    );
    emu2.set_store(restored);
    let resp = emu2.invoke(&ApiCall::new("DescribeA").arg("AId", id));
    assert_eq!(resp.field("N"), Some(&Value::Int(7)));
    // Counters survive too: the next create must not reuse the id.
    let id2 = emu2
        .invoke(&ApiCall::new("CreateA"))
        .field("AId")
        .unwrap()
        .clone();
    assert_eq!(id2, Value::reference("a-000002"));
}

#[test]
fn self_id_is_usable_in_emits_and_calls() {
    let mut emu = emulator(
        r#"
        sm S { service "s";
          states { me: ref(S)?; }
          transition CreateS() kind create { emit(Me, self_id()); }
          transition DeleteS() kind destroy { }
          transition DescribeS() kind describe { emit(Me, read(me)); }
          transition Selfie() kind modify { write(me, self_id()); }
        }
        "#,
    );
    let resp = emu.invoke(&ApiCall::new("CreateS"));
    assert_eq!(resp.field("Me"), resp.field("SId"));
    let id = resp.field("SId").unwrap().clone();
    assert!(emu
        .invoke(&ApiCall::new("Selfie").arg("SId", id.clone()))
        .is_ok());
    let resp = emu.invoke(&ApiCall::new("DescribeS").arg("SId", id.clone()));
    assert_eq!(resp.field("Me"), Some(&id));
}
