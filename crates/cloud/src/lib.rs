#![deny(missing_docs)]

//! # lce-cloud — the synthetic multi-cloud
//!
//! Everything the experiments treat as "the real cloud":
//!
//! * **Golden catalogs** — complete, hand-authored SM specifications for
//!   two fictional providers: [`nimbus`] (AWS-like: compute with 28 SMs,
//!   database with 7, firewall with 8 and exactly 45 public APIs, k8s with
//!   6, object storage with 7) and [`stratus`] (Azure-like: 8 compute SMs
//!   with provider-specific naming). Executed on the shared interpreter they form the
//!   authoritative behaviour oracle for alignment and accuracy experiments.
//! * **Documentation renderers** ([`docs`]) — Nimbus publishes one
//!   consolidated paginated PDF-style reference, Stratus scatters
//!   per-resource web pages; both are generated *from* the golden specs
//!   through fixed prose templates, optionally at reduced fidelity to model
//!   underspecified documentation (§6 of the paper).
//!
//! See `DESIGN.md` §1 for why a synthetic cloud preserves the paper's
//! experimental structure.

pub mod docs;
pub mod nimbus;
pub mod provider;
pub mod stratus;

pub use docs::{DocFidelity, DocPage};
pub use provider::{
    all_providers, nimbus as nimbus_provider, stratus as stratus_provider, DocStyle, Provider,
    RenderedDocs,
};
