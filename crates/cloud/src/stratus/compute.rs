//! Stratus compute service (Azure-like second provider).
//!
//! Eight state machines with provider-specific API naming and semantics.
//! Used by the multi-cloud experiment (E6): the pipeline must generalize to
//! a second provider whose documentation is structured entirely differently
//! (scattered per-resource web pages instead of one consolidated PDF).

/// DSL source for the Stratus compute service.
pub const SRC: &str = r#"
sm VirtualNetwork {
  service "compute";
  doc "An isolated network address space for Stratus resources.";
  id_param "VirtualNetworkId";
  states {
    address_space: str;
    location: str;
    provisioning_state: enum(Succeeded) = Succeeded;
    ddos_protection: bool = false;
    used_prefixes: list(str);
  }
  transition CreateVirtualNetwork(AddressSpace: str, Location: str, DdosProtection: bool?) kind create
  doc "Creates a virtual network with the given address space." {
    assert(arg(Location) in ["north", "south", "west-europe"]) else LocationNotAvailableForResourceType "the location is not available";
    assert(len(arg(AddressSpace)) > 0) else InvalidRequestFormat "AddressSpace must be non-empty";
    write(address_space, arg(AddressSpace));
    write(location, arg(Location));
    if !is_null(arg(DdosProtection)) {
      write(ddos_protection, arg(DdosProtection));
    }
    emit(ProvisioningState, read(provisioning_state));
  }
  transition DeleteVirtualNetwork() kind destroy
  doc "Deletes the virtual network. All subnets must be removed first." {
    assert(child_count(VnetSubnet) == 0) else InUseSubnetCannotBeDeleted "the virtual network still contains subnets";
  }
  transition GetVirtualNetwork() kind describe
  doc "Returns the properties of the virtual network." {
    emit(AddressSpace, read(address_space));
    emit(Location, read(location));
    emit(ProvisioningState, read(provisioning_state));
    emit(DdosProtection, read(ddos_protection));
  }
  transition UpdateVirtualNetworkTags(DdosProtection: bool) kind modify
  doc "Updates mutable properties of the virtual network." {
    write(ddos_protection, arg(DdosProtection));
  }
  transition ReservePrefix(Prefix: str) kind modify internal
  doc "Internal bookkeeping: records a subnet prefix allocation." {
    write(used_prefixes, append(read(used_prefixes), arg(Prefix)));
  }
  transition ReleasePrefix(Prefix: str) kind modify internal
  doc "Internal bookkeeping: releases a subnet prefix allocation." {
    write(used_prefixes, remove(read(used_prefixes), arg(Prefix)));
  }
}

sm VnetSubnet {
  service "compute";
  doc "An address range within a virtual network.";
  id_param "SubnetId";
  parent VirtualNetwork via vnet;
  states {
    vnet: ref(VirtualNetwork);
    address_prefix: str;
    prefix_length: int = 24;
    nsg: ref(NetworkSecurityGroup)?;
    provisioning_state: enum(Succeeded) = Succeeded;
  }
  transition CreateVnetSubnet(VirtualNetworkId: ref(VirtualNetwork), AddressPrefix: str, PrefixLength: int) kind create
  doc "Creates a subnet. The prefix must be unused and between /16 and /29." {
    assert(exists(arg(VirtualNetworkId))) else ResourceNotFound "the virtual network was not found";
    assert(arg(PrefixLength) >= 16 && arg(PrefixLength) <= 29) else NetcfgInvalidSubnet "the prefix length must be between 16 and 29";
    assert(!(arg(AddressPrefix) in field(arg(VirtualNetworkId), used_prefixes))) else NetcfgSubnetRangesOverlap "the prefix overlaps an existing subnet";
    call(arg(VirtualNetworkId), ReservePrefix, [arg(AddressPrefix)]);
    write(vnet, arg(VirtualNetworkId));
    write(address_prefix, arg(AddressPrefix));
    write(prefix_length, arg(PrefixLength));
  }
  transition DeleteVnetSubnet() kind destroy
  doc "Deletes the subnet. Attached interfaces must be removed first." {
    assert(child_count(NetworkInterfaceCard) == 0) else InUseSubnetCannotBeDeleted "the subnet still has attached network interfaces";
    call(read(vnet), ReleasePrefix, [read(address_prefix)]);
  }
  transition GetVnetSubnet() kind describe
  doc "Returns the properties of the subnet." {
    emit(VirtualNetworkId, read(vnet));
    emit(AddressPrefix, read(address_prefix));
    emit(ProvisioningState, read(provisioning_state));
    emit(NetworkSecurityGroupId, read(nsg));
    emit(PrefixLength, read(prefix_length));
  }
  transition AssociateNetworkSecurityGroup(NetworkSecurityGroupId: ref(NetworkSecurityGroup)) kind modify
  doc "Associates a network security group with the subnet." {
    assert(exists(arg(NetworkSecurityGroupId))) else ResourceNotFound "the network security group was not found";
    assert(is_null(read(nsg))) else ResourceAlreadyExists "a network security group is already associated";
    write(nsg, arg(NetworkSecurityGroupId));
  }
  transition DissociateNetworkSecurityGroup() kind modify
  doc "Removes the network security group association." {
    assert(!is_null(read(nsg))) else ResourceNotFound "no network security group is associated";
    write(nsg, null);
  }
}

sm NetworkSecurityGroup {
  service "compute";
  doc "A set of prioritized allow/deny traffic rules.";
  id_param "NetworkSecurityGroupId";
  states {
    location: str;
    rules: list(str);
    provisioning_state: enum(Succeeded) = Succeeded;
  }
  transition CreateNetworkSecurityGroup(Location: str) kind create
  doc "Creates an empty network security group." {
    assert(arg(Location) in ["north", "south", "west-europe"]) else LocationNotAvailableForResourceType "the location is not available";
    write(location, arg(Location));
  }
  transition DeleteNetworkSecurityGroup() kind destroy
  doc "Deletes the network security group." {
  }
  transition GetNetworkSecurityGroup() kind describe
  doc "Returns the rules of the group." {
    emit(Location, read(location));
    emit(Rules, read(rules));
  }
  transition CreateSecurityRule(Rule: str) kind modify
  doc "Adds a security rule. Duplicates are rejected." {
    assert(!(arg(Rule) in read(rules))) else SecurityRuleAlreadyExists "a rule with this definition already exists";
    write(rules, append(read(rules), arg(Rule)));
  }
  transition DeleteSecurityRule(Rule: str) kind modify
  doc "Removes a security rule." {
    assert(arg(Rule) in read(rules)) else ResourceNotFound "no rule with this definition exists";
    write(rules, remove(read(rules), arg(Rule)));
  }
}

sm PublicIpAddress {
  service "compute";
  doc "A static or dynamic public IP address.";
  id_param "PublicIpAddressId";
  states {
    location: str;
    allocation_method: enum(Static, Dynamic) = Dynamic;
    nic: ref(NetworkInterfaceCard)?;
    provisioning_state: enum(Succeeded) = Succeeded;
  }
  transition CreatePublicIpAddress(Location: str, AllocationMethod: enum(Static, Dynamic)?) kind create
  doc "Allocates a public IP address." {
    assert(arg(Location) in ["north", "south", "west-europe"]) else LocationNotAvailableForResourceType "the location is not available";
    write(location, arg(Location));
    if !is_null(arg(AllocationMethod)) {
      write(allocation_method, arg(AllocationMethod));
    }
  }
  transition DeletePublicIpAddress() kind destroy
  doc "Releases the address. It must not be associated with an interface." {
    assert(is_null(read(nic))) else PublicIPAddressCannotBeDeleted "the address is associated with a network interface";
  }
  transition GetPublicIpAddress() kind describe
  doc "Returns the properties of the address." {
    emit(Location, read(location));
    emit(AllocationMethod, read(allocation_method));
    emit(NetworkInterfaceId, read(nic));
  }
  transition AssociateWithNic(NetworkInterfaceCardId: ref(NetworkInterfaceCard)) kind modify
  doc "Associates the address with a network interface in the same location." {
    assert(is_null(read(nic))) else ResourceAlreadyExists "the address is already associated";
    assert(exists(arg(NetworkInterfaceCardId))) else ResourceNotFound "the network interface was not found";
    assert(field(arg(NetworkInterfaceCardId), location) == read(location)) else InvalidResourceReference "the interface is in a different location";
    call(arg(NetworkInterfaceCardId), BindPublicIp, [self_id()]);
    write(nic, arg(NetworkInterfaceCardId));
  }
  transition DissociateFromNic() kind modify
  doc "Removes the association with the network interface." {
    assert(!is_null(read(nic))) else ResourceNotFound "the address is not associated";
    call(read(nic), UnbindPublicIp, []);
    write(nic, null);
  }
}

sm NetworkInterfaceCard {
  service "compute";
  doc "A network interface connecting a virtual machine to a subnet.";
  id_param "NetworkInterfaceCardId";
  parent VnetSubnet via subnet;
  states {
    subnet: ref(VnetSubnet);
    location: str;
    public_ip: ref(PublicIpAddress)?;
    attached_vm: ref(VirtualMachine)?;
    accelerated_networking: bool = false;
  }
  transition CreateNetworkInterfaceCard(SubnetId: ref(VnetSubnet), Location: str) kind create
  doc "Creates a network interface in the subnet." {
    assert(exists(arg(SubnetId))) else ResourceNotFound "the subnet was not found";
    assert(arg(Location) in ["north", "south", "west-europe"]) else LocationNotAvailableForResourceType "the location is not available";
    write(subnet, arg(SubnetId));
    write(location, arg(Location));
  }
  transition DeleteNetworkInterfaceCard() kind destroy
  doc "Deletes the interface. It must be detached and hold no public IP." {
    assert(is_null(read(attached_vm))) else NicInUse "the interface is attached to a virtual machine";
    assert(is_null(read(public_ip))) else InUseNetworkInterfaceCannotBeDeleted "a public IP is still bound to the interface";
  }
  transition GetNetworkInterfaceCard() kind describe
  doc "Returns the properties of the interface." {
    emit(SubnetId, read(subnet));
    emit(Location, read(location));
    emit(PublicIpAddressId, read(public_ip));
    emit(AttachedVmId, read(attached_vm));
    emit(AcceleratedNetworking, read(accelerated_networking));
  }
  transition UpdateNetworkInterfaceCard(AcceleratedNetworking: bool) kind modify
  doc "Updates interface properties." {
    write(accelerated_networking, arg(AcceleratedNetworking));
  }
  transition BindPublicIp(Ip: ref(PublicIpAddress)) kind modify internal
  doc "Internal bookkeeping: records the bound public IP." {
    assert(is_null(read(public_ip))) else ResourceAlreadyExists "a public IP is already bound";
    write(public_ip, arg(Ip));
  }
  transition UnbindPublicIp() kind modify internal
  doc "Internal bookkeeping: clears the bound public IP." {
    write(public_ip, null);
  }
  transition BindVm(Vm: ref(VirtualMachine)) kind modify internal
  doc "Internal bookkeeping: records the attached virtual machine." {
    assert(is_null(read(attached_vm))) else NicInUse "the interface is already attached";
    write(attached_vm, arg(Vm));
  }
  transition UnbindVm() kind modify internal
  doc "Internal bookkeeping: clears the attached virtual machine." {
    write(attached_vm, null);
  }
}

sm VirtualMachine {
  service "compute";
  doc "A virtual machine with managed power state.";
  id_param "VirtualMachineId";
  states {
    nic: ref(NetworkInterfaceCard);
    size: str;
    power_state: enum(running, stopped, deallocated) = running;
    os_type: enum(Linux, Windows) = Linux;
    provisioning_state: enum(Succeeded) = Succeeded;
  }
  transition CreateVirtualMachine(NetworkInterfaceCardId: ref(NetworkInterfaceCard), Size: str, OsType: enum(Linux, Windows)?) kind create
  doc "Creates a virtual machine attached to an existing network interface." {
    assert(exists(arg(NetworkInterfaceCardId))) else ResourceNotFound "the network interface was not found";
    assert(arg(Size) in ["Standard_B1s", "Standard_B2s", "Standard_D2s", "Standard_D4s"]) else InvalidParameter "the VM size is not available";
    call(arg(NetworkInterfaceCardId), BindVm, [self_id()]);
    write(nic, arg(NetworkInterfaceCardId));
    write(size, arg(Size));
    if !is_null(arg(OsType)) {
      write(os_type, arg(OsType));
    }
    emit(PowerState, read(power_state));
  }
  transition DeleteVirtualMachine() kind destroy
  doc "Deletes the virtual machine, releasing its network interface." {
    call(read(nic), UnbindVm, []);
  }
  transition GetVirtualMachine() kind describe
  doc "Returns the properties of the virtual machine." {
    emit(Size, read(size));
    emit(PowerState, read(power_state));
    emit(OsType, read(os_type));
    emit(NetworkInterfaceCardId, read(nic));
  }
  transition StartVirtualMachine() kind modify
  doc "Starts a stopped or deallocated virtual machine." {
    assert(read(power_state) == stopped || read(power_state) == deallocated) else OperationNotAllowed "the virtual machine is not stopped";
    write(power_state, running);
    emit(PowerState, read(power_state));
  }
  transition PowerOffVirtualMachine() kind modify
  doc "Stops a running virtual machine (billing continues)." {
    assert(read(power_state) == running) else OperationNotAllowed "the virtual machine is not running";
    write(power_state, stopped);
    emit(PowerState, read(power_state));
  }
  transition DeallocateVirtualMachine() kind modify
  doc "Stops and deallocates the virtual machine (billing stops)." {
    assert(read(power_state) == running || read(power_state) == stopped) else OperationNotAllowed "the virtual machine cannot be deallocated from its current state";
    write(power_state, deallocated);
    emit(PowerState, read(power_state));
  }
  transition ResizeVirtualMachine(Size: str) kind modify
  doc "Changes the VM size. The machine must be deallocated." {
    assert(read(power_state) == deallocated) else OperationNotAllowed "the virtual machine must be deallocated before resizing";
    assert(arg(Size) in ["Standard_B1s", "Standard_B2s", "Standard_D2s", "Standard_D4s"]) else InvalidParameter "the VM size is not available";
    write(size, arg(Size));
  }
}

sm ManagedDisk {
  service "compute";
  doc "A managed block storage disk.";
  id_param "ManagedDiskId";
  states {
    size_gb: int;
    sku: enum(StandardHDD, StandardSSD, PremiumSSD) = StandardSSD;
    state: enum(Unattached, Attached) = Unattached;
    attached_vm: ref(VirtualMachine)?;
  }
  transition CreateManagedDisk(SizeGb: int, Sku: enum(StandardHDD, StandardSSD, PremiumSSD)?) kind create
  doc "Creates a managed disk." {
    assert(arg(SizeGb) >= 4 && arg(SizeGb) <= 32768) else InvalidParameter "the disk size must be between 4 and 32768 GiB";
    write(size_gb, arg(SizeGb));
    if !is_null(arg(Sku)) {
      write(sku, arg(Sku));
    }
  }
  transition DeleteManagedDisk() kind destroy
  doc "Deletes the disk. It must be unattached." {
    assert(read(state) == Unattached) else DiskInUse "the disk is attached to a virtual machine";
  }
  transition GetManagedDisk() kind describe
  doc "Returns the properties of the disk." {
    emit(SizeGb, read(size_gb));
    emit(Sku, read(sku));
    emit(State, read(state));
    emit(AttachedVmId, read(attached_vm));
  }
  transition AttachManagedDisk(VirtualMachineId: ref(VirtualMachine)) kind modify
  doc "Attaches the disk to a virtual machine." {
    assert(read(state) == Unattached) else DiskInUse "the disk is already attached";
    assert(exists(arg(VirtualMachineId))) else ResourceNotFound "the virtual machine was not found";
    write(attached_vm, arg(VirtualMachineId));
    write(state, Attached);
  }
  transition DetachManagedDisk() kind modify
  doc "Detaches the disk from its virtual machine." {
    assert(read(state) == Attached) else OperationNotAllowed "the disk is not attached";
    write(attached_vm, null);
    write(state, Unattached);
  }
  transition ResizeManagedDisk(SizeGb: int) kind modify
  doc "Grows the disk. It must be unattached and disks cannot shrink." {
    assert(read(state) == Unattached) else DiskInUse "the disk must be detached before resizing";
    assert(arg(SizeGb) >= read(size_gb)) else InvalidParameter "disks cannot shrink";
    assert(arg(SizeGb) <= 32768) else InvalidParameter "the disk size may not exceed 32768 GiB";
    write(size_gb, arg(SizeGb));
  }
}

sm LoadBalancer {
  service "compute";
  doc "A layer-4 load balancer distributing traffic to backend interfaces.";
  id_param "LoadBalancerId";
  states {
    location: str;
    sku: enum(Basic, Standard) = Standard;
    frontend_ip: ref(PublicIpAddress)?;
    backends: list(ref(NetworkInterfaceCard));
    rules: list(str);
  }
  transition CreateLoadBalancer(Location: str, Sku: enum(Basic, Standard)?, FrontendIpId: ref(PublicIpAddress)?) kind create
  doc "Creates a load balancer, optionally with a public frontend IP." {
    assert(arg(Location) in ["north", "south", "west-europe"]) else LocationNotAvailableForResourceType "the location is not available";
    write(location, arg(Location));
    if !is_null(arg(Sku)) {
      write(sku, arg(Sku));
    }
    if !is_null(arg(FrontendIpId)) {
      assert(exists(arg(FrontendIpId))) else ResourceNotFound "the frontend IP was not found";
      write(frontend_ip, arg(FrontendIpId));
    }
  }
  transition DeleteLoadBalancer() kind destroy
  doc "Deletes the load balancer. The backend pool must be empty." {
    assert(len(read(backends)) == 0) else InUseLoadBalancerCannotBeDeleted "the backend pool is not empty";
  }
  transition GetLoadBalancer() kind describe
  doc "Returns the properties of the load balancer." {
    emit(Location, read(location));
    emit(Sku, read(sku));
    emit(Backends, read(backends));
    emit(Rules, read(rules));
    emit(FrontendIpId, read(frontend_ip));
  }
  transition AddBackend(NetworkInterfaceCardId: ref(NetworkInterfaceCard)) kind modify
  doc "Adds an interface to the backend pool." {
    assert(exists(arg(NetworkInterfaceCardId))) else ResourceNotFound "the network interface was not found";
    assert(!(arg(NetworkInterfaceCardId) in read(backends))) else ResourceAlreadyExists "the interface is already in the backend pool";
    write(backends, append(read(backends), arg(NetworkInterfaceCardId)));
  }
  transition RemoveBackend(NetworkInterfaceCardId: ref(NetworkInterfaceCard)) kind modify
  doc "Removes an interface from the backend pool." {
    assert(arg(NetworkInterfaceCardId) in read(backends)) else ResourceNotFound "the interface is not in the backend pool";
    write(backends, remove(read(backends), arg(NetworkInterfaceCardId)));
  }
  transition AddLoadBalancingRule(Rule: str) kind modify
  doc "Adds a load-balancing rule." {
    assert(!(arg(Rule) in read(rules))) else ResourceAlreadyExists "a rule with this definition already exists";
    write(rules, append(read(rules), arg(Rule)));
  }
}
"#;
