//! The Stratus provider: an Azure-like synthetic cloud with one compute
//! service and scattered per-resource web-page documentation.

pub mod compute;

use lce_spec::{parse_catalog, Catalog, SmSpec};

/// Concatenated DSL source of the full Stratus catalog.
pub fn catalog_src() -> String {
    compute::SRC.to_string()
}

/// Parse the golden Stratus specs.
pub fn specs() -> Vec<SmSpec> {
    parse_catalog(&catalog_src()).expect("built-in Stratus catalog must parse")
}

/// The golden Stratus catalog.
pub fn catalog() -> Catalog {
    Catalog::from_specs(specs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::check_catalog;

    #[test]
    fn stratus_catalog_parses_and_checks() {
        let specs = specs();
        let errs = check_catalog(&specs);
        assert!(errs.is_empty(), "golden catalog has errors: {:#?}", errs);
    }

    #[test]
    fn stratus_has_8_sms() {
        assert_eq!(catalog().len(), 8);
    }

    #[test]
    fn stratus_apis_do_not_collide_with_nimbus() {
        let stratus = catalog();
        let nimbus = crate::nimbus::catalog();
        let nimbus_apis: std::collections::BTreeSet<&str> = nimbus
            .iter()
            .flat_map(|sm| sm.transitions.iter().map(|t| t.name.as_str()))
            .collect();
        for sm in stratus.iter() {
            for t in &sm.transitions {
                assert!(
                    !nimbus_apis.contains(t.name.as_str()),
                    "API {} exists in both providers",
                    t.name
                );
            }
        }
    }
}
