//! Nimbus network firewall service.
//!
//! Eight state machines and exactly **45 APIs** — mirroring the paper's
//! headline coverage example (§5: "Whereas Moto only covers 11% APIs for
//! Network Firewall […] our preliminary prototype captures all 45 API calls
//! through automated generation").

/// DSL source for the firewall service.
pub const SRC: &str = r#"
sm Firewall {
  service "firewall";
  doc "A stateful managed network firewall deployed into a VPC.";
  id_param "FirewallId";
  states {
    vpc: ref(Vpc);
    policy: ref(FirewallPolicy);
    subnets: list(ref(Subnet));
    description: str = "";
    delete_protection: bool = false;
    subnet_change_protection: bool = false;
    status: enum(ready) = ready;
  }
  transition CreateFirewall(VpcId: ref(Vpc), FirewallPolicyId: ref(FirewallPolicy), SubnetId: ref(Subnet), Description: str?) kind create
  doc "Creates a firewall in the VPC bound to a policy and an initial subnet." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    assert(exists(arg(FirewallPolicyId))) else NotFound "the specified firewall policy does not exist";
    assert(exists(arg(SubnetId))) else NotFound "the specified subnet does not exist";
    assert(field(arg(SubnetId), vpc) == arg(VpcId)) else InvalidParameterValue "the subnet belongs to a different VPC";
    call(arg(FirewallPolicyId), NotifyPolicyAttached, []);
    write(vpc, arg(VpcId));
    write(policy, arg(FirewallPolicyId));
    write(subnets, append(read(subnets), arg(SubnetId)));
    if !is_null(arg(Description)) {
      write(description, arg(Description));
    }
    emit(Status, read(status));
  }
  transition DeleteFirewall() kind destroy
  doc "Deletes the firewall. Delete protection must be disabled." {
    assert(!read(delete_protection)) else InvalidOperation "the firewall has delete protection enabled";
    assert(child_count(LoggingConfiguration) == 0) else DependencyViolation "a logging configuration still references the firewall";
    call(read(policy), NotifyPolicyDetached, []);
  }
  transition DescribeFirewall() kind describe
  doc "Returns the configuration of the firewall." {
    emit(VpcId, read(vpc));
    emit(FirewallPolicyId, read(policy));
    emit(Subnets, read(subnets));
    emit(Status, read(status));
    emit(DeleteProtection, read(delete_protection));
    emit(Description, read(description));
  }
  transition UpdateFirewallDescription(Description: str) kind modify
  doc "Updates the firewall description." {
    write(description, arg(Description));
  }
  transition UpdateFirewallDeleteProtection(DeleteProtection: bool) kind modify
  doc "Enables or disables delete protection." {
    write(delete_protection, arg(DeleteProtection));
  }
  transition UpdateSubnetChangeProtection(SubnetChangeProtection: bool) kind modify
  doc "Enables or disables subnet change protection." {
    write(subnet_change_protection, arg(SubnetChangeProtection));
  }
  transition AssociateSubnets(SubnetId: ref(Subnet)) kind modify
  doc "Adds a subnet to the firewall. Subnet change protection must be off." {
    assert(!read(subnet_change_protection)) else InvalidOperation "subnet change protection is enabled";
    assert(exists(arg(SubnetId))) else NotFound "the specified subnet does not exist";
    assert(field(arg(SubnetId), vpc) == read(vpc)) else InvalidParameterValue "the subnet belongs to a different VPC";
    assert(!(arg(SubnetId) in read(subnets))) else ResourceAlreadyAssociated "the subnet is already associated";
    write(subnets, append(read(subnets), arg(SubnetId)));
  }
  transition DisassociateSubnets(SubnetId: ref(Subnet)) kind modify
  doc "Removes a subnet from the firewall. At least one subnet must remain." {
    assert(!read(subnet_change_protection)) else InvalidOperation "subnet change protection is enabled";
    assert(arg(SubnetId) in read(subnets)) else AssociationNotFound "the subnet is not associated with the firewall";
    assert(len(read(subnets)) > 1) else InvalidOperation "a firewall must keep at least one subnet";
    write(subnets, remove(read(subnets), arg(SubnetId)));
  }
  transition AssociateFirewallPolicy(FirewallPolicyId: ref(FirewallPolicy)) kind modify
  doc "Replaces the policy bound to the firewall." {
    assert(exists(arg(FirewallPolicyId))) else NotFound "the specified firewall policy does not exist";
    call(read(policy), NotifyPolicyDetached, []);
    call(arg(FirewallPolicyId), NotifyPolicyAttached, []);
    write(policy, arg(FirewallPolicyId));
  }
  transition DescribeFirewallPolicyAssociation() kind describe
  doc "Returns the policy currently bound to the firewall." {
    emit(FirewallPolicyId, read(policy));
  }
}

sm FirewallPolicy {
  service "firewall";
  doc "An ordered collection of rule groups applied by firewalls.";
  id_param "FirewallPolicyId";
  states {
    name: str;
    rule_groups: list(ref(RuleGroup));
    stateless_default_action: enum(pass, drop, forward) = forward;
    change_protection: bool = false;
    attached_firewalls: int = 0;
    description: str = "";
  }
  transition CreateFirewallPolicy(PolicyName: str, StatelessDefaultAction: enum(pass, drop, forward)?) kind create
  doc "Creates a firewall policy." {
    assert(len(arg(PolicyName)) > 0) else MissingParameter "PolicyName must be non-empty";
    write(name, arg(PolicyName));
    if !is_null(arg(StatelessDefaultAction)) {
      write(stateless_default_action, arg(StatelessDefaultAction));
    }
  }
  transition DeleteFirewallPolicy() kind destroy
  doc "Deletes the policy. No firewall may still reference it." {
    assert(read(attached_firewalls) == 0) else InUseException "the policy is still attached to one or more firewalls";
  }
  transition DescribeFirewallPolicy() kind describe
  doc "Returns the configuration of the policy." {
    emit(Name, read(name));
    emit(RuleGroups, read(rule_groups));
    emit(StatelessDefaultAction, read(stateless_default_action));
  }
  transition UpdateFirewallPolicy(AddRuleGroupId: ref(RuleGroup)?, RemoveRuleGroupId: ref(RuleGroup)?) kind modify
  doc "Adds or removes rule groups. Change protection must be off." {
    assert(!read(change_protection)) else InvalidOperation "policy change protection is enabled";
    if !is_null(arg(AddRuleGroupId)) {
      assert(exists(arg(AddRuleGroupId))) else NotFound "the specified rule group does not exist";
      assert(!(arg(AddRuleGroupId) in read(rule_groups))) else ResourceAlreadyAssociated "the rule group is already in the policy";
      call(arg(AddRuleGroupId), NotifyGroupReferenced, []);
      write(rule_groups, append(read(rule_groups), arg(AddRuleGroupId)));
    }
    if !is_null(arg(RemoveRuleGroupId)) {
      assert(arg(RemoveRuleGroupId) in read(rule_groups)) else AssociationNotFound "the rule group is not in the policy";
      call(arg(RemoveRuleGroupId), NotifyGroupDereferenced, []);
      write(rule_groups, remove(read(rule_groups), arg(RemoveRuleGroupId)));
    }
  }
  transition UpdateFirewallPolicyChangeProtection(ChangeProtection: bool) kind modify
  doc "Enables or disables policy change protection." {
    write(change_protection, arg(ChangeProtection));
  }
  transition DescribeFirewallPolicyMetadata() kind describe
  doc "Returns summary metadata about the policy." {
    emit(Name, read(name));
    emit(Description, read(description));
    emit(AttachedFirewalls, read(attached_firewalls));
  }
  transition NotifyPolicyAttached() kind modify internal
  doc "Internal bookkeeping: a firewall started referencing this policy." {
    write(attached_firewalls, read(attached_firewalls) + 1);
  }
  transition NotifyPolicyDetached() kind modify internal
  doc "Internal bookkeeping: a firewall stopped referencing this policy." {
    write(attached_firewalls, read(attached_firewalls) - 1);
  }
}

sm RuleGroup {
  service "firewall";
  doc "A reusable set of stateless or stateful traffic rules.";
  id_param "RuleGroupId";
  states {
    name: str;
    rule_type: enum(STATELESS, STATEFUL) = STATEFUL;
    capacity: int;
    rules: list(str);
    change_protection: bool = false;
    references: int = 0;
  }
  transition CreateRuleGroup(GroupName: str, Type: enum(STATELESS, STATEFUL), Capacity: int) kind create
  doc "Creates a rule group with a fixed rule capacity." {
    assert(len(arg(GroupName)) > 0) else MissingParameter "GroupName must be non-empty";
    assert(arg(Capacity) >= 1 && arg(Capacity) <= 30000) else InvalidParameterValue "capacity must be between 1 and 30000";
    write(name, arg(GroupName));
    write(rule_type, arg(Type));
    write(capacity, arg(Capacity));
  }
  transition DeleteRuleGroup() kind destroy
  doc "Deletes the rule group. No policy may still reference it." {
    assert(read(references) == 0) else InUseException "the rule group is still referenced by one or more policies";
  }
  transition DescribeRuleGroup() kind describe
  doc "Returns the rules of the group." {
    emit(Name, read(name));
    emit(Type, read(rule_type));
    emit(Capacity, read(capacity));
    emit(Rules, read(rules));
  }
  transition UpdateRuleGroup(AddRule: str?, RemoveRule: str?) kind modify
  doc "Adds or removes rules within the capacity limit." {
    assert(!read(change_protection)) else InvalidOperation "rule group change protection is enabled";
    if !is_null(arg(AddRule)) {
      assert(len(read(rules)) < read(capacity)) else LimitExceededException "the rule group is at capacity";
      assert(!(arg(AddRule) in read(rules))) else InvalidParameterValue "the rule already exists";
      write(rules, append(read(rules), arg(AddRule)));
    }
    if !is_null(arg(RemoveRule)) {
      assert(arg(RemoveRule) in read(rules)) else InvalidParameterValue "the rule does not exist";
      write(rules, remove(read(rules), arg(RemoveRule)));
    }
  }
  transition UpdateRuleGroupChangeProtection(ChangeProtection: bool) kind modify
  doc "Enables or disables rule group change protection." {
    write(change_protection, arg(ChangeProtection));
  }
  transition AnalyzeRuleGroup() kind describe
  doc "Returns an analysis summary of the rule group." {
    emit(RuleCount, len(read(rules)));
    emit(CapacityRemaining, read(capacity) - len(read(rules)));
  }
  transition DescribeRuleGroupMetadata() kind describe
  doc "Returns summary metadata about the rule group." {
    emit(Name, read(name));
    emit(Type, read(rule_type));
    emit(References, read(references));
  }
  transition NotifyGroupReferenced() kind modify internal
  doc "Internal bookkeeping: a policy started referencing this group." {
    write(references, read(references) + 1);
  }
  transition NotifyGroupDereferenced() kind modify internal
  doc "Internal bookkeeping: a policy stopped referencing this group." {
    write(references, read(references) - 1);
  }
}

sm LoggingConfiguration {
  service "firewall";
  doc "Destination configuration for firewall flow and alert logs.";
  id_param "LoggingConfigurationId";
  parent Firewall via firewall;
  states {
    firewall: ref(Firewall);
    log_type: enum(FLOW, ALERT, TLS) = FLOW;
    destination: str;
  }
  transition CreateLoggingConfiguration(FirewallId: ref(Firewall), LogType: enum(FLOW, ALERT, TLS), LogDestination: str) kind create
  doc "Creates a logging configuration for the firewall." {
    assert(exists(arg(FirewallId))) else NotFound "the specified firewall does not exist";
    assert(len(arg(LogDestination)) > 0) else MissingParameter "LogDestination must be non-empty";
    write(firewall, arg(FirewallId));
    write(log_type, arg(LogType));
    write(destination, arg(LogDestination));
  }
  transition DeleteLoggingConfiguration() kind destroy
  doc "Deletes the logging configuration." {
  }
  transition DescribeLoggingConfiguration() kind describe
  doc "Returns the logging configuration." {
    emit(FirewallId, read(firewall));
    emit(LogType, read(log_type));
    emit(LogDestination, read(destination));
  }
  transition UpdateLoggingConfiguration(LogDestination: str) kind modify
  doc "Changes the log destination." {
    assert(len(arg(LogDestination)) > 0) else MissingParameter "LogDestination must be non-empty";
    write(destination, arg(LogDestination));
  }
}

sm TlsInspectionConfiguration {
  service "firewall";
  doc "TLS decryption settings referenced by firewall policies.";
  id_param "TlsInspectionConfigurationId";
  states {
    name: str;
    certificate: str;
    scope: enum(INGRESS, EGRESS, BOTH) = BOTH;
    revoked_action: enum(PASS, DROP, REJECT) = REJECT;
  }
  transition CreateTlsInspectionConfiguration(Name: str, Certificate: str, Scope: enum(INGRESS, EGRESS, BOTH)?) kind create
  doc "Creates a TLS inspection configuration with a server certificate." {
    assert(len(arg(Name)) > 0) else MissingParameter "Name must be non-empty";
    assert(len(arg(Certificate)) > 0) else MissingParameter "Certificate must be non-empty";
    write(name, arg(Name));
    write(certificate, arg(Certificate));
    if !is_null(arg(Scope)) {
      write(scope, arg(Scope));
    }
  }
  transition DeleteTlsInspectionConfiguration() kind destroy
  doc "Deletes the TLS inspection configuration." {
  }
  transition DescribeTlsInspectionConfiguration() kind describe
  doc "Returns the TLS inspection configuration." {
    emit(Name, read(name));
    emit(Scope, read(scope));
    emit(RevokedAction, read(revoked_action));
  }
  transition UpdateTlsInspectionConfiguration(Certificate: str?, RevokedAction: enum(PASS, DROP, REJECT)?) kind modify
  doc "Updates the certificate or the action on revoked certificates." {
    if !is_null(arg(Certificate)) {
      assert(len(arg(Certificate)) > 0) else MissingParameter "Certificate must be non-empty";
      write(certificate, arg(Certificate));
    }
    if !is_null(arg(RevokedAction)) {
      write(revoked_action, arg(RevokedAction));
    }
  }
  transition DescribeTlsCertificates() kind describe
  doc "Returns the certificates in use." {
    emit(Certificate, read(certificate));
  }
}

sm ResourcePolicy {
  service "firewall";
  doc "A sharing policy attached to a firewall policy or rule group.";
  id_param "ResourcePolicyId";
  states {
    target: str;
    policy_document: str;
    scope: enum(ACCOUNT, ORGANIZATION) = ACCOUNT;
  }
  transition PutResourcePolicy(TargetArn: str, PolicyDocument: str) kind create
  doc "Attaches a sharing policy to the target resource." {
    assert(len(arg(TargetArn)) > 0) else MissingParameter "TargetArn must be non-empty";
    assert(len(arg(PolicyDocument)) > 0) else MissingParameter "PolicyDocument must be non-empty";
    write(target, arg(TargetArn));
    write(policy_document, arg(PolicyDocument));
  }
  transition DeleteResourcePolicy() kind destroy
  doc "Deletes the sharing policy." {
  }
  transition DescribeResourcePolicy() kind describe
  doc "Returns the sharing policy document." {
    emit(TargetArn, read(target));
    emit(PolicyDocument, read(policy_document));
    emit(Scope, read(scope));
  }
  transition UpdateResourcePolicyScope(Scope: enum(ACCOUNT, ORGANIZATION)) kind modify
  doc "Changes the sharing scope of the policy." {
    write(scope, arg(Scope));
  }
}

sm VpcEndpointAssociation {
  service "firewall";
  doc "An association exposing the firewall through a VPC endpoint.";
  id_param "VpcEndpointAssociationId";
  states {
    firewall: ref(Firewall);
    endpoint: ref(VpcEndpoint);
    status: enum(active) = active;
  }
  transition CreateVpcEndpointAssociation(FirewallId: ref(Firewall), VpcEndpointId: ref(VpcEndpoint)) kind create
  doc "Associates a VPC endpoint with the firewall." {
    assert(exists(arg(FirewallId))) else NotFound "the specified firewall does not exist";
    assert(exists(arg(VpcEndpointId))) else NotFound "the specified VPC endpoint does not exist";
    write(firewall, arg(FirewallId));
    write(endpoint, arg(VpcEndpointId));
    emit(Status, read(status));
  }
  transition DeleteVpcEndpointAssociation() kind destroy
  doc "Deletes the association." {
  }
  transition DescribeVpcEndpointAssociation() kind describe
  doc "Returns the attributes of the association." {
    emit(FirewallId, read(firewall));
    emit(VpcEndpointId, read(endpoint));
    emit(Status, read(status));
  }
  transition DescribeVpcEndpointAssociationStatus() kind describe
  doc "Returns only the status of the association." {
    emit(Status, read(status));
  }
}

sm FlowOperation {
  service "firewall";
  doc "A capture or flush operation over the firewall's flow table.";
  id_param "FlowOperationId";
  states {
    firewall: ref(Firewall);
    operation_type: enum(CAPTURE) = CAPTURE;
    status: enum(RUNNING, COMPLETED) = RUNNING;
    captured_flows: int = 0;
  }
  transition StartFlowCapture(FirewallId: ref(Firewall)) kind create
  doc "Starts a flow capture operation on the firewall." {
    assert(exists(arg(FirewallId))) else NotFound "the specified firewall does not exist";
    write(firewall, arg(FirewallId));
    emit(Status, read(status));
  }
  transition DeleteFlowOperation() kind destroy
  doc "Discards a finished flow operation record." {
    assert(read(status) != RUNNING) else InvalidOperation "the flow operation is still running";
  }
  transition DescribeFlowOperation() kind describe
  doc "Returns the status of the flow operation." {
    emit(FirewallId, read(firewall));
    emit(OperationType, read(operation_type));
    emit(Status, read(status));
  }
  transition CompleteFlowOperation(CapturedFlows: int) kind modify
  doc "Marks the operation as completed with the number of captured flows." {
    assert(read(status) == RUNNING) else InvalidOperation "the flow operation already finished";
    assert(arg(CapturedFlows) >= 0) else InvalidParameterValue "captured flow count cannot be negative";
    write(status, COMPLETED);
    write(captured_flows, arg(CapturedFlows));
  }
  transition DescribeFlowOperationResults() kind describe
  doc "Returns the results of a completed flow operation." {
    emit(Status, read(status));
    emit(CapturedFlows, read(captured_flows));
  }
}
"#;
