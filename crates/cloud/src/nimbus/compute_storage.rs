//! Nimbus compute service, part 2: storage and launch resources.
//!
//! Six state machines: KeyPair, Volume, Snapshot, Image, LaunchTemplate,
//! PlacementGroup.

/// DSL source for storage and launch resources.
pub const SRC: &str = r#"
sm KeyPair {
  service "compute";
  doc "An SSH key pair used to log in to instances.";
  id_param "KeyPairId";
  states {
    key_name: str;
    fingerprint: str = "00:00";
    key_type: enum(rsa, ed25519) = rsa;
  }
  transition CreateKeyPair(KeyName: str, KeyType: enum(rsa, ed25519)?) kind create
  doc "Creates a key pair with the given name." {
    assert(len(arg(KeyName)) > 0) else MissingParameter "KeyName must be non-empty";
    write(key_name, arg(KeyName));
    if !is_null(arg(KeyType)) {
      write(key_type, arg(KeyType));
    }
    emit(KeyName, read(key_name));
    emit(KeyFingerprint, read(fingerprint));
  }
  transition DeleteKeyPair() kind destroy
  doc "Deletes the key pair." {
  }
  transition DescribeKeyPair() kind describe
  doc "Returns the attributes of the key pair." {
    emit(KeyName, read(key_name));
    emit(KeyType, read(key_type));
    emit(KeyFingerprint, read(fingerprint));
  }
  transition ImportKeyPairMaterial(PublicKeyMaterial: str) kind modify
  doc "Replaces the public key material, refreshing the fingerprint." {
    assert(len(arg(PublicKeyMaterial)) > 0) else InvalidParameterValue "public key material must be non-empty";
    write(fingerprint, arg(PublicKeyMaterial));
  }
}

sm Volume {
  service "compute";
  doc "A block storage volume attachable to one instance.";
  id_param "VolumeId";
  states {
    size_gb: int;
    zone: str;
    volume_type: enum(gp2, gp3, io1) = gp3;
    state: enum(available, in_use) = available;
    attached_instance: ref(Instance)?;
    encrypted: bool = false;
  }
  transition CreateVolume(Size: int, Zone: str, VolumeType: enum(gp2, gp3, io1)?, Encrypted: bool?) kind create
  doc "Creates a volume of the given size in an availability zone." {
    assert(arg(Size) >= 1) else InvalidParameterValue "volume size must be at least 1 GiB";
    assert(arg(Size) <= 16384) else InvalidParameterValue "volume size may not exceed 16384 GiB";
    assert(arg(Zone) in ["us-east-1a", "us-east-1b", "us-west-1a", "us-west-1b"]) else InvalidParameterValue "unknown availability zone";
    write(size_gb, arg(Size));
    write(zone, arg(Zone));
    if !is_null(arg(VolumeType)) {
      write(volume_type, arg(VolumeType));
    }
    if !is_null(arg(Encrypted)) {
      write(encrypted, arg(Encrypted));
    }
    emit(State, read(state));
  }
  transition DeleteVolume() kind destroy
  doc "Deletes the volume. It must not be attached to an instance." {
    assert(read(state) == available) else VolumeInUse "the volume is attached to an instance";
  }
  transition DescribeVolume() kind describe
  doc "Returns the attributes of the volume." {
    emit(Size, read(size_gb));
    emit(Zone, read(zone));
    emit(State, read(state));
    emit(VolumeType, read(volume_type));
    emit(Encrypted, read(encrypted));
    emit(AttachedInstanceId, read(attached_instance));
  }
  transition AttachVolume(InstanceId: ref(Instance)) kind modify
  doc "Attaches the volume to an instance in the same zone." {
    assert(read(state) == available) else VolumeInUse "the volume is already attached";
    assert(exists(arg(InstanceId))) else NotFound "the specified instance does not exist";
    assert(field(field(arg(InstanceId), subnet), zone) == read(zone)) else InvalidParameterValue "the instance is in a different availability zone";
    write(attached_instance, arg(InstanceId));
    write(state, in_use);
  }
  transition DetachVolume() kind modify
  doc "Detaches the volume from its instance." {
    assert(read(state) == in_use) else IncorrectState "the volume is not attached";
    write(attached_instance, null);
    write(state, available);
  }
  transition ModifyVolume(Size: int?, VolumeType: enum(gp2, gp3, io1)?) kind modify
  doc "Modifies the volume. The size can only grow." {
    if !is_null(arg(Size)) {
      assert(arg(Size) >= read(size_gb)) else InvalidParameterValue "volume size can only be increased";
      assert(arg(Size) <= 16384) else InvalidParameterValue "volume size may not exceed 16384 GiB";
      write(size_gb, arg(Size));
    }
    if !is_null(arg(VolumeType)) {
      write(volume_type, arg(VolumeType));
    }
  }
}

sm Snapshot {
  service "compute";
  doc "A point-in-time copy of a volume.";
  id_param "SnapshotId";
  states {
    volume: ref(Volume);
    size_gb: int;
    state: enum(completed) = completed;
    description: str = "";
  }
  transition CreateSnapshot(VolumeId: ref(Volume), Description: str?) kind create
  doc "Creates a snapshot of the volume." {
    assert(exists(arg(VolumeId))) else NotFound "the specified volume does not exist";
    write(volume, arg(VolumeId));
    write(size_gb, field(arg(VolumeId), size_gb));
    if !is_null(arg(Description)) {
      write(description, arg(Description));
    }
    emit(State, read(state));
  }
  transition DeleteSnapshot() kind destroy
  doc "Deletes the snapshot." {
  }
  transition DescribeSnapshot() kind describe
  doc "Returns the attributes of the snapshot." {
    emit(VolumeId, read(volume));
    emit(Size, read(size_gb));
    emit(State, read(state));
    emit(Description, read(description));
  }
  transition ModifySnapshotAttribute(Description: str) kind modify
  doc "Updates the snapshot description." {
    write(description, arg(Description));
  }
}

sm Image {
  service "compute";
  doc "A machine image from which instances are launched.";
  id_param "ImageId";
  states {
    name: str;
    state: enum(available, deregistered) = available;
    architecture: enum(x86_64, arm64) = x86_64;
    public: bool = false;
    source_instance: ref(Instance)?;
  }
  transition RegisterImage(Name: str, Architecture: enum(x86_64, arm64)?) kind create
  doc "Registers a new machine image." {
    assert(len(arg(Name)) > 0) else MissingParameter "image name must be non-empty";
    write(name, arg(Name));
    if !is_null(arg(Architecture)) {
      write(architecture, arg(Architecture));
    }
    emit(State, read(state));
  }
  transition DeregisterImage() kind destroy
  doc "Deregisters the image. Instances already launched from it are unaffected." {
    assert(read(state) == available) else IncorrectState "the image is not available";
    write(state, deregistered);
  }
  transition DescribeImage() kind describe
  doc "Returns the attributes of the image." {
    emit(Name, read(name));
    emit(State, read(state));
    emit(Architecture, read(architecture));
    emit(Public, read(public));
  }
  transition ModifyImageAttribute(Public: bool?) kind modify
  doc "Modifies the launch permissions of the image." {
    if !is_null(arg(Public)) {
      write(public, arg(Public));
    }
  }
}

sm LaunchTemplate {
  service "compute";
  doc "A reusable template of instance launch parameters.";
  id_param "LaunchTemplateId";
  states {
    name: str;
    instance_type: str = "t3.micro";
    image: ref(Image)?;
    version: int = 1;
    default_version: int = 1;
  }
  transition CreateLaunchTemplate(LaunchTemplateName: str, InstanceType: str?, ImageId: ref(Image)?) kind create
  doc "Creates a launch template at version 1." {
    assert(len(arg(LaunchTemplateName)) > 0) else MissingParameter "template name must be non-empty";
    write(name, arg(LaunchTemplateName));
    if !is_null(arg(InstanceType)) {
      assert(arg(InstanceType) in ["t2.micro", "t3.micro", "t3.small", "m5.large", "m5.xlarge", "c5.large"]) else InvalidParameterValue "unsupported instance type";
      write(instance_type, arg(InstanceType));
    }
    if !is_null(arg(ImageId)) {
      assert(exists(arg(ImageId))) else NotFound "the specified image does not exist";
      write(image, arg(ImageId));
    }
    emit(Version, read(version));
  }
  transition DeleteLaunchTemplate() kind destroy
  doc "Deletes the launch template and all its versions." {
  }
  transition DescribeLaunchTemplate() kind describe
  doc "Returns the attributes of the launch template." {
    emit(Name, read(name));
    emit(InstanceType, read(instance_type));
    emit(Version, read(version));
    emit(DefaultVersion, read(default_version));
    emit(ImageId, read(image));
  }
  transition CreateLaunchTemplateVersion(InstanceType: str) kind modify
  doc "Adds a new version of the template with an updated instance type." {
    assert(arg(InstanceType) in ["t2.micro", "t3.micro", "t3.small", "m5.large", "m5.xlarge", "c5.large"]) else InvalidParameterValue "unsupported instance type";
    write(instance_type, arg(InstanceType));
    write(version, read(version) + 1);
    emit(Version, read(version));
  }
  transition ModifyLaunchTemplate(DefaultVersion: int) kind modify
  doc "Sets the default version of the template." {
    assert(arg(DefaultVersion) >= 1) else InvalidParameterValue "version numbers start at 1";
    assert(arg(DefaultVersion) <= read(version)) else InvalidLaunchTemplateVersion "the specified version does not exist";
    write(default_version, arg(DefaultVersion));
  }
}

sm PlacementGroup {
  service "compute";
  doc "A logical grouping controlling instance placement strategy.";
  id_param "PlacementGroupId";
  states {
    name: str;
    strategy: enum(cluster, spread, partition) = cluster;
    partition_count: int = 0;
  }
  transition CreatePlacementGroup(GroupName: str, Strategy: enum(cluster, spread, partition)?, PartitionCount: int?) kind create
  doc "Creates a placement group. Partition count applies only to partition strategy." {
    assert(len(arg(GroupName)) > 0) else MissingParameter "group name must be non-empty";
    write(name, arg(GroupName));
    if !is_null(arg(Strategy)) {
      write(strategy, arg(Strategy));
    }
    if !is_null(arg(PartitionCount)) {
      assert(read(strategy) == partition) else InvalidParameterValue "partition count applies only to partition placement groups";
      assert(arg(PartitionCount) >= 1 && arg(PartitionCount) <= 7) else InvalidParameterValue "partition count must be between 1 and 7";
      write(partition_count, arg(PartitionCount));
    }
  }
  transition DeletePlacementGroup() kind destroy
  doc "Deletes the placement group." {
  }
  transition DescribePlacementGroup() kind describe
  doc "Returns the attributes of the placement group." {
    emit(Name, read(name));
    emit(Strategy, read(strategy));
    emit(PartitionCount, read(partition_count));
  }
}
"#;
