//! Nimbus compute service, part 3: extended networking resources.
//!
//! Twelve state machines: VpcPeering, DhcpOptions, NetworkAcl, FlowLog,
//! TransitGateway, TransitGatewayAttachment, CustomerGateway, VpnGateway,
//! VpnConnection, EgressOnlyInternetGateway, PrefixList, CarrierGateway.

/// DSL source for extended networking resources.
pub const SRC: &str = r#"
sm VpcPeering {
  service "compute";
  doc "A peering connection between two VPCs.";
  id_param "VpcPeeringConnectionId";
  states {
    requester: ref(Vpc);
    accepter: ref(Vpc);
    status: enum(pending_acceptance, active, rejected) = pending_acceptance;
  }
  transition CreateVpcPeeringConnection(RequesterVpcId: ref(Vpc), AccepterVpcId: ref(Vpc)) kind create
  doc "Requests a peering connection between two distinct VPCs." {
    assert(exists(arg(RequesterVpcId))) else NotFound "the requester VPC does not exist";
    assert(exists(arg(AccepterVpcId))) else NotFound "the accepter VPC does not exist";
    assert(arg(RequesterVpcId) != arg(AccepterVpcId)) else InvalidParameterValue "a VPC cannot peer with itself";
    assert(field(arg(RequesterVpcId), cidr) != field(arg(AccepterVpcId), cidr)) else InvalidParameterValue "peered VPCs may not have overlapping CIDR blocks";
    write(requester, arg(RequesterVpcId));
    write(accepter, arg(AccepterVpcId));
    emit(Status, read(status));
  }
  transition DeleteVpcPeeringConnection() kind destroy
  doc "Deletes the peering connection in any state." {
  }
  transition DescribeVpcPeeringConnection() kind describe
  doc "Returns the attributes of the peering connection." {
    emit(RequesterVpcId, read(requester));
    emit(AccepterVpcId, read(accepter));
    emit(Status, read(status));
  }
  transition AcceptVpcPeeringConnection() kind modify
  doc "Accepts a pending peering request." {
    assert(read(status) == pending_acceptance) else InvalidStateTransition "the peering connection is not pending acceptance";
    write(status, active);
    emit(Status, read(status));
  }
  transition RejectVpcPeeringConnection() kind modify
  doc "Rejects a pending peering request." {
    assert(read(status) == pending_acceptance) else InvalidStateTransition "the peering connection is not pending acceptance";
    write(status, rejected);
    emit(Status, read(status));
  }
}

sm DhcpOptions {
  service "compute";
  doc "A set of DHCP configuration options for VPCs.";
  id_param "DhcpOptionsId";
  states {
    domain_name: str = "internal";
    ntp_servers: list(str);
    associated_vpcs: list(ref(Vpc));
  }
  transition CreateDhcpOptions(DomainName: str?, NtpServer: str?) kind create
  doc "Creates a DHCP options set." {
    if !is_null(arg(DomainName)) {
      write(domain_name, arg(DomainName));
    }
    if !is_null(arg(NtpServer)) {
      write(ntp_servers, append(read(ntp_servers), arg(NtpServer)));
    }
  }
  transition DeleteDhcpOptions() kind destroy
  doc "Deletes the options set. It must not be associated with any VPC." {
    assert(len(read(associated_vpcs)) == 0) else DependencyViolation "the options set is still associated with one or more VPCs";
  }
  transition DescribeDhcpOptions() kind describe
  doc "Returns the attributes of the options set." {
    emit(DomainName, read(domain_name));
    emit(NtpServers, read(ntp_servers));
  }
  transition AssociateDhcpOptions(VpcId: ref(Vpc)) kind modify
  doc "Associates the options set with a VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    assert(!(arg(VpcId) in read(associated_vpcs))) else ResourceAlreadyAssociated "the VPC is already associated with this options set";
    write(associated_vpcs, append(read(associated_vpcs), arg(VpcId)));
  }
  transition DisassociateDhcpOptions(VpcId: ref(Vpc)) kind modify
  doc "Removes the association with a VPC." {
    assert(arg(VpcId) in read(associated_vpcs)) else AssociationNotFound "the VPC is not associated with this options set";
    write(associated_vpcs, remove(read(associated_vpcs), arg(VpcId)));
  }
}

sm NetworkAcl {
  service "compute";
  doc "A stateless network access control list for subnets of a VPC.";
  id_param "NetworkAclId";
  parent Vpc via vpc;
  states {
    vpc: ref(Vpc);
    entries: list(str);
    is_default: bool = false;
  }
  transition CreateNetworkAcl(VpcId: ref(Vpc)) kind create
  doc "Creates a network ACL in the VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    write(vpc, arg(VpcId));
  }
  transition DeleteNetworkAcl() kind destroy
  doc "Deletes the ACL. The default ACL cannot be deleted." {
    assert(!read(is_default)) else InvalidParameterValue "the default network ACL cannot be deleted";
  }
  transition DescribeNetworkAcl() kind describe
  doc "Returns the entries of the ACL." {
    emit(VpcId, read(vpc));
    emit(Entries, read(entries));
  }
  transition CreateNetworkAclEntry(Rule: str) kind modify
  doc "Adds an entry. Duplicate rules are rejected." {
    assert(!(arg(Rule) in read(entries))) else NetworkAclEntryAlreadyExists "an entry with this rule already exists";
    write(entries, append(read(entries), arg(Rule)));
  }
  transition DeleteNetworkAclEntry(Rule: str) kind modify
  doc "Removes an entry." {
    assert(arg(Rule) in read(entries)) else NetworkAclEntryNotFound "no entry with this rule exists";
    write(entries, remove(read(entries), arg(Rule)));
  }
}

sm FlowLog {
  service "compute";
  doc "Captures IP traffic metadata for a VPC.";
  id_param "FlowLogId";
  states {
    vpc: ref(Vpc);
    traffic_type: enum(ACCEPT, REJECT, ALL) = ALL;
    destination: str;
    active: bool = true;
  }
  transition CreateFlowLog(VpcId: ref(Vpc), TrafficType: enum(ACCEPT, REJECT, ALL)?, LogDestination: str) kind create
  doc "Creates a flow log for the VPC writing to the given destination." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    assert(len(arg(LogDestination)) > 0) else MissingParameter "LogDestination must be non-empty";
    write(vpc, arg(VpcId));
    write(destination, arg(LogDestination));
    if !is_null(arg(TrafficType)) {
      write(traffic_type, arg(TrafficType));
    }
  }
  transition DeleteFlowLog() kind destroy
  doc "Deletes the flow log." {
  }
  transition DescribeFlowLog() kind describe
  doc "Returns the attributes of the flow log." {
    emit(VpcId, read(vpc));
    emit(TrafficType, read(traffic_type));
    emit(LogDestination, read(destination));
    emit(Active, read(active));
  }
}

sm TransitGateway {
  service "compute";
  doc "A regional hub interconnecting VPCs and on-premises networks.";
  id_param "TransitGatewayId";
  states {
    state: enum(available) = available;
    amazon_side_asn: int = 64512;
    dns_support: bool = true;
    description: str = "";
  }
  transition CreateTransitGateway(Description: str?, AmazonSideAsn: int?) kind create
  doc "Creates a transit gateway. The ASN must fall in the private range." {
    if !is_null(arg(AmazonSideAsn)) {
      assert(arg(AmazonSideAsn) >= 64512 && arg(AmazonSideAsn) <= 65534) else InvalidParameterValue "the ASN must be in the private range 64512-65534";
      write(amazon_side_asn, arg(AmazonSideAsn));
    }
    if !is_null(arg(Description)) {
      write(description, arg(Description));
    }
    emit(State, read(state));
  }
  transition DeleteTransitGateway() kind destroy
  doc "Deletes the transit gateway. All attachments must be deleted first." {
    assert(child_count(TransitGatewayAttachment) == 0) else DependencyViolation "the transit gateway still has attachments";
  }
  transition DescribeTransitGateway() kind describe
  doc "Returns the attributes of the transit gateway." {
    emit(State, read(state));
    emit(AmazonSideAsn, read(amazon_side_asn));
    emit(DnsSupport, read(dns_support));
    emit(Description, read(description));
  }
  transition ModifyTransitGateway(DnsSupport: bool?, Description: str?) kind modify
  doc "Modifies transit gateway options." {
    if !is_null(arg(DnsSupport)) {
      write(dns_support, arg(DnsSupport));
    }
    if !is_null(arg(Description)) {
      write(description, arg(Description));
    }
  }
}

sm TransitGatewayAttachment {
  service "compute";
  doc "An attachment binding a VPC to a transit gateway.";
  id_param "TransitGatewayAttachmentId";
  parent TransitGateway via tgw;
  states {
    tgw: ref(TransitGateway);
    vpc: ref(Vpc);
    state: enum(available) = available;
  }
  transition CreateTransitGatewayAttachment(TransitGatewayId: ref(TransitGateway), VpcId: ref(Vpc)) kind create
  doc "Attaches a VPC to the transit gateway." {
    assert(exists(arg(TransitGatewayId))) else NotFound "the specified transit gateway does not exist";
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    write(tgw, arg(TransitGatewayId));
    write(vpc, arg(VpcId));
    emit(State, read(state));
  }
  transition DeleteTransitGatewayAttachment() kind destroy
  doc "Deletes the attachment." {
  }
  transition DescribeTransitGatewayAttachment() kind describe
  doc "Returns the attributes of the attachment." {
    emit(TransitGatewayId, read(tgw));
    emit(VpcId, read(vpc));
    emit(State, read(state));
  }
}

sm CustomerGateway {
  service "compute";
  doc "Metadata about an on-premises VPN endpoint.";
  id_param "CustomerGatewayId";
  states {
    bgp_asn: int;
    ip_address: str;
    state: enum(available) = available;
  }
  transition CreateCustomerGateway(BgpAsn: int, IpAddress: str) kind create
  doc "Registers an on-premises gateway by ASN and public IP." {
    assert(arg(BgpAsn) >= 1 && arg(BgpAsn) <= 65534) else InvalidParameterValue "the ASN must be between 1 and 65534";
    assert(len(arg(IpAddress)) > 0) else MissingParameter "IpAddress must be non-empty";
    write(bgp_asn, arg(BgpAsn));
    write(ip_address, arg(IpAddress));
    emit(State, read(state));
  }
  transition DeleteCustomerGateway() kind destroy
  doc "Deletes the customer gateway." {
  }
  transition DescribeCustomerGateway() kind describe
  doc "Returns the attributes of the customer gateway." {
    emit(BgpAsn, read(bgp_asn));
    emit(IpAddress, read(ip_address));
    emit(State, read(state));
  }
}

sm VpnGateway {
  service "compute";
  doc "The provider-side endpoint of a VPN connection.";
  id_param "VpnGatewayId";
  states {
    vpc: ref(Vpc)?;
    state: enum(available) = available;
  }
  transition CreateVpnGateway() kind create
  doc "Creates a VPN gateway in the detached state." {
    emit(State, read(state));
  }
  transition DeleteVpnGateway() kind destroy
  doc "Deletes the VPN gateway. It must be detached from any VPC." {
    assert(is_null(read(vpc))) else DependencyViolation "the VPN gateway is still attached to a VPC";
  }
  transition DescribeVpnGateway() kind describe
  doc "Returns the attachment state of the VPN gateway." {
    emit(State, read(state));
    emit(VpcId, read(vpc));
  }
  transition AttachVpnGateway(VpcId: ref(Vpc)) kind modify
  doc "Attaches the VPN gateway to a VPC." {
    assert(is_null(read(vpc))) else ResourceAlreadyAssociated "the VPN gateway is already attached";
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    call(arg(VpcId), NotifyGatewayAttached, []);
    write(vpc, arg(VpcId));
  }
  transition DetachVpnGateway() kind modify
  doc "Detaches the VPN gateway from its VPC." {
    assert(!is_null(read(vpc))) else GatewayNotAttached "the VPN gateway is not attached";
    call(read(vpc), NotifyGatewayDetached, []);
    write(vpc, null);
  }
}

sm VpnConnection {
  service "compute";
  doc "A site-to-site VPN between a VPN gateway and a customer gateway.";
  id_param "VpnConnectionId";
  states {
    vpn_gateway: ref(VpnGateway);
    customer_gateway: ref(CustomerGateway);
    state: enum(available) = available;
    static_routes_only: bool = false;
  }
  transition CreateVpnConnection(VpnGatewayId: ref(VpnGateway), CustomerGatewayId: ref(CustomerGateway), StaticRoutesOnly: bool?) kind create
  doc "Creates a VPN connection between the two gateways." {
    assert(exists(arg(VpnGatewayId))) else NotFound "the specified VPN gateway does not exist";
    assert(exists(arg(CustomerGatewayId))) else NotFound "the specified customer gateway does not exist";
    write(vpn_gateway, arg(VpnGatewayId));
    write(customer_gateway, arg(CustomerGatewayId));
    if !is_null(arg(StaticRoutesOnly)) {
      write(static_routes_only, arg(StaticRoutesOnly));
    }
    emit(State, read(state));
  }
  transition DeleteVpnConnection() kind destroy
  doc "Deletes the VPN connection." {
  }
  transition DescribeVpnConnection() kind describe
  doc "Returns the attributes of the VPN connection." {
    emit(VpnGatewayId, read(vpn_gateway));
    emit(CustomerGatewayId, read(customer_gateway));
    emit(State, read(state));
    emit(StaticRoutesOnly, read(static_routes_only));
  }
  transition ModifyVpnConnectionOptions(StaticRoutesOnly: bool) kind modify
  doc "Modifies the routing options of the VPN connection." {
    write(static_routes_only, arg(StaticRoutesOnly));
  }
}

sm EgressOnlyInternetGateway {
  service "compute";
  doc "An IPv6-only gateway permitting outbound traffic from a VPC.";
  id_param "EgressOnlyInternetGatewayId";
  states {
    vpc: ref(Vpc);
    state: enum(attached) = attached;
  }
  transition CreateEgressOnlyInternetGateway(VpcId: ref(Vpc)) kind create
  doc "Creates an egress-only gateway attached to the VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    call(arg(VpcId), NotifyGatewayAttached, []);
    write(vpc, arg(VpcId));
  }
  transition DeleteEgressOnlyInternetGateway() kind destroy
  doc "Deletes the gateway, detaching it from its VPC." {
    call(read(vpc), NotifyGatewayDetached, []);
  }
  transition DescribeEgressOnlyInternetGateway() kind describe
  doc "Returns the attributes of the gateway." {
    emit(VpcId, read(vpc));
    emit(State, read(state));
  }
}

sm PrefixList {
  service "compute";
  doc "A named set of CIDR blocks referenced by security rules and routes.";
  id_param "PrefixListId";
  states {
    name: str;
    entries: list(str);
    max_entries: int;
    version: int = 1;
  }
  transition CreateManagedPrefixList(PrefixListName: str, MaxEntries: int) kind create
  doc "Creates a managed prefix list with a fixed capacity." {
    assert(len(arg(PrefixListName)) > 0) else MissingParameter "PrefixListName must be non-empty";
    assert(arg(MaxEntries) >= 1 && arg(MaxEntries) <= 1000) else InvalidParameterValue "MaxEntries must be between 1 and 1000";
    write(name, arg(PrefixListName));
    write(max_entries, arg(MaxEntries));
    emit(Version, read(version));
  }
  transition DeleteManagedPrefixList() kind destroy
  doc "Deletes the prefix list." {
  }
  transition DescribeManagedPrefixList() kind describe
  doc "Returns the entries of the prefix list." {
    emit(Name, read(name));
    emit(Entries, read(entries));
    emit(MaxEntries, read(max_entries));
    emit(Version, read(version));
  }
  transition ModifyManagedPrefixList(AddEntry: str?, RemoveEntry: str?) kind modify
  doc "Adds or removes entries, bumping the version. Capacity is enforced." {
    if !is_null(arg(AddEntry)) {
      assert(len(read(entries)) < read(max_entries)) else PrefixListCapacityExceeded "the prefix list is full";
      assert(!(arg(AddEntry) in read(entries))) else InvalidParameterValue "the entry already exists";
      write(entries, append(read(entries), arg(AddEntry)));
    }
    if !is_null(arg(RemoveEntry)) {
      assert(arg(RemoveEntry) in read(entries)) else InvalidParameterValue "the entry does not exist";
      write(entries, remove(read(entries), arg(RemoveEntry)));
    }
    write(version, read(version) + 1);
  }
}

sm CarrierGateway {
  service "compute";
  doc "A gateway routing traffic between a VPC and a carrier network.";
  id_param "CarrierGatewayId";
  states {
    vpc: ref(Vpc);
    state: enum(available) = available;
  }
  transition CreateCarrierGateway(VpcId: ref(Vpc)) kind create
  doc "Creates a carrier gateway for the VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    call(arg(VpcId), NotifyGatewayAttached, []);
    write(vpc, arg(VpcId));
    emit(State, read(state));
  }
  transition DeleteCarrierGateway() kind destroy
  doc "Deletes the carrier gateway." {
    call(read(vpc), NotifyGatewayDetached, []);
  }
  transition DescribeCarrierGateway() kind describe
  doc "Returns the attributes of the carrier gateway." {
    emit(VpcId, read(vpc));
    emit(State, read(state));
  }
}
"#;
