//! Nimbus database service (DynamoDB-like).
//!
//! Seven state machines, matching the paper's generated spec size for the
//! database service ("7 for DynamoDB").

/// DSL source for the database service.
pub const SRC: &str = r#"
sm Table {
  service "database";
  doc "A serverless key-value table with configurable throughput.";
  id_param "TableName";
  states {
    name: str;
    status: enum(ACTIVE) = ACTIVE;
    billing_mode: enum(PROVISIONED, PAY_PER_REQUEST) = PROVISIONED;
    read_capacity: int = 5;
    write_capacity: int = 5;
    ttl_enabled: bool = false;
    ttl_attribute: str?;
    deletion_protection: bool = false;
    stream_enabled: bool = false;
    tags: list(str);
  }
  transition CreateTable(Name: str, BillingMode: enum(PROVISIONED, PAY_PER_REQUEST)?, ReadCapacity: int?, WriteCapacity: int?) kind create
  doc "Creates a table. Provisioned tables need positive read and write capacity." {
    assert(len(arg(Name)) >= 3) else ValidationException "table names must be at least 3 characters";
    write(name, arg(Name));
    if !is_null(arg(BillingMode)) {
      write(billing_mode, arg(BillingMode));
    }
    if read(billing_mode) == PROVISIONED {
      if !is_null(arg(ReadCapacity)) {
        assert(arg(ReadCapacity) >= 1) else ValidationException "read capacity must be at least 1";
        write(read_capacity, arg(ReadCapacity));
      }
      if !is_null(arg(WriteCapacity)) {
        assert(arg(WriteCapacity) >= 1) else ValidationException "write capacity must be at least 1";
        write(write_capacity, arg(WriteCapacity));
      }
    } else {
      write(read_capacity, 0);
      write(write_capacity, 0);
    }
    emit(TableStatus, read(status));
  }
  transition DeleteTable() kind destroy
  doc "Deletes the table. Deletion protection must be disabled and no indexes may remain." {
    assert(!read(deletion_protection)) else ValidationException "the table has deletion protection enabled";
    assert(child_count(GlobalSecondaryIndex) == 0) else ResourceInUseException "the table still has global secondary indexes";
  }
  transition DescribeTable() kind describe
  doc "Returns the configuration of the table." {
    emit(Name, read(name));
    emit(TableStatus, read(status));
    emit(BillingMode, read(billing_mode));
    emit(ReadCapacity, read(read_capacity));
    emit(WriteCapacity, read(write_capacity));
    emit(DeletionProtection, read(deletion_protection));
    emit(TtlEnabled, read(ttl_enabled));
    emit(TtlAttribute, read(ttl_attribute));
  }
  transition UpdateTable(BillingMode: enum(PROVISIONED, PAY_PER_REQUEST)?, ReadCapacity: int?, WriteCapacity: int?, DeletionProtection: bool?) kind modify
  doc "Updates billing mode, capacity or deletion protection." {
    if !is_null(arg(BillingMode)) {
      write(billing_mode, arg(BillingMode));
    }
    if !is_null(arg(ReadCapacity)) {
      assert(read(billing_mode) == PROVISIONED) else ValidationException "capacity applies only to provisioned tables";
      assert(arg(ReadCapacity) >= 1) else ValidationException "read capacity must be at least 1";
      write(read_capacity, arg(ReadCapacity));
    }
    if !is_null(arg(WriteCapacity)) {
      assert(read(billing_mode) == PROVISIONED) else ValidationException "capacity applies only to provisioned tables";
      assert(arg(WriteCapacity) >= 1) else ValidationException "write capacity must be at least 1";
      write(write_capacity, arg(WriteCapacity));
    }
    if !is_null(arg(DeletionProtection)) {
      write(deletion_protection, arg(DeletionProtection));
    }
  }
  transition UpdateTimeToLive(Enabled: bool, AttributeName: str?) kind modify
  doc "Enables or disables TTL expiry. Enabling requires an attribute name." {
    if arg(Enabled) {
      assert(!is_null(arg(AttributeName))) else ValidationException "enabling TTL requires an attribute name";
      write(ttl_attribute, arg(AttributeName));
    } else {
      write(ttl_attribute, null);
    }
    write(ttl_enabled, arg(Enabled));
  }
  transition UpdateStreamSpecification(StreamEnabled: bool) kind modify
  doc "Enables or disables the change stream. Re-enabling an enabled stream is rejected." {
    assert(read(stream_enabled) != arg(StreamEnabled)) else ValidationException "the stream is already in the requested state";
    write(stream_enabled, arg(StreamEnabled));
  }
  transition TagTable(Tag: str) kind modify
  doc "Adds a tag to the table." {
    assert(!(arg(Tag) in read(tags))) else ValidationException "the tag already exists";
    write(tags, append(read(tags), arg(Tag)));
  }
  transition UntagTable(Tag: str) kind modify
  doc "Removes a tag from the table." {
    assert(arg(Tag) in read(tags)) else ValidationException "the tag does not exist";
    write(tags, remove(read(tags), arg(Tag)));
  }
}

sm GlobalSecondaryIndex {
  service "database";
  doc "An alternate-key index maintained alongside a table.";
  id_param "IndexName";
  parent Table via table;
  states {
    table: ref(Table);
    name: str;
    key_attribute: str;
    status: enum(ACTIVE) = ACTIVE;
    projection: enum(ALL, KEYS_ONLY, INCLUDE) = ALL;
  }
  transition CreateGlobalSecondaryIndex(TableName: ref(Table), IndexName2: str, KeyAttribute: str) kind create
  doc "Creates a global secondary index on the table." {
    assert(exists(arg(TableName))) else ResourceNotFoundException "the specified table does not exist";
    assert(len(arg(IndexName2)) >= 3) else ValidationException "index names must be at least 3 characters";
    write(table, arg(TableName));
    write(name, arg(IndexName2));
    write(key_attribute, arg(KeyAttribute));
    emit(IndexStatus, read(status));
  }
  transition DeleteGlobalSecondaryIndex() kind destroy
  doc "Deletes the index." {
  }
  transition DescribeGlobalSecondaryIndex() kind describe
  doc "Returns the configuration of the index." {
    emit(TableName, read(table));
    emit(Name, read(name));
    emit(KeyAttribute, read(key_attribute));
    emit(IndexStatus, read(status));
    emit(Projection, read(projection));
  }
  transition UpdateGlobalSecondaryIndex(Projection: enum(ALL, KEYS_ONLY, INCLUDE)) kind modify
  doc "Changes the attribute projection of the index." {
    write(projection, arg(Projection));
  }
}

sm Backup {
  service "database";
  doc "An on-demand backup of a table.";
  id_param "BackupId";
  states {
    table: ref(Table);
    name: str;
    status: enum(AVAILABLE, DELETED) = AVAILABLE;
    size_bytes: int = 0;
  }
  transition CreateBackup(TableName: ref(Table), BackupName: str) kind create
  doc "Creates a backup of the table." {
    assert(exists(arg(TableName))) else ResourceNotFoundException "the specified table does not exist";
    assert(len(arg(BackupName)) > 0) else ValidationException "BackupName must be non-empty";
    write(table, arg(TableName));
    write(name, arg(BackupName));
    emit(BackupStatus, read(status));
  }
  transition DeleteBackup() kind destroy
  doc "Deletes the backup." {
    assert(read(status) == AVAILABLE) else BackupInUseException "the backup is not available";
    write(status, DELETED);
  }
  transition DescribeBackup() kind describe
  doc "Returns the attributes of the backup." {
    emit(TableName, read(table));
    emit(Name, read(name));
    emit(BackupStatus, read(status));
    emit(SizeBytes, read(size_bytes));
  }
}

sm GlobalTable {
  service "database";
  doc "A table replicated across multiple regions.";
  id_param "GlobalTableName";
  states {
    source_table: ref(Table);
    replica_regions: list(str);
    status: enum(ACTIVE) = ACTIVE;
  }
  transition CreateGlobalTable(SourceTableName: ref(Table), ReplicaRegion: str) kind create
  doc "Promotes a table to a global table with an initial replica region." {
    assert(exists(arg(SourceTableName))) else ResourceNotFoundException "the specified table does not exist";
    assert(arg(ReplicaRegion) in ["us-east", "us-west", "eu-central"]) else ValidationException "unknown replica region";
    write(source_table, arg(SourceTableName));
    write(replica_regions, append(read(replica_regions), arg(ReplicaRegion)));
    emit(GlobalTableStatus, read(status));
  }
  transition DeleteGlobalTable() kind destroy
  doc "Deletes the global table configuration. Replicas must be removed first." {
    assert(len(read(replica_regions)) == 0) else ValidationException "all replica regions must be removed before deletion";
  }
  transition DescribeGlobalTable() kind describe
  doc "Returns the replica configuration." {
    emit(SourceTableName, read(source_table));
    emit(ReplicaRegions, read(replica_regions));
    emit(GlobalTableStatus, read(status));
  }
  transition UpdateGlobalTable(AddRegion: str?, RemoveRegion: str?) kind modify
  doc "Adds or removes replica regions." {
    if !is_null(arg(AddRegion)) {
      assert(arg(AddRegion) in ["us-east", "us-west", "eu-central"]) else ValidationException "unknown replica region";
      assert(!(arg(AddRegion) in read(replica_regions))) else ValidationException "the region is already a replica";
      write(replica_regions, append(read(replica_regions), arg(AddRegion)));
    }
    if !is_null(arg(RemoveRegion)) {
      assert(arg(RemoveRegion) in read(replica_regions)) else ValidationException "the region is not a replica";
      write(replica_regions, remove(read(replica_regions), arg(RemoveRegion)));
    }
  }
}

sm ExportJob {
  service "database";
  doc "An asynchronous export of table data to object storage.";
  id_param "ExportJobId";
  states {
    table: ref(Table);
    destination: str;
    format: enum(JSON, ION, PARQUET) = JSON;
    status: enum(IN_PROGRESS, COMPLETED) = IN_PROGRESS;
  }
  transition ExportTableToPointInTime(TableName: ref(Table), Destination: str, Format: enum(JSON, ION, PARQUET)?) kind create
  doc "Starts an export job for the table." {
    assert(exists(arg(TableName))) else ResourceNotFoundException "the specified table does not exist";
    assert(len(arg(Destination)) > 0) else ValidationException "Destination must be non-empty";
    write(table, arg(TableName));
    write(destination, arg(Destination));
    if !is_null(arg(Format)) {
      write(format, arg(Format));
    }
    emit(ExportStatus, read(status));
  }
  transition DeleteExportJob() kind destroy
  doc "Discards a finished export job record." {
    assert(read(status) != IN_PROGRESS) else ValidationException "the export is still in progress";
  }
  transition DescribeExport() kind describe
  doc "Returns the status of the export job." {
    emit(TableName, read(table));
    emit(Destination, read(destination));
    emit(Format, read(format));
    emit(ExportStatus, read(status));
  }
  transition CompleteExport() kind modify
  doc "Marks the export as completed." {
    assert(read(status) == IN_PROGRESS) else ValidationException "the export already finished";
    write(status, COMPLETED);
  }
}

sm ImportJob {
  service "database";
  doc "An asynchronous import of data into a new table.";
  id_param "ImportJobId";
  states {
    source: str;
    target_table: ref(Table)?;
    format: enum(CSV, JSON, ION) = CSV;
    status: enum(IN_PROGRESS, CANCELLED) = IN_PROGRESS;
  }
  transition ImportTable(Source: str, Format: enum(CSV, JSON, ION)?) kind create
  doc "Starts an import job from the given source." {
    assert(len(arg(Source)) > 0) else ValidationException "Source must be non-empty";
    write(source, arg(Source));
    if !is_null(arg(Format)) {
      write(format, arg(Format));
    }
    emit(ImportStatus, read(status));
  }
  transition DeleteImportJob() kind destroy
  doc "Discards a finished import job record." {
    assert(read(status) != IN_PROGRESS) else ValidationException "the import is still in progress";
  }
  transition DescribeImport() kind describe
  doc "Returns the status of the import job." {
    emit(Source, read(source));
    emit(Format, read(format));
    emit(ImportStatus, read(status));
  }
  transition CancelImport() kind modify
  doc "Cancels an in-progress import." {
    assert(read(status) == IN_PROGRESS) else ValidationException "only in-progress imports can be cancelled";
    write(status, CANCELLED);
  }
}

sm ContributorInsights {
  service "database";
  doc "Per-table access pattern analytics.";
  id_param "ContributorInsightsId";
  parent Table via table;
  states {
    table: ref(Table);
    status: enum(ENABLED) = ENABLED;
    mode: enum(ACCESSED_AND_THROTTLED, THROTTLED_ONLY) = ACCESSED_AND_THROTTLED;
  }
  transition CreateContributorInsights(TableName: ref(Table), Mode: enum(ACCESSED_AND_THROTTLED, THROTTLED_ONLY)?) kind create
  doc "Enables contributor insights for the table." {
    assert(exists(arg(TableName))) else ResourceNotFoundException "the specified table does not exist";
    write(table, arg(TableName));
    if !is_null(arg(Mode)) {
      write(mode, arg(Mode));
    }
    emit(ContributorInsightsStatus, read(status));
  }
  transition DeleteContributorInsights() kind destroy
  doc "Disables contributor insights for the table." {
  }
  transition DescribeContributorInsights() kind describe
  doc "Returns the analytics configuration." {
    emit(TableName, read(table));
    emit(ContributorInsightsStatus, read(status));
    emit(Mode, read(mode));
  }
  transition UpdateContributorInsights(Mode: enum(ACCESSED_AND_THROTTLED, THROTTLED_ONLY)) kind modify
  doc "Changes the analytics mode." {
    write(mode, arg(Mode));
  }
}
"#;
