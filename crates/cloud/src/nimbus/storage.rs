//! Nimbus object storage service (S3-like).
//!
//! Seven state machines. Not part of the paper's Table 1 subset, but the
//! cloud the paper motivates against has hundreds of services — object
//! storage is the most used of them, and its versioning/lifecycle/policy
//! interplay exercises the SM abstraction on a very different shape of
//! resource (account-global names, object containment, multipart state).

/// DSL source for the storage service.
pub const SRC: &str = r#"
sm Bucket {
  service "storage";
  doc "A globally named container for objects.";
  id_param "BucketName";
  states {
    name: str;
    region: str;
    versioning: enum(Disabled, Enabled, Suspended) = Disabled;
    public_access_blocked: bool = true;
    object_lock: bool = false;
    names_in_use: list(str);
  }
  transition CreateBucket(Name: str, Region: str, ObjectLock: bool?) kind create
  doc "Creates a bucket. Names must be 3-63 characters; object lock can only be set at creation." {
    assert(len(arg(Name)) >= 3) else InvalidBucketName "bucket names must be at least 3 characters";
    assert(len(arg(Name)) <= 63) else InvalidBucketName "bucket names may not exceed 63 characters";
    assert(arg(Region) in ["us-east", "us-west"]) else InvalidParameterValue "region must be us-east or us-west";
    write(name, arg(Name));
    write(region, arg(Region));
    if !is_null(arg(ObjectLock)) {
      write(object_lock, arg(ObjectLock));
    }
  }
  transition DeleteBucket() kind destroy
  doc "Deletes the bucket. It must hold no objects or configuration children." {
    assert(child_count(StoredObject) == 0) else BucketNotEmpty "the bucket still contains objects";
    assert(child_count(LifecycleRule) == 0) else BucketNotEmpty "the bucket still has lifecycle rules";
    assert(child_count(MultipartUpload) == 0) else BucketNotEmpty "the bucket has in-progress multipart uploads";
  }
  transition DescribeBucket() kind describe
  doc "Returns the configuration of the bucket." {
    emit(Name, read(name));
    emit(Region, read(region));
    emit(Versioning, read(versioning));
    emit(PublicAccessBlocked, read(public_access_blocked));
    emit(ObjectLock, read(object_lock));
  }
  transition PutBucketVersioning(Status: enum(Enabled, Suspended)) kind modify
  doc "Enables or suspends versioning. Buckets with object lock cannot suspend versioning." {
    assert(!(read(object_lock) && arg(Status) == Suspended)) else InvalidBucketState "versioning cannot be suspended while object lock is enabled";
    write(versioning, arg(Status));
  }
  transition PutPublicAccessBlock(Blocked: bool) kind modify
  doc "Sets the public access block." {
    write(public_access_blocked, arg(Blocked));
  }
  transition ReserveObjectKey(Key: str) kind modify internal
  doc "Internal bookkeeping: records an object key in the bucket." {
    write(names_in_use, append(read(names_in_use), arg(Key)));
  }
  transition ReleaseObjectKey(Key: str) kind modify internal
  doc "Internal bookkeeping: releases an object key." {
    write(names_in_use, remove(read(names_in_use), arg(Key)));
  }
}

sm StoredObject {
  service "storage";
  doc "An object stored in a bucket under a unique key.";
  id_param "ObjectId";
  parent Bucket via bucket;
  states {
    bucket: ref(Bucket);
    key: str;
    size_bytes: int;
    storage_class: enum(Standard, InfrequentAccess, Glacier) = Standard;
    legal_hold: bool = false;
  }
  transition PutObject(BucketName: ref(Bucket), Key: str, SizeBytes: int, StorageClass: enum(Standard, InfrequentAccess, Glacier)?) kind create
  doc "Stores an object. Keys are unique within the bucket; objects are capped at 5 TiB." {
    assert(exists(arg(BucketName))) else NoSuchBucket "the specified bucket does not exist";
    assert(len(arg(Key)) > 0) else InvalidObjectKey "object keys must be non-empty";
    assert(!(arg(Key) in field(arg(BucketName), names_in_use))) else ObjectAlreadyExists "an object with this key already exists";
    assert(arg(SizeBytes) >= 0) else InvalidParameterValue "object size cannot be negative";
    assert(arg(SizeBytes) <= 5497558138880) else EntityTooLarge "objects may not exceed 5 TiB";
    call(arg(BucketName), ReserveObjectKey, [arg(Key)]);
    write(bucket, arg(BucketName));
    write(key, arg(Key));
    write(size_bytes, arg(SizeBytes));
    if !is_null(arg(StorageClass)) {
      write(storage_class, arg(StorageClass));
    }
  }
  transition DeleteObject() kind destroy
  doc "Deletes the object. Objects under legal hold cannot be deleted." {
    assert(!read(legal_hold)) else ObjectLockedError "the object is under legal hold";
    call(read(bucket), ReleaseObjectKey, [read(key)]);
  }
  transition DescribeObject() kind describe
  doc "Returns the metadata of the object." {
    emit(BucketName, read(bucket));
    emit(Key, read(key));
    emit(SizeBytes, read(size_bytes));
    emit(StorageClass, read(storage_class));
    emit(LegalHold, read(legal_hold));
  }
  transition PutObjectLegalHold(Hold: bool) kind modify
  doc "Sets or clears the legal hold. Requires object lock on the bucket." {
    assert(field(read(bucket), object_lock) || !arg(Hold)) else InvalidRequest "legal hold requires object lock on the bucket";
    write(legal_hold, arg(Hold));
  }
  transition TransitionStorageClass(StorageClass: enum(Standard, InfrequentAccess, Glacier)) kind modify
  doc "Moves the object to another storage class. Re-specifying the current class is rejected." {
    assert(arg(StorageClass) != read(storage_class)) else InvalidStorageClassTransition "the object is already in this storage class";
    write(storage_class, arg(StorageClass));
  }
}

sm LifecycleRule {
  service "storage";
  doc "A lifecycle rule expiring or transitioning objects in a bucket.";
  id_param "LifecycleRuleId";
  parent Bucket via bucket;
  states {
    bucket: ref(Bucket);
    prefix: str;
    days: int;
    action: enum(Expire, TransitionIA, TransitionGlacier) = Expire;
    enabled: bool = true;
  }
  transition PutLifecycleRule(BucketName: ref(Bucket), Prefix: str, Days: int, Action: enum(Expire, TransitionIA, TransitionGlacier)?) kind create
  doc "Adds a lifecycle rule. The day threshold must be between 1 and 3650." {
    assert(exists(arg(BucketName))) else NoSuchBucket "the specified bucket does not exist";
    assert(arg(Days) >= 1) else InvalidArgument "the day threshold must be at least 1";
    assert(arg(Days) <= 3650) else InvalidArgument "the day threshold may not exceed 3650";
    write(bucket, arg(BucketName));
    write(prefix, arg(Prefix));
    write(days, arg(Days));
    if !is_null(arg(Action)) {
      write(action, arg(Action));
    }
  }
  transition DeleteLifecycleRule() kind destroy
  doc "Removes the lifecycle rule." {
  }
  transition DescribeLifecycleRule() kind describe
  doc "Returns the lifecycle rule." {
    emit(BucketName, read(bucket));
    emit(Prefix, read(prefix));
    emit(Days, read(days));
    emit(Action, read(action));
    emit(Enabled, read(enabled));
  }
  transition SetLifecycleRuleStatus(Enabled: bool) kind modify
  doc "Enables or disables the rule. Setting the current status is rejected." {
    assert(arg(Enabled) != read(enabled)) else InvalidRequest "the rule is already in the requested state";
    write(enabled, arg(Enabled));
  }
}

sm BucketPolicy {
  service "storage";
  doc "An access policy document attached to a bucket.";
  id_param "BucketPolicyId";
  parent Bucket via bucket;
  states {
    bucket: ref(Bucket);
    document: str;
    allows_public_read: bool = false;
  }
  transition PutBucketPolicy(BucketName: ref(Bucket), Document: str, AllowsPublicRead: bool?) kind create
  doc "Attaches a policy. Public-read policies require the public access block to be off." {
    assert(exists(arg(BucketName))) else NoSuchBucket "the specified bucket does not exist";
    assert(len(arg(Document)) > 0) else MalformedPolicy "the policy document must be non-empty";
    if !is_null(arg(AllowsPublicRead)) {
      assert(!(arg(AllowsPublicRead) && field(arg(BucketName), public_access_blocked))) else AccessDenied "public policies are forbidden while the public access block is on";
      write(allows_public_read, arg(AllowsPublicRead));
    }
    write(bucket, arg(BucketName));
    write(document, arg(Document));
  }
  transition DeleteBucketPolicy() kind destroy
  doc "Removes the policy." {
  }
  transition DescribeBucketPolicy() kind describe
  doc "Returns the policy document." {
    emit(BucketName, read(bucket));
    emit(Document, read(document));
    emit(AllowsPublicRead, read(allows_public_read));
  }
}

sm MultipartUpload {
  service "storage";
  doc "An in-progress multipart upload into a bucket.";
  id_param "UploadId";
  parent Bucket via bucket;
  states {
    bucket: ref(Bucket);
    key: str;
    parts: int = 0;
    status: enum(InProgress, Completed) = InProgress;
  }
  transition CreateMultipartUpload(BucketName: ref(Bucket), Key: str) kind create
  doc "Starts a multipart upload." {
    assert(exists(arg(BucketName))) else NoSuchBucket "the specified bucket does not exist";
    assert(len(arg(Key)) > 0) else InvalidObjectKey "object keys must be non-empty";
    write(bucket, arg(BucketName));
    write(key, arg(Key));
  }
  transition AbortMultipartUpload() kind destroy
  doc "Aborts the upload, discarding uploaded parts." {
    assert(read(status) == InProgress) else NoSuchUpload "the upload already finished";
  }
  transition DescribeMultipartUpload() kind describe
  doc "Returns the upload status." {
    emit(BucketName, read(bucket));
    emit(Key, read(key));
    emit(Parts, read(parts));
    emit(Status, read(status));
  }
  transition UploadPart(PartNumber: int) kind modify
  doc "Uploads one part. Part numbers are 1-10000 and must arrive in order." {
    assert(read(status) == InProgress) else NoSuchUpload "the upload is not in progress";
    assert(arg(PartNumber) >= 1 && arg(PartNumber) <= 10000) else InvalidPartNumber "part numbers must be between 1 and 10000";
    assert(arg(PartNumber) == read(parts) + 1) else InvalidPartOrder "parts must be uploaded sequentially";
    write(parts, arg(PartNumber));
  }
  transition CompleteMultipartUpload() kind modify
  doc "Completes the upload. At least one part must have been uploaded." {
    assert(read(status) == InProgress) else NoSuchUpload "the upload is not in progress";
    assert(read(parts) >= 1) else InvalidRequest "no parts have been uploaded";
    write(status, Completed);
  }
}

sm AccessPoint {
  service "storage";
  doc "A named network endpoint for accessing a bucket.";
  id_param "AccessPointId";
  states {
    bucket: ref(Bucket);
    name: str;
    vpc_only: bool = false;
    policy_document: str = "";
  }
  transition CreateAccessPoint(BucketName: ref(Bucket), Name: str, VpcOnly: bool?) kind create
  doc "Creates an access point for the bucket." {
    assert(exists(arg(BucketName))) else NoSuchBucket "the specified bucket does not exist";
    assert(len(arg(Name)) >= 3) else InvalidAccessPointName "access point names must be at least 3 characters";
    write(bucket, arg(BucketName));
    write(name, arg(Name));
    if !is_null(arg(VpcOnly)) {
      write(vpc_only, arg(VpcOnly));
    }
  }
  transition DeleteAccessPoint() kind destroy
  doc "Deletes the access point." {
  }
  transition DescribeAccessPoint() kind describe
  doc "Returns the access point configuration." {
    emit(BucketName, read(bucket));
    emit(Name, read(name));
    emit(VpcOnly, read(vpc_only));
    emit(Policy, read(policy_document));
  }
  transition PutAccessPointPolicy(Document: str) kind modify
  doc "Attaches a policy to the access point." {
    assert(len(arg(Document)) > 0) else MalformedPolicy "the policy document must be non-empty";
    write(policy_document, arg(Document));
  }
}

sm ReplicationRule {
  service "storage";
  doc "A rule replicating a bucket's objects to a destination bucket.";
  id_param "ReplicationRuleId";
  states {
    source: ref(Bucket);
    destination: ref(Bucket);
    priority: int;
    status: enum(Enabled, Disabled) = Enabled;
  }
  transition PutReplicationRule(SourceBucket: ref(Bucket), DestinationBucket: ref(Bucket), Priority: int) kind create
  doc "Creates a replication rule. Source and destination must differ and both need versioning enabled." {
    assert(exists(arg(SourceBucket))) else NoSuchBucket "the source bucket does not exist";
    assert(exists(arg(DestinationBucket))) else NoSuchBucket "the destination bucket does not exist";
    assert(arg(SourceBucket) != arg(DestinationBucket)) else InvalidRequest "a bucket cannot replicate to itself";
    assert(field(arg(SourceBucket), versioning) == Enabled) else InvalidBucketState "replication requires versioning on the source bucket";
    assert(field(arg(DestinationBucket), versioning) == Enabled) else InvalidBucketState "replication requires versioning on the destination bucket";
    assert(arg(Priority) >= 0 && arg(Priority) <= 1000) else InvalidArgument "priority must be between 0 and 1000";
    write(source, arg(SourceBucket));
    write(destination, arg(DestinationBucket));
    write(priority, arg(Priority));
  }
  transition DeleteReplicationRule() kind destroy
  doc "Deletes the replication rule." {
  }
  transition DescribeReplicationRule() kind describe
  doc "Returns the replication rule." {
    emit(SourceBucket, read(source));
    emit(DestinationBucket, read(destination));
    emit(Priority, read(priority));
    emit(Status, read(status));
  }
  transition SetReplicationRuleStatus(Status: enum(Enabled, Disabled)) kind modify
  doc "Enables or disables the rule." {
    write(status, arg(Status));
  }
}
"#;
