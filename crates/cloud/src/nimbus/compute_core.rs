//! Nimbus compute service, part 1: the VPC networking core.
//!
//! Ten state machines: Vpc, Subnet, Instance, InternetGateway, NatGateway,
//! RouteTable, SecurityGroup, NetworkInterface, Address, VpcEndpoint.
//! These carry the behaviours §5 of the paper builds its accuracy scenarios
//! on: tenancy and credit-specification attributes, DNS attribute coupling,
//! delete-with-dependents checks, instance lifecycle state errors, CIDR
//! conflict and prefix-length validation.

/// DSL source for the networking core.
pub const SRC: &str = r#"
sm Vpc {
  service "compute";
  doc "A virtual private cloud: an isolated virtual network.";
  id_param "VpcId";
  states {
    cidr: str;
    region: str;
    state: enum(available) = available;
    instance_tenancy: enum(default, dedicated, host) = default;
    enable_dns_support: bool = true;
    enable_dns_hostnames: bool = false;
    is_default: bool = false;
    used_cidrs: list(str);
    attached_gateways: int = 0;
  }
  transition CreateVpc(CidrBlock: str, Region: str, InstanceTenancy: enum(default, dedicated, host)?) kind create
  doc "Creates a VPC with the specified CIDR block in the given region." {
    assert(arg(Region) in ["us-east", "us-west"]) else InvalidParameterValue "region must be us-east or us-west";
    assert(len(arg(CidrBlock)) > 0) else MissingParameter "CidrBlock must be non-empty";
    write(cidr, arg(CidrBlock));
    write(region, arg(Region));
    if !is_null(arg(InstanceTenancy)) {
      write(instance_tenancy, arg(InstanceTenancy));
    }
    emit(State, read(state));
    emit(CidrBlock, read(cidr));
  }
  transition DeleteVpc() kind destroy
  doc "Deletes the VPC. Fails while subnets, attached gateways or endpoints remain." {
    assert(child_count(Subnet) == 0) else DependencyViolation "the VPC still contains one or more subnets";
    assert(read(attached_gateways) == 0) else DependencyViolation "the VPC still has an attached internet gateway";
    assert(child_count(VpcEndpoint) == 0) else DependencyViolation "the VPC still contains one or more endpoints";
    assert(child_count(NetworkAcl) == 0) else DependencyViolation "the VPC still contains one or more network ACLs";
    assert(child_count(RouteTable) == 0) else DependencyViolation "the VPC still contains one or more route tables";
    assert(child_count(SecurityGroup) == 0) else DependencyViolation "the VPC still contains one or more security groups";
  }
  transition DescribeVpc() kind describe
  doc "Returns the attributes of the VPC." {
    emit(CidrBlock, read(cidr));
    emit(Region, read(region));
    emit(State, read(state));
    emit(InstanceTenancy, read(instance_tenancy));
    emit(EnableDnsSupport, read(enable_dns_support));
    emit(EnableDnsHostnames, read(enable_dns_hostnames));
    emit(IsDefault, read(is_default));
  }
  transition ModifyVpcAttribute(EnableDnsSupport: bool?, EnableDnsHostnames: bool?) kind modify
  doc "Modifies the DNS attributes of the VPC. DNS hostnames require DNS support." {
    if !is_null(arg(EnableDnsSupport)) {
      assert(arg(EnableDnsSupport) || !read(enable_dns_hostnames)) else InvalidParameterValue "cannot disable DNS support while DNS hostnames are enabled";
      write(enable_dns_support, arg(EnableDnsSupport));
    }
    if !is_null(arg(EnableDnsHostnames)) {
      assert(read(enable_dns_support) || !arg(EnableDnsHostnames)) else InvalidParameterValue "cannot enable DNS hostnames on a VPC with DNS support disabled";
      write(enable_dns_hostnames, arg(EnableDnsHostnames));
    }
  }
  transition ModifyVpcTenancy(InstanceTenancy: enum(default, dedicated, host)) kind modify
  doc "Changes the tenancy of the VPC. Only 'default' may be set after creation." {
    assert(arg(InstanceTenancy) == default) else InvalidParameterValue "tenancy can only be changed to 'default'";
    write(instance_tenancy, arg(InstanceTenancy));
  }
  transition ReserveCidr(Cidr: str) kind modify internal
  doc "Internal bookkeeping: records a subnet CIDR allocation within the VPC." {
    write(used_cidrs, append(read(used_cidrs), arg(Cidr)));
  }
  transition ReleaseCidr(Cidr: str) kind modify internal
  doc "Internal bookkeeping: releases a subnet CIDR allocation." {
    write(used_cidrs, remove(read(used_cidrs), arg(Cidr)));
  }
  transition NotifyGatewayAttached() kind modify internal
  doc "Internal bookkeeping: increments the attached gateway counter." {
    write(attached_gateways, read(attached_gateways) + 1);
  }
  transition NotifyGatewayDetached() kind modify internal
  doc "Internal bookkeeping: decrements the attached gateway counter." {
    write(attached_gateways, read(attached_gateways) - 1);
  }
}

sm Subnet {
  service "compute";
  doc "A range of IP addresses within a VPC, confined to one availability zone.";
  id_param "SubnetId";
  parent Vpc via vpc;
  states {
    vpc: ref(Vpc);
    cidr: str;
    prefix_length: int = 24;
    zone: str;
    state: enum(available) = available;
    map_public_ip_on_launch: bool = false;
    assign_ipv6_on_creation: bool = false;
  }
  transition CreateSubnet(VpcId: ref(Vpc), CidrBlock: str, PrefixLength: int, Zone: str) kind create
  doc "Creates a subnet in the VPC. The CIDR must be unused and the prefix length between /16 and /28." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    assert(arg(PrefixLength) >= 16) else InvalidSubnetRange "the subnet prefix may not be larger than /16";
    assert(arg(PrefixLength) <= 28) else InvalidSubnetRange "the subnet prefix may not be smaller than /28";
    assert(!(arg(CidrBlock) in field(arg(VpcId), used_cidrs))) else InvalidSubnetConflict "the CIDR conflicts with an existing subnet in the VPC";
    assert(arg(Zone) in ["us-east-1a", "us-east-1b", "us-west-1a", "us-west-1b"]) else InvalidParameterValue "unknown availability zone";
    call(arg(VpcId), ReserveCidr, [arg(CidrBlock)]);
    write(vpc, arg(VpcId));
    write(cidr, arg(CidrBlock));
    write(prefix_length, arg(PrefixLength));
    write(zone, arg(Zone));
    emit(State, read(state));
  }
  transition DeleteSubnet() kind destroy
  doc "Deletes the subnet. Fails while instances or interfaces remain." {
    assert(child_count(Instance) == 0) else DependencyViolation "the subnet still contains running instances";
    assert(child_count(NetworkInterface) == 0) else DependencyViolation "the subnet still contains network interfaces";
    assert(child_count(NatGateway) == 0) else DependencyViolation "the subnet still contains NAT gateways";
    call(read(vpc), ReleaseCidr, [read(cidr)]);
  }
  transition DescribeSubnet() kind describe
  doc "Returns the attributes of the subnet." {
    emit(VpcId, read(vpc));
    emit(CidrBlock, read(cidr));
    emit(Zone, read(zone));
    emit(State, read(state));
    emit(MapPublicIpOnLaunch, read(map_public_ip_on_launch));
    emit(PrefixLength, read(prefix_length));
    emit(AssignIpv6AddressOnCreation, read(assign_ipv6_on_creation));
  }
  transition ModifySubnetAttribute(MapPublicIpOnLaunch: bool?, AssignIpv6AddressOnCreation: bool?) kind modify
  doc "Modifies subnet attributes such as automatic public IP assignment." {
    if !is_null(arg(MapPublicIpOnLaunch)) {
      write(map_public_ip_on_launch, arg(MapPublicIpOnLaunch));
    }
    if !is_null(arg(AssignIpv6AddressOnCreation)) {
      write(assign_ipv6_on_creation, arg(AssignIpv6AddressOnCreation));
    }
  }
}

sm Instance {
  service "compute";
  doc "A virtual machine instance launched into a subnet.";
  id_param "InstanceId";
  parent Subnet via subnet;
  states {
    subnet: ref(Subnet);
    image: ref(Image);
    state: enum(pending, running, stopped, terminated) = pending;
    instance_type: str;
    tenancy: enum(default, dedicated, host) = default;
    credit_specification: enum(standard, unlimited) = standard;
    key_name: str?;
    security_group: ref(SecurityGroup)?;
    ebs_optimized: bool = false;
    source_dest_check: bool = true;
  }
  transition RunInstance(SubnetId: ref(Subnet), ImageId: ref(Image), InstanceType: str, KeyName: str?, SecurityGroupId: ref(SecurityGroup)?, Tenancy: enum(default, dedicated, host)?) kind create
  doc "Launches an instance from an image into the subnet." {
    assert(exists(arg(SubnetId))) else NotFound "the specified subnet does not exist";
    assert(exists(arg(ImageId))) else NotFound "the specified image does not exist";
    assert(arg(InstanceType) in ["t2.micro", "t3.micro", "t3.small", "m5.large", "m5.xlarge", "c5.large"]) else InvalidParameterValue "unsupported instance type";
    if !is_null(arg(SecurityGroupId)) {
      assert(exists(arg(SecurityGroupId))) else NotFound "the specified security group does not exist";
      write(security_group, arg(SecurityGroupId));
    }
    write(subnet, arg(SubnetId));
    write(image, arg(ImageId));
    write(instance_type, arg(InstanceType));
    write(key_name, arg(KeyName));
    if !is_null(arg(Tenancy)) {
      write(tenancy, arg(Tenancy));
    }
    write(state, running);
    emit(State, read(state));
  }
  transition TerminateInstance() kind destroy
  doc "Terminates the instance. Attached volumes must be detached first." {
    assert(read(state) != terminated) else IncorrectInstanceState "the instance is already terminated";
    write(state, terminated);
  }
  transition DescribeInstance() kind describe
  doc "Returns the attributes of the instance." {
    emit(SubnetId, read(subnet));
    emit(State, read(state));
    emit(InstanceType, read(instance_type));
    emit(Tenancy, read(tenancy));
    emit(CreditSpecification, read(credit_specification));
    emit(EbsOptimized, read(ebs_optimized));
    emit(ImageId, read(image));
    emit(KeyName, read(key_name));
    emit(SecurityGroupId, read(security_group));
    emit(SourceDestCheck, read(source_dest_check));
  }
  transition StartInstance() kind modify
  doc "Starts a stopped instance. Fails unless the instance is stopped." {
    assert(read(state) == stopped) else IncorrectInstanceState "the instance is not in the 'stopped' state";
    write(state, running);
    emit(State, read(state));
  }
  transition StopInstance() kind modify
  doc "Stops a running instance. Fails unless the instance is running." {
    assert(read(state) == running) else IncorrectInstanceState "the instance is not in the 'running' state";
    write(state, stopped);
    emit(State, read(state));
  }
  transition RebootInstance() kind modify
  doc "Reboots a running instance." {
    assert(read(state) == running) else IncorrectInstanceState "the instance is not in the 'running' state";
  }
  transition ModifyInstanceAttribute(InstanceType: str?, EbsOptimized: bool?, SourceDestCheck: bool?) kind modify
  doc "Modifies instance attributes. The instance must be stopped to change its type." {
    if !is_null(arg(InstanceType)) {
      assert(read(state) == stopped) else IncorrectInstanceState "the instance must be stopped to modify its type";
      assert(arg(InstanceType) in ["t2.micro", "t3.micro", "t3.small", "m5.large", "m5.xlarge", "c5.large"]) else InvalidParameterValue "unsupported instance type";
      write(instance_type, arg(InstanceType));
    }
    if !is_null(arg(EbsOptimized)) {
      write(ebs_optimized, arg(EbsOptimized));
    }
    if !is_null(arg(SourceDestCheck)) {
      write(source_dest_check, arg(SourceDestCheck));
    }
  }
  transition ModifyInstanceCreditSpecification(CpuCredits: enum(standard, unlimited)) kind modify
  doc "Changes the credit option for CPU usage of a burstable instance." {
    assert(read(instance_type) in ["t2.micro", "t3.micro", "t3.small"]) else InvalidParameterValue "credit specification applies only to burstable instance types";
    write(credit_specification, arg(CpuCredits));
  }
}

sm InternetGateway {
  service "compute";
  doc "A gateway that connects a VPC to the internet.";
  id_param "InternetGatewayId";
  states {
    vpc: ref(Vpc)?;
    state: enum(detached, attached) = detached;
  }
  transition CreateInternetGateway() kind create
  doc "Creates an internet gateway in the detached state." {
    emit(State, read(state));
  }
  transition DeleteInternetGateway() kind destroy
  doc "Deletes the gateway. It must be detached from any VPC first." {
    assert(is_null(read(vpc))) else DependencyViolation "the gateway is still attached to a VPC";
  }
  transition DescribeInternetGateway() kind describe
  doc "Returns the attachment state of the gateway." {
    emit(State, read(state));
    emit(VpcId, read(vpc));
  }
  transition AttachInternetGateway(VpcId: ref(Vpc)) kind modify
  doc "Attaches the gateway to a VPC. A gateway attaches to at most one VPC." {
    assert(is_null(read(vpc))) else ResourceAlreadyAssociated "the gateway is already attached to a VPC";
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    call(arg(VpcId), NotifyGatewayAttached, []);
    write(vpc, arg(VpcId));
    write(state, attached);
  }
  transition DetachInternetGateway() kind modify
  doc "Detaches the gateway from its VPC." {
    assert(!is_null(read(vpc))) else GatewayNotAttached "the gateway is not attached to a VPC";
    call(read(vpc), NotifyGatewayDetached, []);
    write(vpc, null);
    write(state, detached);
  }
}

sm NatGateway {
  service "compute";
  doc "A managed network address translation gateway living in a subnet.";
  id_param "NatGatewayId";
  parent Subnet via subnet;
  states {
    subnet: ref(Subnet);
    address: ref(Address)?;
    state: enum(available, deleted) = available;
    connectivity: enum(public, private) = public;
  }
  transition CreateNatGateway(SubnetId: ref(Subnet), AllocationId: ref(Address)?, ConnectivityType: enum(public, private)?) kind create
  doc "Creates a NAT gateway in the subnet. Public gateways need an elastic IP allocation." {
    assert(exists(arg(SubnetId))) else NotFound "the specified subnet does not exist";
    if !is_null(arg(ConnectivityType)) {
      write(connectivity, arg(ConnectivityType));
    }
    if read(connectivity) == public {
      assert(!is_null(arg(AllocationId))) else MissingParameter "public NAT gateways require an elastic IP allocation";
      assert(exists(arg(AllocationId))) else NotFound "the specified allocation does not exist";
      write(address, arg(AllocationId));
    }
    write(subnet, arg(SubnetId));
    emit(State, read(state));
  }
  transition DeleteNatGateway() kind destroy
  doc "Deletes the NAT gateway." {
    assert(read(state) == available) else IncorrectState "the NAT gateway is not available";
    write(state, deleted);
  }
  transition DescribeNatGateway() kind describe
  doc "Returns the attributes of the NAT gateway." {
    emit(SubnetId, read(subnet));
    emit(State, read(state));
    emit(ConnectivityType, read(connectivity));
    emit(AllocationId, read(address));
  }
}

sm RouteTable {
  service "compute";
  doc "A routing table controlling traffic leaving subnets of a VPC.";
  id_param "RouteTableId";
  parent Vpc via vpc;
  states {
    vpc: ref(Vpc);
    routes: list(str);
    associated_subnets: list(ref(Subnet));
    is_main: bool = false;
  }
  transition CreateRouteTable(VpcId: ref(Vpc)) kind create
  doc "Creates a route table for the VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    write(vpc, arg(VpcId));
  }
  transition DeleteRouteTable() kind destroy
  doc "Deletes the route table. It must not be associated with any subnet." {
    assert(len(read(associated_subnets)) == 0) else DependencyViolation "the route table is still associated with one or more subnets";
    assert(!read(is_main)) else InvalidParameterValue "the main route table cannot be deleted";
  }
  transition DescribeRouteTable() kind describe
  doc "Returns the routes and associations of the table." {
    emit(VpcId, read(vpc));
    emit(Routes, read(routes));
    emit(AssociatedSubnets, read(associated_subnets));
  }
  transition CreateRoute(DestinationCidrBlock: str) kind modify
  doc "Adds a route for the destination CIDR. Duplicate destinations are rejected." {
    assert(!(arg(DestinationCidrBlock) in read(routes))) else RouteAlreadyExists "a route for this destination already exists";
    write(routes, append(read(routes), arg(DestinationCidrBlock)));
  }
  transition DeleteRoute(DestinationCidrBlock: str) kind modify
  doc "Removes the route for the destination CIDR." {
    assert(arg(DestinationCidrBlock) in read(routes)) else RouteNotFound "no route exists for this destination";
    write(routes, remove(read(routes), arg(DestinationCidrBlock)));
  }
  transition AssociateRouteTable(SubnetId: ref(Subnet)) kind modify
  doc "Associates the route table with a subnet in the same VPC." {
    assert(exists(arg(SubnetId))) else NotFound "the specified subnet does not exist";
    assert(field(arg(SubnetId), vpc) == read(vpc)) else InvalidParameterValue "the subnet belongs to a different VPC";
    assert(!(arg(SubnetId) in read(associated_subnets))) else ResourceAlreadyAssociated "the subnet is already associated with this route table";
    write(associated_subnets, append(read(associated_subnets), arg(SubnetId)));
  }
  transition DisassociateRouteTable(SubnetId: ref(Subnet)) kind modify
  doc "Removes the association between the route table and a subnet." {
    assert(arg(SubnetId) in read(associated_subnets)) else AssociationNotFound "the subnet is not associated with this route table";
    write(associated_subnets, remove(read(associated_subnets), arg(SubnetId)));
  }
}

sm SecurityGroup {
  service "compute";
  doc "A stateful virtual firewall for instances.";
  id_param "SecurityGroupId";
  parent Vpc via vpc;
  states {
    vpc: ref(Vpc);
    group_name: str;
    description: str;
    ingress_rules: list(str);
    egress_rules: list(str);
  }
  transition CreateSecurityGroup(VpcId: ref(Vpc), GroupName: str, Description: str) kind create
  doc "Creates a security group in the VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    assert(len(arg(GroupName)) > 0) else MissingParameter "GroupName must be non-empty";
    write(vpc, arg(VpcId));
    write(group_name, arg(GroupName));
    write(description, arg(Description));
  }
  transition DeleteSecurityGroup() kind destroy
  doc "Deletes the security group." {
    assert(read(group_name) != "default") else CannotDelete "the default security group cannot be deleted";
  }
  transition DescribeSecurityGroup() kind describe
  doc "Returns the rules of the security group." {
    emit(GroupName, read(group_name));
    emit(IngressRules, read(ingress_rules));
    emit(EgressRules, read(egress_rules));
    emit(Description, read(description));
  }
  transition AuthorizeSecurityGroupIngress(Rule: str) kind modify
  doc "Adds an ingress rule. Duplicate rules are rejected." {
    assert(!(arg(Rule) in read(ingress_rules))) else InvalidPermissionDuplicate "the ingress rule already exists";
    write(ingress_rules, append(read(ingress_rules), arg(Rule)));
  }
  transition RevokeSecurityGroupIngress(Rule: str) kind modify
  doc "Removes an ingress rule." {
    assert(arg(Rule) in read(ingress_rules)) else InvalidPermissionNotFound "the ingress rule does not exist";
    write(ingress_rules, remove(read(ingress_rules), arg(Rule)));
  }
  transition AuthorizeSecurityGroupEgress(Rule: str) kind modify
  doc "Adds an egress rule. Duplicate rules are rejected." {
    assert(!(arg(Rule) in read(egress_rules))) else InvalidPermissionDuplicate "the egress rule already exists";
    write(egress_rules, append(read(egress_rules), arg(Rule)));
  }
  transition RevokeSecurityGroupEgress(Rule: str) kind modify
  doc "Removes an egress rule." {
    assert(arg(Rule) in read(egress_rules)) else InvalidPermissionNotFound "the egress rule does not exist";
    write(egress_rules, remove(read(egress_rules), arg(Rule)));
  }
}

sm NetworkInterface {
  service "compute";
  doc "An elastic network interface attachable to instances.";
  id_param "NetworkInterfaceId";
  parent Subnet via subnet;
  states {
    subnet: ref(Subnet);
    zone: str;
    status: enum(available, in_use) = available;
    attached_instance: ref(Instance)?;
    public_ip: ref(Address)?;
    description: str = "";
    source_dest_check: bool = true;
  }
  transition CreateNetworkInterface(SubnetId: ref(Subnet), Description: str?) kind create
  doc "Creates a network interface in the subnet, inheriting its zone." {
    assert(exists(arg(SubnetId))) else NotFound "the specified subnet does not exist";
    write(subnet, arg(SubnetId));
    write(zone, field(arg(SubnetId), zone));
    if !is_null(arg(Description)) {
      write(description, arg(Description));
    }
    emit(Status, read(status));
  }
  transition DeleteNetworkInterface() kind destroy
  doc "Deletes the interface. It must be detached and hold no public IP." {
    assert(read(status) == available) else InvalidNetworkInterfaceInUse "the interface is attached to an instance";
    assert(is_null(read(public_ip))) else DependencyViolation "a public IP is still associated with the interface";
  }
  transition DescribeNetworkInterface() kind describe
  doc "Returns the attributes of the interface." {
    emit(SubnetId, read(subnet));
    emit(Zone, read(zone));
    emit(Status, read(status));
    emit(AttachedInstance, read(attached_instance));
    emit(Description, read(description));
    emit(SourceDestCheck, read(source_dest_check));
  }
  transition AttachNetworkInterface(InstanceId: ref(Instance)) kind modify
  doc "Attaches the interface to an instance in the same zone." {
    assert(read(status) == available) else InvalidNetworkInterfaceInUse "the interface is already attached";
    assert(exists(arg(InstanceId))) else NotFound "the specified instance does not exist";
    assert(field(field(arg(InstanceId), subnet), zone) == read(zone)) else InvalidParameterValue "the instance is in a different availability zone";
    write(attached_instance, arg(InstanceId));
    write(status, in_use);
  }
  transition DetachNetworkInterface() kind modify
  doc "Detaches the interface from its instance." {
    assert(read(status) == in_use) else IncorrectState "the interface is not attached";
    write(attached_instance, null);
    write(status, available);
  }
  transition ModifyNetworkInterfaceAttribute(Description: str?, SourceDestCheck: bool?) kind modify
  doc "Modifies interface attributes." {
    if !is_null(arg(Description)) {
      write(description, arg(Description));
    }
    if !is_null(arg(SourceDestCheck)) {
      write(source_dest_check, arg(SourceDestCheck));
    }
  }
  transition AttachPublicIp(Ip: ref(Address)) kind modify internal
  doc "Internal bookkeeping: records the public IP associated with this interface." {
    assert(is_null(read(public_ip))) else ResourceAlreadyAssociated "a public IP is already associated with the interface";
    write(public_ip, arg(Ip));
  }
  transition DetachPublicIp() kind modify internal
  doc "Internal bookkeeping: clears the associated public IP." {
    write(public_ip, null);
  }
}

sm Address {
  service "compute";
  doc "An elastic public IP address that can be associated with a network interface.";
  id_param "AllocationId";
  states {
    status: enum(idle, associated) = idle;
    region: str;
    nic: ref(NetworkInterface)?;
  }
  transition AllocateAddress(Region: str) kind create
  doc "Allocates a public IP address in the given region." {
    assert(arg(Region) in ["us-east", "us-west"]) else InvalidParameterValue "region must be us-east or us-west";
    write(region, arg(Region));
    emit(Status, read(status));
  }
  transition ReleaseAddress() kind destroy
  doc "Releases the address. It must be disassociated first." {
    assert(is_null(read(nic))) else AddressInUse "the address is still associated with a network interface";
  }
  transition DescribeAddress() kind describe
  doc "Returns the association state of the address." {
    emit(Status, read(status));
    emit(Region, read(region));
    emit(NetworkInterfaceId, read(nic));
  }
  transition AssociateAddress(NetworkInterfaceId: ref(NetworkInterface)) kind modify
  doc "Associates the address with a network interface in the same region." {
    assert(is_null(read(nic))) else ResourceAlreadyAssociated "the address is already associated";
    assert(exists(arg(NetworkInterfaceId))) else NotFound "the specified network interface does not exist";
    call(arg(NetworkInterfaceId), AttachPublicIp, [self_id()]);
    write(nic, arg(NetworkInterfaceId));
    write(status, associated);
  }
  transition DisassociateAddress() kind modify
  doc "Removes the association between the address and its interface." {
    assert(!is_null(read(nic))) else AssociationNotFound "the address is not associated";
    call(read(nic), DetachPublicIp, []);
    write(nic, null);
    write(status, idle);
  }
}

sm VpcEndpoint {
  service "compute";
  doc "A private connection between a VPC and a provider service.";
  id_param "VpcEndpointId";
  parent Vpc via vpc;
  states {
    vpc: ref(Vpc);
    service_name: str;
    endpoint_type: enum(Gateway, Interface) = Gateway;
    state: enum(available, deleting) = available;
    private_dns_enabled: bool = false;
  }
  transition CreateVpcEndpoint(VpcId: ref(Vpc), ServiceName: str, EndpointType: enum(Gateway, Interface)?) kind create
  doc "Creates an endpoint for the named service inside the VPC." {
    assert(exists(arg(VpcId))) else NotFound "the specified VPC does not exist";
    assert(arg(ServiceName) in ["storage", "database", "firewall", "k8s"]) else InvalidServiceName "unknown service name";
    write(vpc, arg(VpcId));
    write(service_name, arg(ServiceName));
    if !is_null(arg(EndpointType)) {
      write(endpoint_type, arg(EndpointType));
    }
    emit(State, read(state));
  }
  transition DeleteVpcEndpoint() kind destroy
  doc "Deletes the endpoint." {
    assert(read(state) == available) else IncorrectState "the endpoint is not available";
    write(state, deleting);
  }
  transition DescribeVpcEndpoint() kind describe
  doc "Returns the attributes of the endpoint." {
    emit(VpcId, read(vpc));
    emit(ServiceName, read(service_name));
    emit(EndpointType, read(endpoint_type));
    emit(State, read(state));
    emit(PrivateDnsEnabled, read(private_dns_enabled));
  }
  transition ModifyVpcEndpoint(PrivateDnsEnabled: bool?) kind modify
  doc "Modifies the endpoint. Private DNS requires an interface endpoint and VPC DNS support." {
    if !is_null(arg(PrivateDnsEnabled)) {
      assert(read(endpoint_type) == Interface || !arg(PrivateDnsEnabled)) else InvalidParameterValue "private DNS is only available for interface endpoints";
      assert(field(read(vpc), enable_dns_support) || !arg(PrivateDnsEnabled)) else InvalidParameterValue "private DNS requires DNS support on the VPC";
      write(private_dns_enabled, arg(PrivateDnsEnabled));
    }
  }
}
"#;
