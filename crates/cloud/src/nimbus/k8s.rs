//! Nimbus managed Kubernetes service (EKS-like).
//!
//! Six state machines. Appears in the Table 1 coverage experiment (the
//! manual baseline covers ~26% of its APIs).

/// DSL source for the k8s service.
pub const SRC: &str = r#"
sm Cluster {
  service "k8s";
  doc "A managed Kubernetes control plane.";
  id_param "ClusterName";
  states {
    name: str;
    version: str = "1.29";
    status: enum(ACTIVE) = ACTIVE;
    subnet: ref(Subnet);
    endpoint_public_access: bool = true;
    endpoint_private_access: bool = false;
    logging_enabled: bool = false;
  }
  transition CreateCluster(Name: str, SubnetId: ref(Subnet), Version: str?) kind create
  doc "Creates a cluster whose control plane attaches to the subnet." {
    assert(len(arg(Name)) > 0) else InvalidParameterException "cluster name must be non-empty";
    assert(exists(arg(SubnetId))) else ResourceNotFoundException "the specified subnet does not exist";
    write(name, arg(Name));
    write(subnet, arg(SubnetId));
    if !is_null(arg(Version)) {
      assert(arg(Version) in ["1.27", "1.28", "1.29", "1.30"]) else InvalidParameterException "unsupported Kubernetes version";
      write(version, arg(Version));
    }
    emit(Status, read(status));
  }
  transition DeleteCluster() kind destroy
  doc "Deletes the cluster. Node groups and profiles must be deleted first." {
    assert(child_count(NodeGroup) == 0) else ResourceInUseException "the cluster still has node groups";
    assert(child_count(FargateProfile) == 0) else ResourceInUseException "the cluster still has compute profiles";
    assert(child_count(Addon) == 0) else ResourceInUseException "the cluster still has addons";
  }
  transition DescribeCluster() kind describe
  doc "Returns the configuration of the cluster." {
    emit(Name, read(name));
    emit(Version, read(version));
    emit(Status, read(status));
    emit(EndpointPublicAccess, read(endpoint_public_access));
    emit(EndpointPrivateAccess, read(endpoint_private_access));
    emit(LoggingEnabled, read(logging_enabled));
  }
  transition UpdateClusterVersion(Version: str) kind modify
  doc "Upgrades the cluster version. Downgrades are rejected." {
    assert(arg(Version) in ["1.27", "1.28", "1.29", "1.30"]) else InvalidParameterException "unsupported Kubernetes version";
    assert(arg(Version) != read(version)) else InvalidParameterException "the cluster already runs this version";
    write(version, arg(Version));
  }
  transition UpdateClusterConfig(EndpointPublicAccess: bool?, EndpointPrivateAccess: bool?, LoggingEnabled: bool?) kind modify
  doc "Updates endpoint access and logging. At least one endpoint must stay enabled." {
    if !is_null(arg(EndpointPublicAccess)) {
      assert(arg(EndpointPublicAccess) || read(endpoint_private_access)) else InvalidParameterException "at least one of public or private endpoint access must remain enabled";
      write(endpoint_public_access, arg(EndpointPublicAccess));
    }
    if !is_null(arg(EndpointPrivateAccess)) {
      assert(arg(EndpointPrivateAccess) || read(endpoint_public_access)) else InvalidParameterException "at least one of public or private endpoint access must remain enabled";
      write(endpoint_private_access, arg(EndpointPrivateAccess));
    }
    if !is_null(arg(LoggingEnabled)) {
      write(logging_enabled, arg(LoggingEnabled));
    }
  }
}

sm NodeGroup {
  service "k8s";
  doc "A managed group of worker nodes attached to a cluster.";
  id_param "NodeGroupName";
  parent Cluster via cluster;
  states {
    cluster: ref(Cluster);
    name: str;
    instance_type: str = "t3.small";
    desired_size: int = 2;
    min_size: int = 1;
    max_size: int = 4;
    status: enum(ACTIVE) = ACTIVE;
  }
  transition CreateNodeGroup(ClusterName: ref(Cluster), NodeGroupName2: str, InstanceType: str?, DesiredSize: int?) kind create
  doc "Creates a node group in the cluster." {
    assert(exists(arg(ClusterName))) else ResourceNotFoundException "the specified cluster does not exist";
    assert(len(arg(NodeGroupName2)) > 0) else InvalidParameterException "node group name must be non-empty";
    write(cluster, arg(ClusterName));
    write(name, arg(NodeGroupName2));
    if !is_null(arg(InstanceType)) {
      assert(arg(InstanceType) in ["t2.micro", "t3.micro", "t3.small", "m5.large", "m5.xlarge", "c5.large"]) else InvalidParameterException "unsupported instance type";
      write(instance_type, arg(InstanceType));
    }
    if !is_null(arg(DesiredSize)) {
      assert(arg(DesiredSize) >= read(min_size) && arg(DesiredSize) <= read(max_size)) else InvalidParameterException "desired size must be between min and max size";
      write(desired_size, arg(DesiredSize));
    }
    emit(Status, read(status));
  }
  transition DeleteNodeGroup() kind destroy
  doc "Deletes the node group." {
  }
  transition DescribeNodeGroup() kind describe
  doc "Returns the configuration of the node group." {
    emit(ClusterName, read(cluster));
    emit(Name, read(name));
    emit(InstanceType, read(instance_type));
    emit(DesiredSize, read(desired_size));
    emit(Status, read(status));
  }
  transition UpdateNodeGroupConfig(DesiredSize: int?, MinSize: int?, MaxSize: int?) kind modify
  doc "Updates the scaling configuration. min <= desired <= max must hold." {
    if !is_null(arg(MinSize)) {
      assert(arg(MinSize) >= 0) else InvalidParameterException "min size cannot be negative";
      write(min_size, arg(MinSize));
    }
    if !is_null(arg(MaxSize)) {
      assert(arg(MaxSize) >= read(min_size)) else InvalidParameterException "max size must be at least min size";
      write(max_size, arg(MaxSize));
    }
    if !is_null(arg(DesiredSize)) {
      assert(arg(DesiredSize) >= read(min_size) && arg(DesiredSize) <= read(max_size)) else InvalidParameterException "desired size must be between min and max size";
      write(desired_size, arg(DesiredSize));
    }
  }
  transition UpdateNodeGroupVersion(InstanceType: str) kind modify
  doc "Rolls the node group onto a new instance type." {
    assert(arg(InstanceType) in ["t2.micro", "t3.micro", "t3.small", "m5.large", "m5.xlarge", "c5.large"]) else InvalidParameterException "unsupported instance type";
    write(instance_type, arg(InstanceType));
  }
}

sm FargateProfile {
  service "k8s";
  doc "A serverless compute profile selecting pods to run without nodes.";
  id_param "FargateProfileName";
  parent Cluster via cluster;
  states {
    cluster: ref(Cluster);
    name: str;
    namespace: str;
    status: enum(ACTIVE) = ACTIVE;
  }
  transition CreateFargateProfile(ClusterName: ref(Cluster), ProfileName: str, Namespace: str) kind create
  doc "Creates a serverless compute profile for a namespace." {
    assert(exists(arg(ClusterName))) else ResourceNotFoundException "the specified cluster does not exist";
    assert(len(arg(ProfileName)) > 0) else InvalidParameterException "profile name must be non-empty";
    assert(len(arg(Namespace)) > 0) else InvalidParameterException "namespace must be non-empty";
    write(cluster, arg(ClusterName));
    write(name, arg(ProfileName));
    write(namespace, arg(Namespace));
    emit(Status, read(status));
  }
  transition DeleteFargateProfile() kind destroy
  doc "Deletes the profile." {
  }
  transition DescribeFargateProfile() kind describe
  doc "Returns the configuration of the profile." {
    emit(ClusterName, read(cluster));
    emit(Name, read(name));
    emit(Namespace, read(namespace));
    emit(Status, read(status));
  }
}

sm Addon {
  service "k8s";
  doc "A managed cluster addon such as a CNI or DNS plugin.";
  id_param "AddonName";
  parent Cluster via cluster;
  states {
    cluster: ref(Cluster);
    name: str;
    addon_version: str = "v1";
    status: enum(ACTIVE) = ACTIVE;
    conflict_resolution: enum(OVERWRITE, NONE, PRESERVE) = NONE;
  }
  transition CreateAddon(ClusterName: ref(Cluster), AddonName2: str, AddonVersion: str?) kind create
  doc "Installs an addon on the cluster." {
    assert(exists(arg(ClusterName))) else ResourceNotFoundException "the specified cluster does not exist";
    assert(arg(AddonName2) in ["vpc-cni", "coredns", "kube-proxy", "ebs-csi"]) else InvalidParameterException "unknown addon";
    write(cluster, arg(ClusterName));
    write(name, arg(AddonName2));
    if !is_null(arg(AddonVersion)) {
      write(addon_version, arg(AddonVersion));
    }
    emit(Status, read(status));
  }
  transition DeleteAddon() kind destroy
  doc "Removes the addon from the cluster." {
  }
  transition DescribeAddon() kind describe
  doc "Returns the addon configuration." {
    emit(ClusterName, read(cluster));
    emit(Name, read(name));
    emit(AddonVersion, read(addon_version));
    emit(Status, read(status));
    emit(ResolveConflicts, read(conflict_resolution));
  }
  transition UpdateAddon(AddonVersion: str, ResolveConflicts: enum(OVERWRITE, NONE, PRESERVE)?) kind modify
  doc "Upgrades the addon version." {
    assert(arg(AddonVersion) != read(addon_version)) else InvalidParameterException "the addon already runs this version";
    write(addon_version, arg(AddonVersion));
    if !is_null(arg(ResolveConflicts)) {
      write(conflict_resolution, arg(ResolveConflicts));
    }
  }
}

sm AccessEntry {
  service "k8s";
  doc "An IAM principal granted access to the cluster.";
  id_param "AccessEntryId";
  parent Cluster via cluster;
  states {
    cluster: ref(Cluster);
    principal: str;
    access_policy: enum(VIEW, EDIT, ADMIN) = VIEW;
    groups: list(str);
  }
  transition CreateAccessEntry(ClusterName: ref(Cluster), PrincipalArn: str, AccessPolicy: enum(VIEW, EDIT, ADMIN)?) kind create
  doc "Grants a principal access to the cluster." {
    assert(exists(arg(ClusterName))) else ResourceNotFoundException "the specified cluster does not exist";
    assert(len(arg(PrincipalArn)) > 0) else InvalidParameterException "principal ARN must be non-empty";
    write(cluster, arg(ClusterName));
    write(principal, arg(PrincipalArn));
    if !is_null(arg(AccessPolicy)) {
      write(access_policy, arg(AccessPolicy));
    }
  }
  transition DeleteAccessEntry() kind destroy
  doc "Revokes the principal's access." {
  }
  transition DescribeAccessEntry() kind describe
  doc "Returns the access entry." {
    emit(ClusterName, read(cluster));
    emit(PrincipalArn, read(principal));
    emit(AccessPolicy, read(access_policy));
    emit(Groups, read(groups));
  }
  transition UpdateAccessEntry(AccessPolicy: enum(VIEW, EDIT, ADMIN)?, AddGroup: str?) kind modify
  doc "Updates the policy or Kubernetes groups of the entry." {
    if !is_null(arg(AccessPolicy)) {
      write(access_policy, arg(AccessPolicy));
    }
    if !is_null(arg(AddGroup)) {
      assert(!(arg(AddGroup) in read(groups))) else InvalidParameterException "the group is already granted";
      write(groups, append(read(groups), arg(AddGroup)));
    }
  }
}

sm PodIdentityAssociation {
  service "k8s";
  doc "Binds a Kubernetes service account to an IAM role.";
  id_param "PodIdentityAssociationId";
  parent Cluster via cluster;
  states {
    cluster: ref(Cluster);
    namespace: str;
    service_account: str;
    role: str;
  }
  transition CreatePodIdentityAssociation(ClusterName: ref(Cluster), Namespace: str, ServiceAccount: str, RoleArn: str) kind create
  doc "Creates an identity association for a service account." {
    assert(exists(arg(ClusterName))) else ResourceNotFoundException "the specified cluster does not exist";
    assert(len(arg(Namespace)) > 0) else InvalidParameterException "namespace must be non-empty";
    assert(len(arg(ServiceAccount)) > 0) else InvalidParameterException "service account must be non-empty";
    assert(len(arg(RoleArn)) > 0) else InvalidParameterException "role ARN must be non-empty";
    write(cluster, arg(ClusterName));
    write(namespace, arg(Namespace));
    write(service_account, arg(ServiceAccount));
    write(role, arg(RoleArn));
  }
  transition DeletePodIdentityAssociation() kind destroy
  doc "Deletes the identity association." {
  }
  transition DescribePodIdentityAssociation() kind describe
  doc "Returns the identity association." {
    emit(ClusterName, read(cluster));
    emit(Namespace, read(namespace));
    emit(ServiceAccount, read(service_account));
    emit(RoleArn, read(role));
  }
  transition UpdatePodIdentityAssociation(RoleArn: str) kind modify
  doc "Points the association at a different IAM role." {
    assert(len(arg(RoleArn)) > 0) else InvalidParameterException "role ARN must be non-empty";
    write(role, arg(RoleArn));
  }
}
"#;
