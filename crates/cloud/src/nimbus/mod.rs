//! The Nimbus provider: an AWS-like synthetic cloud with five services
//! (compute, database, firewall, k8s, storage) and consolidated PDF-style
//! documentation.

pub mod compute_core;
pub mod compute_net;
pub mod compute_storage;
pub mod database;
pub mod firewall;
pub mod k8s;
pub mod storage;

use lce_spec::{
    parse_catalog, Catalog, Expr, SmSpec, Span, StateDecl, StateType, Stmt, TransitionBuilder,
    TransitionKind,
};

/// Concatenated DSL source of the core Nimbus catalog (before the uniform
/// compute tagging layer is applied).
pub fn catalog_src() -> String {
    [
        compute_core::SRC,
        compute_storage::SRC,
        compute_net::SRC,
        database::SRC,
        firewall::SRC,
        k8s::SRC,
        storage::SRC,
    ]
    .join("\n")
}

/// Parse the golden Nimbus specs. Panics on malformed built-in sources —
/// those are validated by this crate's tests.
///
/// Like its real-world counterpart, the compute service exposes a uniform
/// tagging sub-API on every resource type (`Tag<Resource>` /
/// `Untag<Resource>` with a `tags` attribute); it is applied here
/// programmatically rather than spelled out 28 times in the DSL sources.
pub fn specs() -> Vec<SmSpec> {
    let mut specs = parse_catalog(&catalog_src()).expect("built-in Nimbus catalog must parse");
    for sm in &mut specs {
        if sm.service == "compute" {
            add_tagging(sm);
        }
    }
    specs
}

/// Add the uniform tagging layer to one machine.
fn add_tagging(sm: &mut SmSpec) {
    debug_assert!(sm.state("tags").is_none(), "{} already has tags", sm.name);
    sm.states.push(StateDecl {
        name: "tags".into(),
        ty: StateType::List(Box::new(StateType::Str)),
        nullable: false,
        default: None,
    });
    let in_tags = |e: Expr| {
        Expr::Binary(
            lce_spec::BinOp::In,
            Box::new(e),
            Box::new(Expr::read("tags")),
        )
    };
    sm.transitions.push(
        TransitionBuilder::new(format!("Tag{}", sm.name), TransitionKind::Modify)
            .doc("Adds a tag to the resource. Duplicate tags are rejected.")
            .param("Tag", StateType::Str)
            .assert(
                Expr::not(in_tags(Expr::arg("Tag"))),
                "InvalidParameterValue",
                "the tag already exists on the resource",
            )
            .stmt(Stmt::Write {
                state: "tags".into(),
                value: Expr::Append(Box::new(Expr::read("tags")), Box::new(Expr::arg("Tag"))),
                span: Span::NONE,
            })
            .build(),
    );
    sm.transitions.push(
        TransitionBuilder::new(format!("Untag{}", sm.name), TransitionKind::Modify)
            .doc("Removes a tag from the resource.")
            .param("Tag", StateType::Str)
            .assert(
                in_tags(Expr::arg("Tag")),
                "InvalidParameterValue",
                "the tag does not exist on the resource",
            )
            .stmt(Stmt::Write {
                state: "tags".into(),
                value: Expr::Remove(Box::new(Expr::read("tags")), Box::new(Expr::arg("Tag"))),
                span: Span::NONE,
            })
            .build(),
    );
}

/// The golden Nimbus catalog.
pub fn catalog() -> Catalog {
    Catalog::from_specs(specs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::{check_catalog, TransitionKind};

    #[test]
    fn nimbus_catalog_parses_and_checks() {
        let specs = specs();
        let errs = check_catalog(&specs);
        assert!(errs.is_empty(), "golden catalog has errors: {:#?}", errs);
    }

    #[test]
    fn compute_has_28_sms() {
        let c = catalog();
        assert_eq!(c.service_sms("compute").len(), 28);
    }

    #[test]
    fn database_has_7_sms() {
        assert_eq!(catalog().service_sms("database").len(), 7);
    }

    #[test]
    fn firewall_has_8_sms_and_45_public_apis() {
        let c = catalog();
        assert_eq!(c.service_sms("firewall").len(), 8);
        let public: usize = c
            .service_sms("firewall")
            .iter()
            .map(|sm| sm.transitions.iter().filter(|t| !t.internal).count())
            .sum();
        assert_eq!(public, 45);
    }

    #[test]
    fn k8s_has_6_sms() {
        assert_eq!(catalog().service_sms("k8s").len(), 6);
    }

    #[test]
    fn storage_has_7_sms() {
        assert_eq!(catalog().service_sms("storage").len(), 7);
    }

    #[test]
    fn every_sm_has_create_destroy_describe() {
        for sm in catalog().iter() {
            let has = |k: TransitionKind| sm.transitions.iter().any(|t| t.kind == k);
            assert!(has(TransitionKind::Create), "{} lacks create", sm.name);
            assert!(has(TransitionKind::Destroy), "{} lacks destroy", sm.name);
            assert!(has(TransitionKind::Describe), "{} lacks describe", sm.name);
        }
    }

    #[test]
    fn describe_transitions_are_pure() {
        use lce_spec::Stmt;
        for sm in catalog().iter() {
            for t in &sm.transitions {
                if t.kind == TransitionKind::Describe {
                    for s in t.all_stmts() {
                        assert!(
                            !matches!(s, Stmt::Write { .. } | Stmt::Call { .. }),
                            "{}::{} is a describe with side effects",
                            sm.name,
                            t.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn api_names_are_globally_unique() {
        let c = catalog();
        let mut names: Vec<&str> = c
            .iter()
            .flat_map(|sm| sm.transitions.iter().map(|t| t.name.as_str()))
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(
            before,
            names.len(),
            "duplicate API names across the catalog"
        );
    }

    #[test]
    fn compute_is_the_largest_service() {
        let c = catalog();
        let compute = c.api_count(Some("compute"));
        for svc in ["database", "firewall", "k8s"] {
            assert!(compute > c.api_count(Some(svc)));
        }
    }
}
