//! Providers: a golden behaviour model plus a documentation style.

use crate::docs::template::{DocFidelity, FidelityFilter};
use crate::docs::web::DocPage;
use crate::docs::{pdf, web};
use crate::{nimbus, stratus};
use lce_emulator::{Emulator, EmulatorConfig};
use lce_spec::Catalog;

/// How a provider publishes its documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocStyle {
    /// One consolidated, paginated PDF-style reference (the AWS model).
    ConsolidatedPdf,
    /// Scattered per-resource web pages (the Azure/GCP model).
    WebPages,
}

/// The rendered documentation corpus of a provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderedDocs {
    /// A single paginated document.
    Consolidated(String),
    /// A set of pages.
    Pages(Vec<DocPage>),
}

impl RenderedDocs {
    /// Total corpus size in bytes (a documentation-scale metric).
    pub fn byte_len(&self) -> usize {
        match self {
            RenderedDocs::Consolidated(s) => s.len(),
            RenderedDocs::Pages(pages) => pages.iter().map(|p| p.body.len()).sum(),
        }
    }
}

/// A synthetic cloud provider: name, golden catalog, documentation style.
#[derive(Debug, Clone)]
pub struct Provider {
    /// Provider name (`"nimbus"` or `"stratus"`).
    pub name: String,
    /// Documentation publication style.
    pub doc_style: DocStyle,
    /// The golden (authoritative) behaviour catalog — this plays the role
    /// of "the real cloud" in every experiment.
    pub catalog: Catalog,
}

impl Provider {
    /// The golden cloud: the authoritative behaviour model executed on the
    /// shared interpreter. Alignment diffs learned emulators against this.
    pub fn golden_cloud(&self) -> Emulator {
        Emulator::with_config(self.catalog.clone(), EmulatorConfig::framework())
            .named(format!("{}-golden", self.name))
    }

    /// Render the provider's documentation corpus at the given fidelity.
    /// Returns the corpus and the number of silently omitted clauses.
    pub fn render_docs(&self, fidelity: DocFidelity) -> (RenderedDocs, usize) {
        let mut filter = FidelityFilter::new(fidelity);
        let docs = match self.doc_style {
            DocStyle::ConsolidatedPdf => RenderedDocs::Consolidated(pdf::render_consolidated(
                &self.name,
                &self.catalog,
                &mut filter,
            )),
            DocStyle::WebPages => {
                RenderedDocs::Pages(web::render_pages(&self.name, &self.catalog, &mut filter))
            }
        };
        (docs, filter.omitted())
    }
}

/// The Nimbus provider (AWS-like: consolidated PDF docs, four services).
pub fn nimbus() -> Provider {
    Provider {
        name: "nimbus".into(),
        doc_style: DocStyle::ConsolidatedPdf,
        catalog: nimbus::catalog(),
    }
}

/// The Stratus provider (Azure-like: web-page docs, one compute service).
pub fn stratus() -> Provider {
    Provider {
        name: "stratus".into(),
        doc_style: DocStyle::WebPages,
        catalog: stratus::catalog(),
    }
}

/// All built-in providers.
pub fn all_providers() -> Vec<Provider> {
    vec![nimbus(), stratus()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_emulator::{ApiCall, Backend, Value};

    #[test]
    fn nimbus_golden_cloud_answers_calls() {
        let mut cloud = nimbus().golden_cloud();
        let resp = cloud.invoke(
            &ApiCall::new("CreateVpc")
                .arg_str("CidrBlock", "10.0.0.0/16")
                .arg_str("Region", "us-east"),
        );
        assert!(resp.is_ok(), "{:?}", resp.error);
        assert!(resp.field("VpcId").is_some());
    }

    #[test]
    fn stratus_golden_cloud_answers_calls() {
        let mut cloud = stratus().golden_cloud();
        let resp = cloud.invoke(
            &ApiCall::new("CreateVirtualNetwork")
                .arg_str("AddressSpace", "10.0.0.0/8")
                .arg_str("Location", "north"),
        );
        assert!(resp.is_ok(), "{:?}", resp.error);
    }

    #[test]
    fn nimbus_renders_consolidated_docs() {
        let (docs, omitted) = nimbus().render_docs(DocFidelity::Complete);
        assert_eq!(omitted, 0);
        match docs {
            RenderedDocs::Consolidated(text) => {
                assert!(
                    text.len() > 50_000,
                    "docs suspiciously small: {}",
                    text.len()
                );
                assert!(text.contains("==== Resource: Vpc ===="));
            }
            _ => panic!("nimbus must render a consolidated document"),
        }
    }

    #[test]
    fn stratus_renders_pages() {
        let (docs, _) = stratus().render_docs(DocFidelity::Complete);
        match docs {
            RenderedDocs::Pages(pages) => {
                assert_eq!(pages.len(), 8);
                assert!(pages.iter().any(|p| p.path.ends_with("virtual-network")));
            }
            _ => panic!("stratus must render pages"),
        }
    }

    #[test]
    fn underspecified_docs_omit_clauses() {
        let (_, omitted) = nimbus().render_docs(DocFidelity::OmitAsserts { every_nth: 5 });
        assert!(omitted > 10, "expected many omissions, got {}", omitted);
    }

    #[test]
    fn golden_cloud_dependency_violation_example() {
        // The paper's §2 example: DeleteVpc with an attached internet
        // gateway must fail with DependencyViolation (Moto got this wrong).
        let mut cloud = nimbus().golden_cloud();
        let vpc = cloud
            .invoke(
                &ApiCall::new("CreateVpc")
                    .arg_str("CidrBlock", "10.0.0.0/16")
                    .arg_str("Region", "us-east"),
            )
            .field("VpcId")
            .unwrap()
            .clone();
        let igw = cloud
            .invoke(&ApiCall::new("CreateInternetGateway"))
            .field("InternetGatewayId")
            .unwrap()
            .clone();
        let resp = cloud.invoke(
            &ApiCall::new("AttachInternetGateway")
                .arg("InternetGatewayId", igw)
                .arg("VpcId", vpc.clone()),
        );
        assert!(resp.is_ok(), "{:?}", resp.error);
        let resp = cloud.invoke(&ApiCall::new("DeleteVpc").arg("VpcId", vpc));
        assert_eq!(resp.error_code(), Some("DependencyViolation"));
        let _ = Value::Null;
    }
}
