//! The Nimbus documentation renderer: one consolidated, paginated,
//! PDF-style API reference (the AWS model — "a set of PDFs, spanning
//! hundreds to thousands of pages […] with clear pagination with marked
//! sections indexed on resource names", §4.1).

use crate::docs::template::{render_body, Clause, FidelityFilter};
use lce_spec::{Catalog, SmSpec};
use std::fmt::Write;

/// Approximate number of text lines per rendered "page".
const LINES_PER_PAGE: usize = 48;

/// Render the whole catalog as one consolidated paginated document.
pub fn render_consolidated(
    provider: &str,
    catalog: &Catalog,
    filter: &mut FidelityFilter,
) -> String {
    // First render the body of every resource section, so the table of
    // contents can carry real page numbers.
    let sections: Vec<(String, Vec<String>)> = catalog
        .iter()
        .map(|sm| (sm.name.to_string(), render_resource_lines(sm, filter)))
        .collect();

    let mut header = Vec::new();
    header.push(format!(
        "{} CLOUD — COMPLETE API REFERENCE",
        provider.to_uppercase()
    ));
    header.push(String::new());
    header.push("TABLE OF CONTENTS".to_string());

    // Compute page numbers: the TOC occupies page 1..k, sections follow.
    let toc_lines = sections.len() + header.len();
    let toc_pages = toc_lines.div_ceil(LINES_PER_PAGE);
    let mut page = toc_pages + 1;
    let mut toc = Vec::new();
    let mut placed: Vec<(usize, &(String, Vec<String>))> = Vec::new();
    for section in &sections {
        placed.push((page, section));
        toc.push(format!("  {} ...... page {}", section.0, page));
        page += section.1.len().div_ceil(LINES_PER_PAGE).max(1);
    }

    let mut out = String::new();
    let mut state = PageState {
        line_no: 0,
        page_no: 1,
    };
    for l in header.iter().chain(toc.iter()) {
        emit(&mut out, &mut state, l);
    }
    for (start_page, (_, lines)) in placed {
        // Pad to the section's promised page boundary.
        while (state.line_no / LINES_PER_PAGE) + 1 < start_page {
            emit(&mut out, &mut state, "");
        }
        for l in lines {
            emit(&mut out, &mut state, l);
        }
    }
    out
}

struct PageState {
    line_no: usize,
    page_no: usize,
}

fn emit(out: &mut String, state: &mut PageState, line: &str) {
    if state.line_no.is_multiple_of(LINES_PER_PAGE) {
        let _ = writeln!(out, "--- Page {} ---", state.page_no);
        state.page_no += 1;
    }
    let _ = writeln!(out, "{}", line);
    state.line_no += 1;
}

/// Render one resource section as raw lines (no pagination).
fn render_resource_lines(sm: &SmSpec, filter: &mut FidelityFilter) -> Vec<String> {
    let mut lines = Vec::new();
    lines.push(format!("==== Resource: {} ====", sm.name));
    lines.push(format!("Service: {}", sm.service));
    if !sm.doc.is_empty() {
        lines.push(format!("Summary: {}", sm.doc));
    }
    lines.push(format!("Identifier parameter: {}", sm.id_param));
    match &sm.parent {
        Some((p, via)) => lines.push(format!("Contained in: {} (via attribute `{}`)", p, via)),
        None => lines.push("Contained in: (none)".to_string()),
    }
    lines.push(String::new());
    lines.push("State attributes:".to_string());
    for s in &sm.states {
        let mut l = format!("  - {}: {}", s.name, s.ty);
        if s.nullable {
            l.push_str(" [nullable]");
        }
        if let Some(d) = &s.default {
            let _ = write!(l, " [default: {}]", d);
        }
        lines.push(l);
    }
    for t in &sm.transitions {
        lines.push(String::new());
        if t.internal {
            lines.push(format!("Internal API: {}", t.name));
        } else {
            lines.push(format!("API: {}", t.name));
        }
        lines.push(format!("Category: {}", t.kind));
        if !t.doc.is_empty() {
            lines.push(format!("Summary: {}", t.doc));
        }
        if t.params.is_empty() {
            lines.push("Parameters: none".to_string());
        } else {
            lines.push("Parameters:".to_string());
            for p in &t.params {
                let opt = if p.optional { " [optional]" } else { "" };
                lines.push(format!("  - {}: {}{}", p.name, p.ty, opt));
            }
        }
        let clauses = filter.filter(render_body(&t.body));
        if clauses.is_empty() {
            lines.push("Behavior: none documented.".to_string());
        } else {
            lines.push("Behavior:".to_string());
            for Clause { depth, text } in clauses {
                let indent = "  ".repeat(depth + 1);
                lines.push(format!("{}- {}", indent, text));
            }
        }
    }
    lines.push(String::new());
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::template::DocFidelity;
    use lce_spec::parse_catalog;

    fn toy_catalog() -> Catalog {
        Catalog::from_specs(
            parse_catalog(
                r#"
            sm Vpc { service "compute"; doc "A VPC.";
              states { cidr: str; n: int = 0; }
              transition CreateVpc(CidrBlock: str) kind create doc "Creates." {
                assert(len(arg(CidrBlock)) > 0) else MissingParameter "need cidr";
                write(cidr, arg(CidrBlock));
              }
              transition Bump() kind modify internal { write(n, read(n) + 1); }
            }
            "#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn renders_section_headers_and_toc() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let doc = render_consolidated("nimbus", &toy_catalog(), &mut f);
        assert!(doc.contains("NIMBUS CLOUD — COMPLETE API REFERENCE"));
        assert!(doc.contains("TABLE OF CONTENTS"));
        assert!(doc.contains("Vpc ...... page"));
        assert!(doc.contains("==== Resource: Vpc ===="));
        assert!(doc.contains("--- Page 1 ---"));
    }

    #[test]
    fn renders_behavior_clauses() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let doc = render_consolidated("nimbus", &toy_catalog(), &mut f);
        assert!(doc.contains("- Sets attribute `cidr` to `arg(CidrBlock)`."));
        assert!(doc.contains("Fails with error `MissingParameter`"));
    }

    #[test]
    fn internal_apis_marked() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let doc = render_consolidated("nimbus", &toy_catalog(), &mut f);
        assert!(doc.contains("Internal API: Bump"));
    }

    #[test]
    fn parameters_section_lists_types() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let doc = render_consolidated("nimbus", &toy_catalog(), &mut f);
        assert!(doc.contains("  - CidrBlock: str"));
    }
}
