//! The Stratus documentation renderer: scattered per-resource web pages
//! (the Azure/GCP model — "relevant information is scattered across
//! websites, and no consolidated PDF files exist", §4.1).
//!
//! The page markup is markdown-flavoured and deliberately *different* from
//! the Nimbus PDF format: property tables instead of attribute lists,
//! numbered behaviour steps with `If`/`Else:` keywords instead of bulleted
//! `When`/`Otherwise:` clauses, and one page per resource. The wrangler
//! needs a separate adapter for it — which is exactly the provider-specific
//! effort the paper's multi-cloud experiment measures.

use crate::docs::template::{render_body, Clause, FidelityFilter};
use lce_spec::{Catalog, SmSpec};
use std::fmt::Write;

/// One rendered web page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocPage {
    /// Pseudo-URL path, e.g. `docs/stratus/compute/virtual-network`.
    pub path: String,
    /// Page title.
    pub title: String,
    /// Markdown-ish body.
    pub body: String,
}

/// Render the catalog as one page per resource.
pub fn render_pages(
    provider: &str,
    catalog: &Catalog,
    filter: &mut FidelityFilter,
) -> Vec<DocPage> {
    catalog
        .iter()
        .map(|sm| {
            let slug = slugify(sm.name.as_str());
            DocPage {
                path: format!("docs/{}/{}/{}", provider, sm.service, slug),
                title: format!("{} — {} reference", sm.name, provider),
                body: render_page_body(sm, filter),
            }
        })
        .collect()
}

fn slugify(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn render_page_body(sm: &SmSpec, filter: &mut FidelityFilter) -> String {
    let mut b = String::new();
    let _ = writeln!(b, "# Resource: {}", sm.name);
    if !sm.doc.is_empty() {
        let _ = writeln!(b, "> {}", sm.doc);
    }
    let _ = writeln!(b);
    let _ = writeln!(b, "**Service:** {}", sm.service);
    let _ = writeln!(b, "**Identifier argument:** {}", sm.id_param);
    match &sm.parent {
        Some((p, via)) => {
            let _ = writeln!(b, "**Parent:** {} via `{}`", p, via);
        }
        None => {
            let _ = writeln!(b, "**Parent:** none");
        }
    }
    let _ = writeln!(b);
    let _ = writeln!(b, "## Properties");
    let _ = writeln!(b, "| Name | Type | Flags | Default |");
    let _ = writeln!(b, "|---|---|---|---|");
    for s in &sm.states {
        let flags = if s.nullable { "nullable" } else { "" };
        let default = s
            .default
            .as_ref()
            .map(|d| d.to_string())
            .unwrap_or_default();
        let _ = writeln!(b, "| {} | {} | {} | {} |", s.name, s.ty, flags, default);
    }
    for t in &sm.transitions {
        let _ = writeln!(b);
        let _ = writeln!(b, "## Operation: {}", t.name);
        let _ = writeln!(b, "*Category:* {}", t.kind);
        if t.internal {
            let _ = writeln!(b, "*Visibility:* internal");
        }
        if !t.doc.is_empty() {
            let _ = writeln!(b, "*Summary:* {}", t.doc);
        }
        if t.params.is_empty() {
            let _ = writeln!(b, "*Request parameters:* none");
        } else {
            let _ = writeln!(b, "*Request parameters:*");
            for p in &t.params {
                let opt = if p.optional { " (optional)" } else { "" };
                let _ = writeln!(b, "* `{}: {}`{}", p.name, p.ty, opt);
            }
        }
        let clauses = filter.filter(render_body(&t.body));
        if clauses.is_empty() {
            let _ = writeln!(b, "*Behavior:* none documented.");
        } else {
            let _ = writeln!(b, "*Behavior:*");
            let mut counters = vec![0usize];
            for Clause { depth, text } in clauses {
                counters.truncate(depth + 1);
                while counters.len() < depth + 1 {
                    counters.push(0);
                }
                // Translate the shared clause dialect into this provider's
                // keywords.
                let text = text
                    .replace("When `", "If `")
                    .replace("Otherwise:", "Else:");
                let indent = "   ".repeat(depth);
                if text == "Else:" {
                    let _ = writeln!(b, "{}{}", indent, text);
                } else {
                    let n = counters.last_mut().expect("non-empty");
                    *n += 1;
                    let _ = writeln!(b, "{}{}. {}", indent, n, text);
                }
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::template::DocFidelity;
    use lce_spec::parse_catalog;

    fn toy() -> Catalog {
        Catalog::from_specs(
            parse_catalog(
                r#"
            sm VirtualNetwork { service "compute"; doc "A vnet.";
              states { space: str; ddos: bool = false; }
              transition CreateVirtualNetwork(AddressSpace: str, Ddos: bool?) kind create {
                write(space, arg(AddressSpace));
                if !is_null(arg(Ddos)) {
                  write(ddos, arg(Ddos));
                } else {
                  write(ddos, false);
                }
              }
            }
            "#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn one_page_per_resource_with_slug() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let pages = render_pages("stratus", &toy(), &mut f);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].path, "docs/stratus/compute/virtual-network");
    }

    #[test]
    fn page_has_property_table() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let pages = render_pages("stratus", &toy(), &mut f);
        assert!(pages[0].body.contains("| space | str |"));
        assert!(pages[0].body.contains("| ddos | bool |  | false |"));
    }

    #[test]
    fn behavior_steps_numbered_with_if_else() {
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        let pages = render_pages("stratus", &toy(), &mut f);
        let body = &pages[0].body;
        assert!(body.contains("1. Sets attribute `space` to `arg(AddressSpace)`."));
        assert!(body.contains("2. If `!is_null(arg(Ddos))`:"));
        assert!(body.contains("   1. Sets attribute `ddos` to `arg(Ddos)`."));
        assert!(body.contains("Else:"));
    }
}
