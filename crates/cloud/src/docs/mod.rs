//! Documentation rendering: golden specs → provider-styled documentation.

pub mod pdf;
pub mod template;
pub mod web;

pub use template::{Clause, DocFidelity, FidelityFilter};
pub use web::DocPage;
