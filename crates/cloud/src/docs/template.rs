//! Shared behaviour-clause templates.
//!
//! Cloud documentation describes API behaviour in stylized prose. Our
//! renderers generate that prose from the golden specs through a fixed set
//! of clause templates; the wrangler and synthesizer later recover the
//! behaviour by parsing the clauses back. This mirrors the paper's
//! observation that cloud docs are *semi-structured*: "The documentation
//! follows a set template indexed by resource type and has ordered
//! information for each API" (§4.1).
//!
//! Clause forms (each carries a nesting depth):
//!
//! * `Sets attribute `var` to `expr`.`
//! * `Fails with error `Code` ("message") unless `pred`.`
//! * `Invokes `Api` on `target` with arguments [`a`, `b`].`
//! * `Returns field `Field` as `expr`.`
//! * `When `pred`:` … `Otherwise:` … (children at depth+1)

use lce_spec::{print_expr, Stmt};

/// One behaviour clause with its nesting depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Nesting depth (0 = top level of the behaviour list).
    pub depth: usize,
    /// The clause text (no list marker, no indentation).
    pub text: String,
}

impl Clause {
    fn new(depth: usize, text: String) -> Self {
        Clause { depth, text }
    }
}

/// Render a transition body into a flat clause list.
pub fn render_body(body: &[Stmt]) -> Vec<Clause> {
    let mut out = Vec::new();
    for s in body {
        render_stmt(s, 0, &mut out);
    }
    out
}

fn render_stmt(stmt: &Stmt, depth: usize, out: &mut Vec<Clause>) {
    match stmt {
        Stmt::Write { state, value, .. } => {
            out.push(Clause::new(
                depth,
                format!("Sets attribute `{}` to `{}`.", state, print_expr(value)),
            ));
        }
        Stmt::Assert {
            pred,
            error,
            message,
            ..
        } => {
            out.push(Clause::new(
                depth,
                format!(
                    "Fails with error `{}` ({:?}) unless `{}`.",
                    error,
                    message,
                    print_expr(pred)
                ),
            ));
        }
        Stmt::Call {
            target, api, args, ..
        } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| format!("`{}`", print_expr(a)))
                .collect();
            out.push(Clause::new(
                depth,
                format!(
                    "Invokes `{}` on `{}` with arguments [{}].",
                    api,
                    print_expr(target),
                    rendered.join(", ")
                ),
            ));
        }
        Stmt::Emit { field, value, .. } => {
            out.push(Clause::new(
                depth,
                format!("Returns field `{}` as `{}`.", field, print_expr(value)),
            ));
        }
        Stmt::If {
            pred, then, els, ..
        } => {
            out.push(Clause::new(depth, format!("When `{}`:", print_expr(pred))));
            for s in then {
                render_stmt(s, depth + 1, out);
            }
            if !els.is_empty() {
                out.push(Clause::new(depth, "Otherwise:".to_string()));
                for s in els {
                    render_stmt(s, depth + 1, out);
                }
            }
        }
    }
}

/// Controls how faithful the rendered documentation is to the golden spec.
/// Underspecified documentation (§6) is modelled by omitting a fraction of
/// the failure clauses — the extractor cannot know what is missing, so only
/// the alignment phase can recover the behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocFidelity {
    /// Every behaviour clause is documented.
    Complete,
    /// Every `n`-th failure (`assert`) clause is silently omitted,
    /// counting across the whole corpus (1-based: `every_nth = 4` drops
    /// clauses number 4, 8, 12, …).
    OmitAsserts {
        /// Period of omission.
        every_nth: usize,
    },
}

/// Stateful omission filter applied while rendering a corpus.
#[derive(Debug)]
pub struct FidelityFilter {
    fidelity: DocFidelity,
    assert_counter: usize,
    omitted: usize,
}

impl FidelityFilter {
    /// Create a filter for the given fidelity level.
    pub fn new(fidelity: DocFidelity) -> Self {
        FidelityFilter {
            fidelity,
            assert_counter: 0,
            omitted: 0,
        }
    }

    /// Number of clauses omitted so far.
    pub fn omitted(&self) -> usize {
        self.omitted
    }

    /// Apply the filter to a clause list.
    pub fn filter(&mut self, clauses: Vec<Clause>) -> Vec<Clause> {
        match self.fidelity {
            DocFidelity::Complete => clauses,
            DocFidelity::OmitAsserts { every_nth } => {
                let n = every_nth.max(1);
                clauses
                    .into_iter()
                    .filter(|c| {
                        if c.text.starts_with("Fails with error") {
                            self.assert_counter += 1;
                            if self.assert_counter.is_multiple_of(n) {
                                self.omitted += 1;
                                return false;
                            }
                        }
                        true
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lce_spec::parse_sm;

    fn clauses_for(body_src: &str) -> Vec<Clause> {
        let src = format!(
            r#"sm A {{ service "s"; states {{ x: int = 0; flag: bool = false; }}
                transition T(N: int?) kind modify {{ {} }} }}"#,
            body_src
        );
        let sm = parse_sm(&src).unwrap();
        render_body(&sm.transition("T").unwrap().body)
    }

    #[test]
    fn write_clause() {
        let c = clauses_for("write(x, arg(N));");
        assert_eq!(c[0].text, "Sets attribute `x` to `arg(N)`.");
    }

    #[test]
    fn assert_clause_includes_code_and_message() {
        let c = clauses_for(r#"assert(arg(N) > 0) else Bad "must be positive";"#);
        assert_eq!(
            c[0].text,
            "Fails with error `Bad` (\"must be positive\") unless `arg(N) > 0`."
        );
    }

    #[test]
    fn if_else_produces_nested_depths() {
        let c =
            clauses_for("if read(flag) { write(x, 1); } else { write(x, 2); emit(Out, read(x)); }");
        let texts: Vec<(usize, &str)> = c.iter().map(|c| (c.depth, c.text.as_str())).collect();
        assert_eq!(texts[0], (0, "When `read(flag)`:"));
        assert_eq!(texts[1].0, 1);
        assert_eq!(texts[2], (0, "Otherwise:"));
        assert_eq!(texts[3].0, 1);
        assert_eq!(texts[4], (1, "Returns field `Out` as `read(x)`."));
    }

    #[test]
    fn fidelity_complete_keeps_everything() {
        let c = clauses_for(r#"assert(read(flag)) else E "m"; write(x, 1);"#);
        let mut f = FidelityFilter::new(DocFidelity::Complete);
        assert_eq!(f.filter(c.clone()).len(), c.len());
        assert_eq!(f.omitted(), 0);
    }

    #[test]
    fn fidelity_omits_every_nth_assert() {
        let c = clauses_for(
            r#"assert(read(flag)) else E "a";
               assert(read(flag)) else E "b";
               write(x, 1);"#,
        );
        let mut f = FidelityFilter::new(DocFidelity::OmitAsserts { every_nth: 2 });
        let kept = f.filter(c);
        assert_eq!(f.omitted(), 1);
        assert!(kept.iter().any(|c| c.text.contains("\"a\"")));
        assert!(!kept.iter().any(|c| c.text.contains("\"b\"")));
        assert!(kept.iter().any(|c| c.text.starts_with("Sets attribute")));
    }
}
