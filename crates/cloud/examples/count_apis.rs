fn main() {
    let c = lce_cloud::nimbus_provider().catalog;
    for svc in c.services() {
        let total: usize = c
            .service_sms(&svc)
            .iter()
            .map(|sm| sm.transitions.iter().filter(|t| !t.internal).count())
            .sum();
        println!("{svc}: {total} public APIs");
        for sm in c.service_sms(&svc) {
            let names: Vec<&str> = sm
                .transitions
                .iter()
                .filter(|t| !t.internal)
                .map(|t| t.name.as_str())
                .collect();
            println!("  {} ({}): {}", sm.name, names.len(), names.join(", "));
        }
    }
}
