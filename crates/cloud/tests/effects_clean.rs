//! CI gate: the effect analysis over both golden catalogs must produce a
//! clean report with non-trivial proof populations — at least one API
//! proven `ReadOnly` and at least one proven `RetrySafe` per catalog —
//! and a conflict matrix that is neither complete nor empty (some pairs
//! commute, some conflict). A regression here means either a catalog
//! gained an unprovable effect or the analysis lost precision.

use lce_cloud::{nimbus_provider, stratus_provider};
use lce_spec::{Catalog, CatalogEffects};

fn check(name: &str, catalog: &Catalog) {
    let fx = CatalogEffects::analyze(catalog);
    let ro = fx.read_only_count();
    let rs = fx.retry_safe_count();
    assert!(ro >= 1, "{name}: no API proven ReadOnly");
    assert!(rs >= 1, "{name}: no API proven RetrySafe");
    assert!(
        rs >= ro,
        "{name}: every ReadOnly API is RetrySafe by definition"
    );
    // Every describe-kind dispatchable API in the goldens is a pure read.
    for e in fx.dispatchable() {
        if e.kind == lce_spec::TransitionKind::Describe {
            assert!(e.read_only, "{name}: describe API {} not ReadOnly", e.api);
        }
    }
    let m = fx.matrix();
    assert!(!m.apis.is_empty(), "{name}: no dispatchable APIs");
    assert!(
        !m.conflicts.is_empty(),
        "{name}: a real catalog must have conflicting pairs"
    );
    assert!(
        m.commute_ratio() > 0.0,
        "{name}: a real catalog must have commuting pairs"
    );
    // The retry-safe API set feeding --retry-static is non-empty and only
    // names dispatchable APIs.
    let safe = fx.retry_safe_apis();
    assert!(!safe.is_empty(), "{name}: empty RetrySafe set");
    for api in &safe {
        assert!(fx.get(api).is_some(), "{name}: {api} not dispatchable");
    }
}

#[test]
fn nimbus_effects_are_clean_and_nontrivial() {
    check("nimbus", &nimbus_provider().catalog);
}

#[test]
fn stratus_effects_are_clean_and_nontrivial() {
    check("stratus", &stratus_provider().catalog);
}
