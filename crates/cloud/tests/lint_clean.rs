//! The golden catalogs are the analyzer's reference corpus: `lce lint
//! --deny warn` must be clean on both, and CI gates on exactly that. A
//! finding here means either a golden spec regressed (dead variant,
//! write-only variable, contradictory guard) or a lint got noisier —
//! both are worth failing the build over.

use lce_cloud::{nimbus_provider, stratus_provider};
use lce_spec::{lint_catalog, Diagnostic};

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn nimbus_golden_catalog_is_lint_clean() {
    let diags = lint_catalog(&nimbus_provider().catalog);
    assert!(
        diags.is_empty(),
        "nimbus golden catalog has lint findings:\n{}",
        render(&diags)
    );
}

#[test]
fn stratus_golden_catalog_is_lint_clean() {
    let diags = lint_catalog(&stratus_provider().catalog);
    assert!(
        diags.is_empty(),
        "stratus golden catalog has lint findings:\n{}",
        render(&diags)
    );
}

#[test]
fn seeded_defect_is_caught() {
    // The acceptance property of the CI gate: corrupting a golden spec
    // with a contradictory guard or a write-only variable must surface as
    // a finding. Take a real machine and seed both defects.
    let catalog = nimbus_provider().catalog;
    let mut sm = catalog
        .get(&lce_spec::SmName::new("Vpc"))
        .expect("Vpc exists")
        .clone();
    sm.states.push(lce_spec::StateDecl {
        name: "unobserved".into(),
        ty: lce_spec::StateType::Int,
        nullable: false,
        default: None,
    });
    for t in &mut sm.transitions {
        if t.name.as_str() == "CreateVpc" {
            t.body.push(lce_spec::Stmt::Write {
                state: "unobserved".into(),
                value: lce_spec::Expr::int(1),
                span: lce_spec::Span::NONE,
            });
            // `state` defaults to `available`; this guard can never pass.
            t.body.push(lce_spec::Stmt::Assert {
                pred: lce_spec::parse_expr("read(state) != available").unwrap(),
                error: lce_spec::ErrorCode::new("InvalidVpcState"),
                message: "seeded contradiction".into(),
                span: lce_spec::Span::NONE,
            });
        }
    }
    let diags = lce_spec::lint_sm(&sm, Some(&catalog));
    let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    assert!(
        codes.contains(&"L005"),
        "write-only var missed: {:?}",
        codes
    );
    assert!(codes.contains(&"L002"), "contradiction missed: {:?}", codes);
}
