//! Seeded-defect tests for the IR verifier, plus the lowering-soundness
//! property and the fire/quiet fixtures for the IR-emitted lint codes
//! (L012/L013 — exempted from the spec-side registry coverage test, which
//! points here).
//!
//! Each seeded-defect test clones a known-good compiled catalog, corrupts
//! exactly one table or opcode the way a buggy lowering or optimization
//! pass would, and asserts the verifier rejects it with an opcode-addressed
//! diagnostic carrying the expected message. The defects cover every
//! theorem class: register/type soundness, jump-target validity,
//! table-index bounds, dispatch exhaustiveness, journal-mode soundness and
//! arg-block statement-freedom.

use lce_cloud::{nimbus_provider, stratus_provider};
use lce_ir::program::{CompiledCatalog, JournalMode, Op};
use lce_ir::{compile, ir_lints, optimize, verify, OptLevel, VerifyError};
use lce_spec::{
    parse_catalog, BinOp, Catalog, Expr, Severity, SmBuilder, StateType, TransitionBuilder,
    TransitionKind,
};
use proptest::prelude::*;

// ------------------------------------------------------------- fixture

/// A machine exercising every verifier surface: a create body that calls
/// a modify (putting `PrimeWidget` in the create closure), an assert with
/// a short-circuit guard (jumps + assert table), and a call site with a
/// deferred argument block.
fn widget_catalog() -> Catalog {
    Catalog::from_specs(
        parse_catalog(
            r#"
            sm Widget {
              service "wid";
              states { depth: int = 0; tag: str?; }
              transition CreateWidget(Tag: str?) kind create {
                write(depth, 1);
                write(tag, arg(Tag));
                call(self_id(), PrimeWidget, []);
              }
              transition PrimeWidget() kind modify {
                write(depth, read(depth) + 1);
              }
              transition SetDepth(N: int) kind modify {
                assert(arg(N) >= 0 && arg(N) < 100) else ValidationError "out of range";
                write(depth, arg(N));
              }
              transition PokeWidget(N: int) kind modify {
                call(self_id(), SetDepth, [arg(N) + 1]);
              }
              transition DeleteWidget() kind destroy { }
            }
            "#,
        )
        .unwrap(),
    )
}

fn compiled() -> CompiledCatalog {
    compile(&widget_catalog()).expect("fixture must compile")
}

/// (sm index, transition index) of an API in the fixture.
fn find(cc: &CompiledCatalog, api: &str) -> (usize, usize) {
    for (si, sm) in cc.sms.iter().enumerate() {
        for (ti, t) in sm.transitions.iter().enumerate() {
            if t.name.as_str() == api {
                return (si, ti);
            }
        }
    }
    panic!("{} not in fixture", api);
}

/// Assert the verifier rejects `cc`, that the diagnostic carries the
/// expected message fragment, and return the error for address checks.
fn rejected(cc: &CompiledCatalog, fragment: &str) -> VerifyError {
    let err = verify(cc).expect_err("seeded defect must be rejected");
    assert!(
        err.message.contains(fragment),
        "expected `{}` in `{}`",
        fragment,
        err.message
    );
    err
}

// -------------------------------------------------- clean-catalog checks

#[test]
fn fixture_and_golden_catalogs_verify_clean_at_every_opt_level() {
    for catalog in [
        widget_catalog(),
        nimbus_provider().catalog,
        stratus_provider().catalog,
    ] {
        let cc = compile(&catalog).unwrap();
        let report = verify(&cc).unwrap();
        assert!(report.transitions > 0 && report.ops > 0);
        assert!(report.to_string().contains("transitions verified"));
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let mut opt = cc.clone();
            optimize(&mut opt, level).unwrap();
            verify(&opt).unwrap_or_else(|e| {
                panic!("opt level {} broke verification: {}", level, e.detail())
            });
        }
    }
}

#[test]
fn verify_report_counts_journal_modes() {
    let mut cc = compiled();
    let unopt = verify(&cc).unwrap();
    assert_eq!(unopt.writes_elided + unopt.writes_journaled, 0);
    assert!(unopt.writes_dynamic > 0);
    optimize(&mut cc, OptLevel::O1).unwrap();
    let opt = verify(&cc).unwrap();
    // The fixture's create body writes are elidable; PokeWidget's callee
    // is in no create closure... but SetDepth is called from PokeWidget
    // only, so its write journals unconditionally.
    assert!(opt.writes_elided > 0, "{}", opt);
    assert!(opt.writes_journaled > 0, "{}", opt);
}

// ------------------------------------------------------- seeded defects

#[test]
fn backward_jump_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "SetDepth");
    // A pass that rewrote a jump without re-indexing would do this.
    cc.sms[si].transitions[ti].code[2] = Op::Jump { target: 0 };
    let err = rejected(&cc, "backward jump to op 0");
    let addr = err.addr.expect("opcode-addressed");
    assert_eq!((addr.block, addr.pc), (None, 2));
    assert!(err.detail().contains("op 2"), "{}", err.detail());
    assert!(err.to_string().contains("SetDepth"), "{}", err);
}

#[test]
fn out_of_bounds_jump_target_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "SetDepth");
    let len = cc.sms[si].transitions[ti].code.len();
    cc.sms[si].transitions[ti].code[2] = Op::Jump {
        target: (len + 7) as u32,
    };
    rejected(&cc, "out of bounds");
}

#[test]
fn unreachable_opcode_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PrimeWidget");
    // Jump over opcode 1: nothing can reach it, and the verifier refuses
    // to certify code it cannot type.
    cc.sms[si].transitions[ti].code[0] = Op::Jump { target: 2 };
    let err = rejected(&cc, "unreachable opcode");
    assert_eq!(err.addr.unwrap().pc, 1);
}

#[test]
fn uninitialized_register_read_is_rejected() {
    // The register-pool hazard: files are recycled, never cleared, so a
    // read before def would observe a stale value — a silent wrong
    // answer, not a crash. The verifier proves init-before-use instead.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PrimeWidget");
    let t = &mut cc.sms[si].transitions[ti];
    t.n_regs += 1;
    let fresh = t.n_regs - 1;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Write { .. }))
        .unwrap();
    if let Op::Write { src, .. } = &mut t.code[pc] {
        *src = fresh;
    }
    let err = rejected(
        &cc,
        &format!("read of possibly-uninitialized register r{}", fresh),
    );
    assert_eq!(err.addr.unwrap().pc, pc);
}

#[test]
fn type_confused_register_file_is_rejected() {
    // A register index past the file is the other shape of type
    // confusion: the defect a miscounted-allocation bug would produce.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PrimeWidget");
    let t = &mut cc.sms[si].transitions[ti];
    let big = t.n_regs + 3;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Write { .. }))
        .unwrap();
    if let Op::Write { src, .. } = &mut t.code[pc] {
        *src = big;
    }
    rejected(&cc, &format!("register r{} exceeds file size", big));
}

#[test]
fn dangling_constant_index_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "CreateWidget");
    let t = &mut cc.sms[si].transitions[ti];
    let n_consts = t.consts.len() as u32;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Const { .. }))
        .unwrap();
    if let Op::Const { idx, .. } = &mut t.code[pc] {
        *idx = n_consts;
    }
    rejected(&cc, &format!("constant index {} out of bounds", n_consts));
}

#[test]
fn non_total_error_path_is_rejected() {
    // An assert whose error info points past the table would execute
    // fine until the guard first fails — then fault with no compiled
    // error to raise. Totality of error paths is checked statically.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "SetDepth");
    let t = &mut cc.sms[si].transitions[ti];
    let n = t.asserts.len() as u32;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Assert { .. }))
        .expect("fixture has an assert");
    if let Op::Assert { info, .. } = &mut t.code[pc] {
        *info = n;
    }
    let err = rejected(&cc, &format!("assert-path index {} out of bounds", n));
    assert_eq!(err.addr.unwrap().pc, pc);
}

#[test]
fn dangling_write_declaration_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "SetDepth");
    let t = &mut cc.sms[si].transitions[ti];
    let n = t.writes.len() as u32;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Write { .. }))
        .unwrap();
    if let Op::Write { decl, .. } = &mut t.code[pc] {
        *decl = n;
    }
    rejected(&cc, &format!("write-declaration index {} out of bounds", n));
}

#[test]
fn dangling_call_site_index_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PokeWidget");
    let t = &mut cc.sms[si].transitions[ti];
    let n = t.sites.len() as u32;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Call { .. }))
        .unwrap();
    if let Op::Call { site, .. } = &mut t.code[pc] {
        *site = n;
    }
    rejected(&cc, &format!("call-site index {} out of bounds", n));
}

#[test]
fn dangling_statement_span_is_rejected() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "SetDepth");
    let t = &mut cc.sms[si].transitions[ti];
    let n = t.stmt_spans.len() as u32;
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Bump { .. }))
        .unwrap();
    if let Op::Bump { stmt } = &mut t.code[pc] {
        *stmt = n;
    }
    rejected(&cc, &format!("statement-span index {} out of bounds", n));
}

#[test]
fn short_circuit_bin_is_rejected() {
    // `&&`/`||` must lower to jumps (the right operand may fault and must
    // not evaluate eagerly); a `Bin` carrying one is a lowering bug.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "SetDepth");
    let t = &mut cc.sms[si].transitions[ti];
    let pc = t
        .code
        .iter()
        .position(|op| matches!(op, Op::Bin { .. }))
        .expect("fixture has comparisons");
    if let Op::Bin { op, .. } = &mut t.code[pc] {
        *op = BinOp::And;
    }
    rejected(&cc, "short-circuit operator in `Bin`");
}

#[test]
fn unjournaled_write_outside_create_is_rejected() {
    // Elide is only sound where rollback deletes the whole instance
    // anyway (a create body). Anywhere else a failed later statement
    // could not restore this write.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PrimeWidget");
    for op in &mut cc.sms[si].transitions[ti].code {
        if let Op::Write { journal, .. } = op {
            *journal = JournalMode::Elide;
        }
    }
    let err = rejected(&cc, "journal elision outside a create body");
    assert!(err.addr.is_some());
}

#[test]
fn unconditional_journal_inside_create_closure_is_rejected() {
    // PrimeWidget is called from CreateWidget's body, so it can run with
    // the created-instance marker set; journaling unconditionally there
    // would journal (and on rollback resurrect state for) the instance
    // the journal is about to delete wholesale.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PrimeWidget");
    for op in &mut cc.sms[si].transitions[ti].code {
        if let Op::Write { journal, .. } = op {
            *journal = JournalMode::Journal;
        }
    }
    rejected(&cc, "unconditional journaling inside the create closure");
}

#[test]
fn statement_opcode_in_arg_block_is_rejected() {
    // Deferred argument blocks are expressions; a statement opcode inside
    // one would run effects during argument evaluation.
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PokeWidget");
    let block = &mut cc.sms[si].transitions[ti].sites[0].args[0];
    block.code.push(Op::Bump { stmt: 0 });
    let err = rejected(&cc, "statement opcode in a deferred argument block");
    let addr = err.addr.unwrap();
    assert_eq!(addr.block, Some((0, 0)));
    assert!(err.detail().contains("site 0 arg 0"), "{}", err.detail());
}

#[test]
fn arg_block_result_must_be_defined_on_every_path() {
    let mut cc = compiled();
    let (si, ti) = find(&cc, "PokeWidget");
    let t = &mut cc.sms[si].transitions[ti];
    t.n_regs += 1;
    let fresh = t.n_regs - 1;
    t.sites[0].args[0].result = fresh;
    rejected(
        &cc,
        &format!(
            "argument result register r{} not defined on every path",
            fresh
        ),
    );
}

#[test]
fn missing_dispatch_entry_is_rejected() {
    let mut cc = compiled();
    cc.dispatch
        .remove("SetDepth")
        .expect("fixture dispatches SetDepth");
    rejected(&cc, "dispatch");
}

#[test]
fn tampered_api_names_are_rejected() {
    let mut cc = compiled();
    cc.api_names.pop();
    rejected(&cc, "api_names is not the sorted multiset");
}

#[test]
fn tampered_sm_index_is_rejected() {
    let mut cc = compiled();
    let name = cc.sms[0].name.clone();
    if let Some(v) = cc.sm_index.get_mut(&name) {
        *v += 1;
    }
    rejected(&cc, "sm_index");
}

// ------------------------------------------------- IR lints (L012/L013)

#[test]
fn l012_fires_on_shadowed_transition() {
    let catalog = Catalog::from_specs(
        parse_catalog(
            r#"
            sm Disk {
              service "blk";
              states { size: int = 1; }
              transition CreateDisk() kind create { }
              transition ResizeDisk(N: int) kind modify { write(size, arg(N)); }
              transition ResizeDisk() kind modify { write(size, 0); }
              transition DeleteDisk() kind destroy { }
            }
            "#,
        )
        .unwrap(),
    );
    let cc = compile(&catalog).unwrap();
    let diags = ir_lints(&cc);
    let hit = diags
        .iter()
        .find(|d| d.code == "L012")
        .expect("shadowed ResizeDisk must fire L012");
    assert_eq!(hit.severity, Severity::Warn);
    assert!(hit.message.contains("shadowed by an earlier declaration"));
    assert!(hit.span.line > 0, "lint must land on a spec span");
}

#[test]
fn l012_fires_on_ambiguous_uncalled_api_and_spares_called_ones() {
    let catalog = Catalog::from_specs(
        parse_catalog(
            r#"
            sm Alpha {
              service "a";
              states { n: int = 0; }
              transition CreateAlpha() kind create { call(self_id(), Poke, []); }
              transition Poke() kind modify { write(n, 1); }
              transition Tickle() kind modify { write(n, 2); }
              transition DeleteAlpha() kind destroy { }
            }
            sm Beta {
              service "b";
              states { n: int = 0; }
              transition CreateBeta() kind create { }
              transition Poke() kind modify { write(n, 1); }
              transition Tickle() kind modify { write(n, 2); }
              transition DeleteBeta() kind destroy { }
            }
            "#,
        )
        .unwrap(),
    );
    let cc = compile(&catalog).unwrap();
    // Both `Poke` and `Tickle` are ambiguous (absent from top-level
    // dispatch), but a call site keeps `Poke` reachable via per-SM
    // dispatch — only `Tickle` is dead.
    assert!(!cc.dispatch.contains_key("Poke"));
    let diags = ir_lints(&cc);
    let l012: Vec<_> = diags.iter().filter(|d| d.code == "L012").collect();
    assert_eq!(l012.len(), 2, "{:?}", l012);
    assert!(l012
        .iter()
        .all(|d| d.transition.as_ref().map(|t| t.as_str()) == Some("Tickle")));
    assert!(l012
        .iter()
        .all(|d| d.message.contains("ambiguous across SMs")));
}

#[test]
fn l013_fires_on_dead_double_write_and_stays_quiet_when_observed() {
    let fire = Catalog::from_specs(
        parse_catalog(
            r#"
            sm Gauge {
              service "g";
              states { level: int = 0; }
              transition CreateGauge() kind create { }
              transition ResetGauge() kind modify {
                write(level, 1);
                write(level, 2);
              }
              transition DeleteGauge() kind destroy { }
            }
            "#,
        )
        .unwrap(),
    );
    let cc = compile(&fire).unwrap();
    let diags = ir_lints(&cc);
    let hit = diags
        .iter()
        .find(|d| d.code == "L013")
        .expect("dead first write must fire L013");
    assert_eq!(hit.severity, Severity::Warn);
    assert!(hit.message.contains("overwritten before any possible read"));
    assert!(hit.span.line > 0);

    // A read between the writes observes the store: no lint.
    let quiet = Catalog::from_specs(
        parse_catalog(
            r#"
            sm Gauge {
              service "g";
              states { level: int = 0; mirror: int = 0; }
              transition CreateGauge() kind create { }
              transition ResetGauge() kind modify {
                write(level, 1);
                write(mirror, read(level));
                write(level, 2);
              }
              transition DeleteGauge() kind destroy { }
            }
            "#,
        )
        .unwrap(),
    );
    let cc = compile(&quiet).unwrap();
    assert!(
        ir_lints(&cc).iter().all(|d| d.code != "L013"),
        "observed store must not lint"
    );
}

#[test]
fn golden_catalogs_are_lint_clean() {
    for catalog in [nimbus_provider().catalog, stratus_provider().catalog] {
        let cc = compile(&catalog).unwrap();
        let diags = ir_lints(&cc);
        assert!(diags.is_empty(), "{:?}", diags);
    }
}

// ------------------------------------------------------- property tests

/// A well-formed single machine with scalar state and simple transitions
/// (mirrors the generator in `tests/differential.rs`).
fn arb_sm() -> impl Strategy<Value = lce_spec::SmSpec> {
    (
        "[A-Z][a-zA-Z]{1,8}",
        prop::collection::btree_map("[a-z][a-z0-9_]{0,8}", 0usize..3, 1..4usize),
    )
        .prop_map(|(name, states)| {
            let ty_of = |pick: usize| match pick {
                0 => StateType::Str,
                1 => StateType::Int,
                _ => StateType::Bool,
            };
            let mut b = SmBuilder::new(&name).service("prop").doc("generated");
            for (var, pick) in &states {
                b = b.state(var.clone(), ty_of(*pick));
            }
            b = b.transition(
                TransitionBuilder::new(format!("Create{}", name), TransitionKind::Create)
                    .doc("create")
                    .build(),
            );
            b = b.transition(
                TransitionBuilder::new(format!("Delete{}", name), TransitionKind::Destroy)
                    .doc("destroy")
                    .build(),
            );
            let mut describe =
                TransitionBuilder::new(format!("Describe{}", name), TransitionKind::Describe);
            for var in states.keys() {
                describe = describe.emit(format!("F_{}", var), Expr::read(var.clone()));
            }
            b = b.transition(describe.build());
            for (i, (var, pick)) in states.iter().enumerate() {
                b = b.transition(
                    TransitionBuilder::new(format!("Set{}{}", name, i), TransitionKind::Modify)
                        .param("V", ty_of(*pick))
                        .write(var.clone(), Expr::arg("V"))
                        .build(),
                );
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lowering soundness: every `compile()` output on a random valid
    /// spec passes `verify()`, and stays verified through every
    /// optimization level.
    #[test]
    fn lowered_programs_always_verify(sm in arb_sm()) {
        let catalog = Catalog::from_specs([sm]);
        let cc = compile(&catalog).expect("well-formed machine must compile");
        verify(&cc).expect("lowering must produce verifiable code");
        for level in [OptLevel::O1, OptLevel::O2] {
            let mut opt = cc.clone();
            optimize(&mut opt, level).expect("optimizer must preserve verification");
            verify(&opt).expect("optimized code must re-verify");
        }
    }
}
