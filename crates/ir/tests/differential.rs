//! Differential tests: the compiled engine against the interpreter oracle.
//!
//! Four layers of evidence that lowering preserves semantics:
//!
//! 1. Every golden evaluation scenario (Fig. 3 Nimbus + Stratus matrices
//!    and the §5 basic-functionality program) runs through [`DualBackend`]
//!    in panic-on-divergence mode — byte-identical responses, stores and
//!    digests on every call.
//! 2. Seeded random call soup against both golden catalogs: valid ids
//!    harvested from earlier responses, bogus ids, missing and mistyped
//!    parameters, unknown APIs — the error paths the scenarios never take.
//! 3. Synthesized catalogs (noisy doc extraction) either compile and stay
//!    byte-identical under random call soup, or are rejected by a lowering
//!    error that the spec checker independently reports.
//! 4. A property test over generated well-formed machines.

use lce_cloud::{nimbus_provider, stratus_provider, DocFidelity, Provider};
use lce_devops::run_program;
use lce_devops::scenarios::{basic_functionality, fig3_nimbus, fig3_stratus, Scenario};
use lce_emulator::{ApiCall, Backend, Emulator, EmulatorConfig, Value};
use lce_faults::store_digest;
use lce_ir::{compile, optimize, CompiledEmulator, DualBackend, OptLevel};
use lce_spec::{
    check_catalog, parse_catalog, ApiName, Catalog, Expr, Param, SmBuilder, StateType,
    TransitionBuilder, TransitionKind,
};
use lce_synth::{synthesize, PipelineConfig};
use lce_wrangle::wrangle_provider;
use proptest::prelude::*;
use std::sync::Arc;

// ------------------------------------------------------------------ rng

/// Self-contained splitmix64 so the soup is identical under any proptest
/// or rand implementation.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, per_cent: u64) -> bool {
        self.next() % 100 < per_cent
    }
}

// ---------------------------------------------------- golden scenarios

fn run_scenarios(catalog: &Catalog, scenarios: &[Scenario], label: &str) -> usize {
    let mut calls = 0;
    for (i, scenario) in scenarios.iter().enumerate() {
        let mut dual = DualBackend::new(catalog)
            .unwrap_or_else(|e| panic!("{} must compile: {}", label, e))
            .named(format!("{}-{}", label, i));
        // Edge-case scenarios intentionally include failing steps; the
        // property under test is byte-identity (DualBackend panics on any
        // divergence), not step success.
        let run = run_program(&scenario.program, &mut dual);
        assert!(
            !run.steps.is_empty(),
            "{} scenario {} ran no steps",
            label,
            i
        );
        let _ = run;
        calls += dual.calls();
    }
    calls
}

#[test]
fn golden_nimbus_scenarios_are_byte_identical() {
    let catalog = nimbus_provider().catalog;
    let mut calls = run_scenarios(&catalog, &fig3_nimbus(), "nimbus");
    let mut dual = DualBackend::new(&catalog).unwrap();
    let run = run_program(&basic_functionality(), &mut dual);
    assert!(run.all_ok(), "{:?}", run.error_codes());
    calls += dual.calls();
    assert!(
        calls > 50,
        "expected a substantial call count, got {}",
        calls
    );
}

#[test]
fn golden_stratus_scenarios_are_byte_identical() {
    let catalog = stratus_provider().catalog;
    let calls = run_scenarios(&catalog, &fig3_stratus(), "stratus");
    assert!(
        calls > 30,
        "expected a substantial call count, got {}",
        calls
    );
}

// ------------------------------------------------------ random call soup

/// A value loosely matching `ty`, sometimes deliberately mistyped, with
/// harvested values (including live resource ids) mixed in.
fn soup_value(rng: &mut Mix, ty: &StateType, harvested: &[Value]) -> Value {
    if !harvested.is_empty() && rng.chance(40) {
        return harvested[rng.below(harvested.len())].clone();
    }
    if rng.chance(10) {
        // Deliberately mistyped.
        return match rng.below(3) {
            0 => Value::Int(rng.next() as i64 % 1000),
            1 => Value::Bool(rng.chance(50)),
            _ => Value::str(format!("junk-{}", rng.below(100))),
        };
    }
    match ty {
        StateType::Str => Value::str(format!("s{}", rng.below(8))),
        StateType::Int => Value::Int(rng.below(64) as i64),
        StateType::Bool => Value::Bool(rng.chance(50)),
        StateType::Enum(alts) if !alts.is_empty() => {
            Value::Enum(alts[rng.below(alts.len())].clone())
        }
        StateType::Enum(_) => Value::Null,
        StateType::Ref(_) => match harvested.is_empty() {
            true => Value::str(format!("res-{:06x}", rng.below(0xffffff))),
            false => harvested[rng.below(harvested.len())].clone(),
        },
        StateType::List(inner) => {
            let n = rng.below(3);
            Value::List((0..n).map(|_| soup_value(rng, inner, harvested)).collect())
        }
    }
}

/// (api, sm id param, params) for every transition of every SM.
fn soup_menu(catalog: &Catalog) -> Vec<(ApiName, String, Vec<Param>)> {
    let mut menu = Vec::new();
    for sm in catalog.iter() {
        for t in &sm.transitions {
            menu.push((t.name.clone(), sm.id_param.clone(), t.params.clone()));
        }
    }
    assert!(!menu.is_empty());
    menu
}

/// One semi-random menu call, with the same rng consumption order as
/// always (so the seeded soups stay stable). `None` asks the caller to
/// probe a bogus API instead.
fn soup_call(
    rng: &mut Mix,
    menu: &[(ApiName, String, Vec<Param>)],
    harvested: &[Value],
) -> Option<ApiCall> {
    if rng.chance(3) {
        return None;
    }
    let (api, id_param, params) = &menu[rng.below(menu.len())];
    let mut call = ApiCall::new(api.as_str());
    // The instance id: usually a harvested value, sometimes missing
    // or bogus (create transitions ignore it).
    if rng.chance(80) {
        call = call.arg(
            id_param.clone(),
            soup_value(rng, &StateType::Ref(lce_spec::SmName::new("X")), harvested),
        );
    }
    for p in params {
        if p.optional && rng.chance(30) {
            continue;
        }
        if rng.chance(8) {
            continue; // omit a required parameter now and then
        }
        call = call.arg(p.name.clone(), soup_value(rng, &p.ty, harvested));
    }
    Some(call)
}

/// Drive `calls` semi-random invocations through a panic-on-divergence
/// dual backend. Returns how many succeeded.
fn call_soup(catalog: &Catalog, seed: u64, calls: usize) -> usize {
    let mut rng = Mix(seed);
    let mut dual = DualBackend::new(catalog).expect("catalog must compile");
    let menu = soup_menu(catalog);
    let mut harvested: Vec<Value> = Vec::new();
    let mut ok = 0;
    for _ in 0..calls {
        let Some(call) = soup_call(&mut rng, &menu, &harvested) else {
            let resp = dual.invoke(&ApiCall::new(format!("Bogus{}", rng.below(10))));
            assert!(!resp.is_ok());
            continue;
        };
        let resp = dual.invoke(&call);
        if resp.is_ok() {
            ok += 1;
            for v in resp.fields.values() {
                if harvested.len() > 64 {
                    harvested.remove(0);
                }
                harvested.push(v.clone());
            }
        }
    }
    // Belt and braces: DualBackend checked stores call-by-call; the final
    // digest must agree with a fresh replay too.
    let _ = dual.digest();
    ok
}

#[test]
fn random_soup_nimbus_agrees() {
    let catalog = nimbus_provider().catalog;
    let mut succeeded = 0;
    for seed in [1u64, 7, 2026] {
        succeeded += call_soup(&catalog, seed, 400);
    }
    assert!(succeeded > 0, "soup never succeeded — generator too weak");
}

#[test]
fn random_soup_stratus_agrees() {
    let catalog = stratus_provider().catalog;
    let mut succeeded = 0;
    for seed in [3u64, 13, 4242] {
        succeeded += call_soup(&catalog, seed, 400);
    }
    assert!(succeeded > 0, "soup never succeeded — generator too weak");
}

// ------------------------------------------- synthesized (noisy) catalogs

fn synthesized_catalog(provider: &Provider, seed: u64) -> Catalog {
    let (docs, _) = provider.render_docs(DocFidelity::Complete);
    let sections = wrangle_provider(provider, &docs).expect("wrangling golden docs succeeds");
    let (catalog, _report) =
        synthesize(&sections, &PipelineConfig::learned(seed)).expect("synthesis completes");
    catalog
}

#[test]
fn synthesized_catalogs_compile_and_agree_or_are_rejected_by_check() {
    let provider = nimbus_provider();
    for seed in [5u64, 17, 99, 2718] {
        let catalog = synthesized_catalog(&provider, seed);
        if catalog.iter().next().is_none() {
            continue;
        }
        match compile(&catalog) {
            Ok(_) => {
                call_soup(&catalog, seed ^ 0xdead, 250);
            }
            Err(e) => {
                // Anything the lowerer rejects, the spec checker must
                // already deny — lowering introduces no new rejections.
                let specs: Vec<_> = catalog.iter().cloned().collect();
                let errors = check_catalog(&specs);
                assert!(
                    !errors.is_empty(),
                    "compile rejected ({}) a catalog check_catalog accepts",
                    e
                );
            }
        }
    }
}

#[test]
fn lowering_rejects_exactly_what_check_rejects_on_bad_specs() {
    // Deterministic version of the cross-check: undeclared reads and
    // writes are compile errors AND checker errors.
    for (label, src) in [
        (
            "undeclared write",
            r#"sm Gadget {
                 service "g";
                 states { a: int = 0; }
                 transition CreateGadget() kind create { write(ghost, 1); }
                 transition DeleteGadget() kind destroy { }
               }"#,
        ),
        (
            "undeclared read",
            r#"sm Gadget {
                 service "g";
                 states { a: int = 0; }
                 transition CreateGadget() kind create { write(a, read(ghost)); }
                 transition DeleteGadget() kind destroy { }
               }"#,
        ),
    ] {
        let catalog = Catalog::from_specs(parse_catalog(src).unwrap());
        let compile_err = compile(&catalog).err();
        assert!(compile_err.is_some(), "{}: lowering must reject", label);
        let specs: Vec<_> = catalog.iter().cloned().collect();
        assert!(
            !check_catalog(&specs).is_empty(),
            "{}: checker must also reject",
            label
        );
    }
}

// ---------------------------------------------------------- property test

/// A well-formed single machine with scalar state and simple transitions
/// (mirrors the generator in `tests/properties.rs`).
fn arb_sm() -> impl Strategy<Value = lce_spec::SmSpec> {
    (
        "[A-Z][a-zA-Z]{1,8}",
        prop::collection::btree_map("[a-z][a-z0-9_]{0,8}", 0usize..3, 1..4usize),
    )
        .prop_map(|(name, states)| {
            let ty_of = |pick: usize| match pick {
                0 => StateType::Str,
                1 => StateType::Int,
                _ => StateType::Bool,
            };
            let mut b = SmBuilder::new(&name).service("prop").doc("generated");
            for (var, pick) in &states {
                b = b.state(var.clone(), ty_of(*pick));
            }
            b = b.transition(
                TransitionBuilder::new(format!("Create{}", name), TransitionKind::Create)
                    .doc("create")
                    .build(),
            );
            b = b.transition(
                TransitionBuilder::new(format!("Delete{}", name), TransitionKind::Destroy)
                    .doc("destroy")
                    .build(),
            );
            let mut describe =
                TransitionBuilder::new(format!("Describe{}", name), TransitionKind::Describe);
            for var in states.keys() {
                describe = describe.emit(format!("F_{}", var), Expr::read(var.clone()));
            }
            b = b.transition(describe.build());
            for (i, (var, pick)) in states.iter().enumerate() {
                b = b.transition(
                    TransitionBuilder::new(format!("Set{}{}", name, i), TransitionKind::Modify)
                        .param("V", ty_of(*pick))
                        .write(var.clone(), Expr::arg("V"))
                        .build(),
                );
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated machines: create → describe → modify → delete through
    /// the dual backend stays byte-identical, including the error paths
    /// taken with a bogus id.
    #[test]
    fn generated_machines_are_byte_identical(sm in arb_sm(), soup_seed in 0u64..1_000_000) {
        let catalog = Catalog::from_specs([sm]);
        if compile(&catalog).is_err() {
            // Generated machines are always well-formed; a reject here is
            // a bug the deterministic tests would surface.
            panic!("well-formed generated machine failed to compile");
        }
        call_soup(&catalog, soup_seed, 120);
    }
}

// ------------------------------------------------ optimizer differentials

/// A compiled engine at one optimization level.
fn engine_at(catalog: &Catalog, level: OptLevel) -> CompiledEmulator {
    let mut cc = compile(catalog).expect("catalog must compile");
    optimize(&mut cc, level).expect("optimizer must accept verified code");
    CompiledEmulator::from_compiled(Arc::new(cc), EmulatorConfig::framework())
}

/// An interpreter-vs-optimized-IR dual backend over one catalog.
fn dual_at(catalog: &Catalog, level: OptLevel) -> DualBackend {
    DualBackend::from_engines(
        Emulator::with_config(catalog.clone(), EmulatorConfig::framework()),
        engine_at(catalog, level),
    )
}

/// Every golden scenario, interpreter vs optimized IR, at every level the
/// optimizer has — the same panic-on-divergence sweep as the unoptimized
/// tests, proving the passes preserve observable semantics end to end.
#[test]
fn golden_scenarios_stay_byte_identical_under_optimization() {
    for (catalog, scenarios, label) in [
        (nimbus_provider().catalog, fig3_nimbus(), "nimbus"),
        (stratus_provider().catalog, fig3_stratus(), "stratus"),
    ] {
        for level in [OptLevel::O1, OptLevel::O2] {
            let mut calls = 0;
            for (i, scenario) in scenarios.iter().enumerate() {
                let mut dual =
                    dual_at(&catalog, level).named(format!("{}-opt{}-{}", label, level, i));
                let run = run_program(&scenario.program, &mut dual);
                assert!(
                    !run.steps.is_empty(),
                    "{} opt{} scenario {} ran no steps",
                    label,
                    level,
                    i
                );
                calls += dual.calls();
            }
            assert!(
                calls > 30,
                "{} opt{}: expected a substantial call count, got {}",
                label,
                level,
                calls
            );
        }
    }
}

/// The optimizer as its own oracle: `O0` and `O2` engines run the same
/// random soup side by side; every response and every post-call store
/// digest must stay byte-identical.
#[test]
fn random_soup_is_byte_identical_across_opt_levels() {
    for (catalog, seed) in [
        (nimbus_provider().catalog, 0x5eed_0011u64),
        (stratus_provider().catalog, 0x5eed_0023u64),
    ] {
        let mut base = engine_at(&catalog, OptLevel::O0);
        let mut opt = engine_at(&catalog, OptLevel::O2);
        let menu = soup_menu(&catalog);
        let mut rng = Mix(seed);
        let mut harvested: Vec<Value> = Vec::new();
        let mut ok = 0;
        for i in 0..600 {
            let call = match soup_call(&mut rng, &menu, &harvested) {
                Some(call) => call,
                None => ApiCall::new(format!("Bogus{}", rng.below(10))),
            };
            let a = base.invoke(&call);
            let b = opt.invoke(&call);
            assert_eq!(
                format!("{:?}", a),
                format!("{:?}", b),
                "call {} diverged between O0 and O2: {:?}",
                i,
                call
            );
            assert_eq!(
                store_digest(base.store()),
                store_digest(opt.store()),
                "store digest diverged after call {}: {:?}",
                i,
                call
            );
            if a.is_ok() {
                ok += 1;
                for v in a.fields.values() {
                    if harvested.len() > 64 {
                        harvested.remove(0);
                    }
                    harvested.push(v.clone());
                }
            }
        }
        assert!(ok > 0, "soup never succeeded — generator too weak");
    }
}
