//! Soundness of the static effect analysis against runtime observation.
//!
//! The effect system makes falsifiable claims: an API's transitive write
//! footprint bounds every state variable it can ever mutate, its
//! creates/destroys sets bound the instance populations it can change, and
//! a `ReadOnly` stamp promises the store digest is byte-identical across
//! the call. This suite drives seeded random call soup (the same generator
//! idiom as `tests/differential.rs`) through the compiled engine over both
//! golden catalogs and checks every observed mutation against the declared
//! footprint — an escape here means the analysis proved something false.

use lce_cloud::{nimbus_provider, stratus_provider};
use lce_emulator::{ApiCall, Backend, EmulatorConfig, ResourceStore, Value};
use lce_faults::store_digest;
use lce_ir::{compile, ir_effects, CompiledEmulator};
use lce_spec::{ApiName, Catalog, CatalogEffects, Footprint, Param, StateType};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

// ------------------------------------------------------------------ rng

/// Self-contained splitmix64 so the soup is identical under any proptest
/// or rand implementation.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, per_cent: u64) -> bool {
        self.next() % 100 < per_cent
    }
}

// ------------------------------------------------------------ generator

fn soup_value(rng: &mut Mix, ty: &StateType, harvested: &[Value]) -> Value {
    if !harvested.is_empty() && rng.chance(40) {
        return harvested[rng.below(harvested.len())].clone();
    }
    match ty {
        StateType::Str => Value::str(format!("s{}", rng.below(8))),
        StateType::Int => Value::Int(rng.below(64) as i64),
        StateType::Bool => Value::Bool(rng.chance(50)),
        StateType::Enum(alts) if !alts.is_empty() => {
            Value::Enum(alts[rng.below(alts.len())].clone())
        }
        StateType::Enum(_) => Value::Null,
        StateType::Ref(_) => match harvested.is_empty() {
            true => Value::str(format!("res-{:06x}", rng.below(0xffffff))),
            false => harvested[rng.below(harvested.len())].clone(),
        },
        StateType::List(inner) => {
            let n = rng.below(3);
            Value::List((0..n).map(|_| soup_value(rng, inner, harvested)).collect())
        }
    }
}

fn soup_menu(catalog: &Catalog) -> Vec<(ApiName, String, Vec<Param>)> {
    let mut menu = Vec::new();
    for sm in catalog.iter() {
        for t in &sm.transitions {
            menu.push((t.name.clone(), sm.id_param.clone(), t.params.clone()));
        }
    }
    assert!(!menu.is_empty());
    menu
}

fn soup_call(
    rng: &mut Mix,
    menu: &[(ApiName, String, Vec<Param>)],
    harvested: &[Value],
) -> ApiCall {
    let (api, id_param, params) = &menu[rng.below(menu.len())];
    let mut call = ApiCall::new(api.as_str());
    if rng.chance(85) {
        call = call.arg(
            id_param.clone(),
            soup_value(rng, &StateType::Ref(lce_spec::SmName::new("X")), harvested),
        );
    }
    for p in params {
        if p.optional && rng.chance(30) {
            continue;
        }
        if rng.chance(5) {
            continue; // omit a required parameter now and then
        }
        call = call.arg(p.name.clone(), soup_value(rng, &p.ty, harvested));
    }
    call
}

// ------------------------------------------------------------- checking

/// `true` if the footprint's write set covers a mutation of `var` on an
/// instance of `sm` (exact or wildcard-qualified).
fn writes_cover(fp: &Footprint, sm: &str, var: &str) -> bool {
    fp.writes.contains(&format!("{}.{}", sm, var)) || fp.writes.contains(&format!("*.{}", var))
}

/// Compare the stores around one call against the API's declared
/// transitive footprint. Panics on any escape.
fn check_mutations(
    api: &str,
    effects: &CatalogEffects,
    before: &ResourceStore,
    after: &ResourceStore,
) {
    let before_ids: BTreeSet<_> = before.iter().map(|i| i.id.clone()).collect();
    let after_ids: BTreeSet<_> = after.iter().map(|i| i.id.clone()).collect();
    let entry = effects.get(api);
    let mutated = |what: &str| -> ! {
        panic!(
            "{} mutated {} outside its declared footprint ({})",
            api,
            what,
            entry.map_or("no effects entry".to_string(), |e| e.transitive.to_string()),
        )
    };
    for id in after_ids.difference(&before_ids) {
        let sm = after.get(id).expect("just listed").sm.as_str();
        let Some(e) = entry else {
            mutated(&format!("created {} ({})", id, sm))
        };
        if !e.transitive.creates.contains(sm) {
            mutated(&format!("created {} ({})", id, sm));
        }
    }
    for id in before_ids.difference(&after_ids) {
        let sm = before.get(id).expect("just listed").sm.as_str();
        let Some(e) = entry else {
            mutated(&format!("destroyed {} ({})", id, sm))
        };
        if !e.transitive.destroys.contains(sm) {
            mutated(&format!("destroyed {} ({})", id, sm));
        }
    }
    for id in before_ids.intersection(&after_ids) {
        let (a, b) = (before.get(id).unwrap(), after.get(id).unwrap());
        assert_eq!(a.sm, b.sm, "{}: instance {} changed type", api, id);
        for (var, old) in &a.state {
            if b.state.get(var) != Some(old) {
                let Some(e) = entry else {
                    mutated(&format!("{}.{}", a.sm, var))
                };
                if !writes_cover(&e.transitive, a.sm.as_str(), var) {
                    mutated(&format!("{}.{}", a.sm, var));
                }
            }
        }
        // A parent link only moves when the instance is created, so a
        // surviving instance's link must be stable.
        assert_eq!(a.parent, b.parent, "{}: {} was re-parented", api, id);
    }
}

/// Drive `calls` soup invocations through the compiled engine, checking
/// every observed mutation against the static footprints. Returns how many
/// calls succeeded.
fn soundness_soup(catalog: &Catalog, seed: u64, calls: usize) -> usize {
    let cc = Arc::new(compile(catalog).expect("golden catalog must compile"));
    let effects = ir_effects(&cc);
    let mut emu = CompiledEmulator::from_compiled(Arc::clone(&cc), EmulatorConfig::framework());
    let menu = soup_menu(catalog);
    let mut rng = Mix(seed);
    let mut harvested: Vec<Value> = Vec::new();
    let mut ok = 0;
    for _ in 0..calls {
        let call = soup_call(&mut rng, &menu, &harvested);
        let before = emu.store().clone();
        let read_path = emu.invoke_read(&call);
        let resp = emu.invoke(&call);
        let after = emu.store();
        check_mutations(&call.api, &effects, &before, after);
        let stamped_read_only = effects.get(&call.api).is_some_and(|e| e.read_only);
        if stamped_read_only {
            assert_eq!(
                store_digest(&before),
                store_digest(after),
                "{}: ReadOnly call changed the store digest",
                call.api
            );
        }
        if let Some(ro) = read_path {
            assert!(
                stamped_read_only,
                "{}: invoke_read answered without a ReadOnly stamp",
                call.api
            );
            assert_eq!(
                format!("{:?}", ro),
                format!("{:?}", resp),
                "{}: journal-free read path diverged from invoke",
                call.api
            );
        }
        if resp.is_ok() {
            ok += 1;
            for v in resp.fields.values() {
                if harvested.len() > 64 {
                    harvested.remove(0);
                }
                harvested.push(v.clone());
            }
        }
    }
    ok
}

#[test]
fn nimbus_mutations_stay_inside_declared_footprints() {
    let catalog = nimbus_provider().catalog;
    let mut ok = 0;
    for seed in [1u64, 7, 2026] {
        ok += soundness_soup(&catalog, seed, 400);
    }
    assert!(ok > 0, "soup never succeeded — generator too weak");
}

#[test]
fn stratus_mutations_stay_inside_declared_footprints() {
    let catalog = stratus_provider().catalog;
    let mut ok = 0;
    for seed in [3u64, 13, 4242] {
        ok += soundness_soup(&catalog, seed, 400);
    }
    assert!(ok > 0, "soup never succeeded — generator too weak");
}

/// The golden scenarios exercise the high-traffic paths; make sure the
/// read-only population is actually hit by the soup (a soundness suite
/// that never executes a proven API proves nothing).
#[test]
fn soup_exercises_proven_read_only_apis() {
    let catalog = nimbus_provider().catalog;
    let cc = compile(&catalog).expect("nimbus compiles");
    let effects = ir_effects(&cc);
    let menu = soup_menu(&catalog);
    let mut rng = Mix(0xeffec7);
    let hit = (0..2000)
        .map(|_| soup_call(&mut rng, &menu, &[]))
        .filter(|c| effects.get(&c.api).is_some_and(|e| e.read_only))
        .count();
    assert!(hit > 50, "only {} read-only calls in 2000", hit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random seeds beyond the pinned ones: footprint soundness is a
    /// property of the analysis, not of three lucky schedules.
    #[test]
    fn footprints_bound_mutations_for_any_seed(seed in 0u64..1_000_000) {
        let catalog = nimbus_provider().catalog;
        soundness_soup(&catalog, seed, 120);
    }
}
